//! `biv` — a reproduction of Michael Wolfe's *Beyond Induction Variables*
//! (PLDI 1992) as a Rust library suite.
//!
//! This facade crate re-exports the whole pipeline:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`algebra`] | `biv-algebra` | exact rationals, symbolic polynomials, rational matrices |
//! | [`ir`] | `biv-ir` | CFG, mini-language front end, dominators, loops, dataflow, interpreter |
//! | [`ssa`] | `biv-ssa` | SSA construction, verifier, SSA interpreter |
//! | [`core_analysis`] | `biv-core` | **the paper's classifier**: Tarjan over the SSA graph, closed forms, trip counts, nested loops |
//! | [`invariant`] | `biv-invariant` | polynomial loop invariants: monomial basis over IV closed forms, exact null-space solve, interpreter-checked candidates |
//! | [`classic`] | `biv-classic` | the classical baseline detector with ad-hoc matchers |
//! | [`depend`] | `biv-depend` | dependence testing: SIV/GCD/Banerjee + periodic/monotonic/wrap-around rules |
//! | [`transform`] | `biv-transform` | strength reduction, loop peeling, canonical counters |
//! | [`workload`] | `biv-workload` | synthetic program generation with ground truth |
//! | [`server`] | `biv-server` | the `bivd` analysis daemon: framed JSON protocol, worker pool, shared warm cache |
//! | [`fleet`] | `biv-fleet` | sharded `bivd` serving: consistent-hash routing, fan-out/reassembly, drain/rebalance |
//! | [`store`] | `biv-store` | durable content-addressed analysis store: CRC-checked record log, atomic snapshots, warm restarts |
//!
//! # The 30-second tour
//!
//! ```
//! use biv::core_analysis::analyze_source;
//!
//! let analysis = analyze_source(
//!     "func f(n) { j = 1 L14: for i = 1 to n { j = j + i A[j] = i } }",
//! )?;
//! // j's in-loop value is the quadratic (h² + 3h + 4)/2 from the paper's
//! // L14 table.
//! let j3 = analysis.ssa().value_by_name("j3").unwrap();
//! let (_, class) = analysis.class_of(j3).unwrap();
//! match class {
//!     biv::core_analysis::Class::Induction(cf) => assert_eq!(cf.degree(), 2),
//!     other => panic!("expected quadratic, got {other:?}"),
//! }
//! # Ok::<(), biv::core_analysis::AnalyzeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use biv_algebra as algebra;
pub use biv_classic as classic;
pub use biv_core as core_analysis;
pub use biv_depend as depend;
pub use biv_fleet as fleet;
pub use biv_invariant as invariant;
pub use biv_ir as ir;
pub use biv_server as server;
pub use biv_ssa as ssa;
pub use biv_store as store;
pub use biv_transform as transform;
pub use biv_workload as workload;
