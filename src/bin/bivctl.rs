//! `bivctl` — fleet control for `bivd` shards.
//!
//! ```text
//! bivctl stats EP1,EP2,... [--timeout-ms N]        # aggregated fleet stats (JSON)
//! bivctl members SEED [--timeout-ms N]             # the seed's membership view (JSON)
//! bivctl join SEED --endpoint EP [--timeout-ms N]  # bridge two membership groups
//! bivctl leave SEED --shard K [--wait-ms N]        # retire one shard gracefully
//! bivctl drain EP1,EP2,... --shard K --store DIR --successor J [--wait-ms N]
//! ```
//!
//! `stats` polls every shard and prints one JSON object: summed counter
//! sections, merged latency windows, and each shard's raw snapshot (see
//! `biv::fleet::fleet_stats`). Unreachable shards are reported inside
//! the object; only a fully unreachable fleet fails. `--timeout-ms`
//! bounds each shard's connect + read so one wedged daemon degrades to
//! an `unreachable` entry instead of hanging the aggregation.
//!
//! `members` asks one seed shard for its membership view — who is
//! alive, where, at which incarnation. `join` introduces two membership
//! groups to each other by exchanging their views (a one-shot bridge;
//! gossip converges the rest). `leave` resolves shard `K`'s endpoint
//! from the seed's view and sends it a graceful shutdown; the departing
//! daemon's own cluster agent hands its store snapshot to the shards
//! that absorb its ring ranges, so no operator-side preload is needed.
//!
//! `drain` retires one shard with a warm handoff *without* a membership
//! agent: it sends the shard a graceful shutdown, waits for the
//! endpoint to actually go away (which is when the departing daemon has
//! flushed its store snapshot), then tells the successor to preload the
//! snapshot directory — so every summary the departed shard had
//! computed is served warm by its successor. The departing shard must
//! have been running with `--cache-dir DIR`, and `DIR` must be readable
//! by the successor.

use std::process::ExitCode;
use std::time::Duration;

use biv::fleet::{drain_shard, fleet_stats_with_timeout, View};
use biv::server::{Client, Endpoint, Request, Response};

const USAGE: &str = "usage: bivctl stats EP1,EP2,... [--timeout-ms N]\n       bivctl members SEED [--timeout-ms N]\n       bivctl join SEED --endpoint EP [--timeout-ms N]\n       bivctl leave SEED --shard K [--wait-ms N] [--timeout-ms N]\n       bivctl drain EP1,EP2,... --shard K --store DIR --successor J [--wait-ms N]";

const DEFAULT_TIMEOUT: Duration = Duration::from_secs(2);

fn split_endpoints(spec: &str) -> Result<Vec<String>, String> {
    let endpoints: Vec<String> = spec
        .split(',')
        .map(str::trim)
        .filter(|e| !e.is_empty())
        .map(str::to_string)
        .collect();
    if endpoints.is_empty() {
        return Err("no endpoints given".into());
    }
    Ok(endpoints)
}

/// Parses a trailing `--timeout-ms N` (shared by the view commands).
fn parse_timeout(rest: &[String]) -> Result<Duration, String> {
    let mut timeout = DEFAULT_TIMEOUT;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--timeout-ms" => {
                let value = it.next().ok_or("--timeout-ms needs a value")?;
                timeout = Duration::from_millis(parse_num(value, "--timeout-ms")?);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(timeout)
}

fn run_stats(args: &[String]) -> Result<(), String> {
    let Some((spec, rest)) = args.split_first() else {
        return Err(USAGE.into());
    };
    let endpoints = split_endpoints(spec)?;
    let timeout = parse_timeout(rest)?;
    let stats = fleet_stats_with_timeout(&endpoints, timeout)?;
    println!("{}", stats.to_text());
    Ok(())
}

/// Fetches one shard's membership view.
fn fetch_view(endpoint: &str, timeout: Duration) -> Result<View, String> {
    let mut client = Client::connect_timeout(&Endpoint::parse(endpoint), timeout)
        .map_err(|e| format!("cannot reach {endpoint}: {e}"))?;
    match client.request(&Request::Members) {
        Ok(Response::Members { view } | Response::Gossip { view }) => {
            View::from_json(&view).map_err(|e| format!("{endpoint} answered a malformed view: {e}"))
        }
        Ok(Response::Error { kind, message }) if kind == "no-cluster" => Err(format!(
            "{endpoint} runs no membership agent ({message}); start bivd with --peers"
        )),
        Ok(other) => Err(format!("{endpoint} answered unexpectedly: {other:?}")),
        Err(e) => Err(format!("members request to {endpoint} failed: {e}")),
    }
}

fn run_members(args: &[String]) -> Result<(), String> {
    let Some((seed, rest)) = args.split_first() else {
        return Err(USAGE.into());
    };
    let timeout = parse_timeout(rest)?;
    let view = fetch_view(seed, timeout)?;
    println!("{}", view.to_json().to_text());
    Ok(())
}

fn run_join(args: &[String]) -> Result<(), String> {
    let Some((seed, rest)) = args.split_first() else {
        return Err(USAGE.into());
    };
    let mut endpoint: Option<String> = None;
    let mut timeout = DEFAULT_TIMEOUT;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().cloned().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--endpoint" => endpoint = Some(value("--endpoint")?),
            "--timeout-ms" => {
                timeout =
                    Duration::from_millis(parse_num(&value("--timeout-ms")?, "--timeout-ms")?);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    let endpoint = endpoint.ok_or("join needs --endpoint EP (the joining shard)")?;
    // One round of view exchange in each direction; gossip takes it
    // from there. `from` is omitted — bivctl is a bridge, not a member.
    let seed_view = fetch_view(seed, timeout)?;
    let joiner_view = fetch_view(&endpoint, timeout)?;
    for (target, view) in [(&endpoint, &seed_view), (seed, &joiner_view)] {
        let mut client = Client::connect_timeout(&Endpoint::parse(target), timeout)
            .map_err(|e| format!("cannot reach {target}: {e}"))?;
        let request = Request::Gossip {
            from: None,
            view: view.to_json(),
        };
        match client.request(&request) {
            Ok(Response::Gossip { .. } | Response::Members { .. }) => {}
            Ok(other) => return Err(format!("{target} refused the view: {other:?}")),
            Err(e) => return Err(format!("gossip to {target} failed: {e}")),
        }
    }
    eprintln!(
        "bivctl: bridged {} member(s) at {seed} with {} member(s) at {endpoint}",
        seed_view.members.len(),
        joiner_view.members.len()
    );
    Ok(())
}

fn run_leave(args: &[String]) -> Result<(), String> {
    let Some((seed, rest)) = args.split_first() else {
        return Err(USAGE.into());
    };
    let mut shard: Option<u32> = None;
    let mut wait = Duration::from_secs(30);
    let mut timeout = DEFAULT_TIMEOUT;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().cloned().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--shard" => shard = Some(parse_num(&value("--shard")?, "--shard")?),
            "--wait-ms" => {
                wait = Duration::from_millis(parse_num(&value("--wait-ms")?, "--wait-ms")?);
            }
            "--timeout-ms" => {
                timeout =
                    Duration::from_millis(parse_num(&value("--timeout-ms")?, "--timeout-ms")?);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    let shard = shard.ok_or("leave needs --shard K")?;
    let view = fetch_view(seed, timeout)?;
    let member = view
        .member(shard)
        .ok_or(format!("shard {shard} is not in {seed}'s view"))?;
    let endpoint = member.endpoint.clone();
    let mut client = Client::connect_timeout(&Endpoint::parse(&endpoint), timeout)
        .map_err(|e| format!("cannot reach shard {shard} at {endpoint}: {e}"))?;
    match client.request(&Request::Shutdown) {
        Ok(Response::ShutdownAck) => {}
        Ok(other) => return Err(format!("shard {shard} refused shutdown: {other:?}")),
        Err(e) => return Err(format!("shutdown of shard {shard} failed: {e}")),
    }
    drop(client);
    // Wait for the endpoint to actually go away: that is when the
    // departing daemon has flushed its store and handed off snapshots.
    let deadline = std::time::Instant::now() + wait;
    loop {
        match Client::connect_timeout(&Endpoint::parse(&endpoint), timeout) {
            Err(_) => break,
            Ok(_) => {
                if std::time::Instant::now() >= deadline {
                    return Err(format!(
                        "shard {shard} at {endpoint} still answers after {}ms",
                        wait.as_millis()
                    ));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    eprintln!("bivctl: shard {shard} at {endpoint} left the fleet");
    Ok(())
}

fn run_drain(args: &[String]) -> Result<(), String> {
    let Some((spec, rest)) = args.split_first() else {
        return Err(USAGE.into());
    };
    let endpoints = split_endpoints(spec)?;
    let mut shard: Option<usize> = None;
    let mut store: Option<String> = None;
    let mut successor: Option<usize> = None;
    let mut wait = Duration::from_secs(30);
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().cloned().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--shard" => {
                shard = Some(parse_num(&value("--shard")?, "--shard")?);
            }
            "--store" => store = Some(value("--store")?),
            "--successor" => {
                successor = Some(parse_num(&value("--successor")?, "--successor")?);
            }
            "--wait-ms" => {
                wait = Duration::from_millis(parse_num(&value("--wait-ms")?, "--wait-ms")?);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    let shard = shard.ok_or("drain needs --shard K")?;
    let store = store.ok_or("drain needs --store DIR (the departing shard's --cache-dir)")?;
    let successor = successor.ok_or("drain needs --successor J")?;
    let report = drain_shard(&endpoints, shard, &store, successor, wait)?;
    eprintln!(
        "bivctl: shard {shard} drained; successor {successor} preloaded {} summaries from {store}",
        report.loaded
    );
    Ok(())
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid {flag} value `{value}`"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "stats" => run_stats(rest),
            "members" => run_members(rest),
            "join" => run_join(rest),
            "leave" => run_leave(rest),
            "drain" => run_drain(rest),
            "--help" | "-h" => Err(USAGE.into()),
            other => Err(format!("unknown command `{other}` (try --help)")),
        },
        None => Err(USAGE.into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
