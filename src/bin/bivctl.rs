//! `bivctl` — fleet control for `bivd` shards.
//!
//! ```text
//! bivctl stats EP1,EP2,...                         # aggregated fleet stats (JSON)
//! bivctl drain EP1,EP2,... --shard K --store DIR --successor J [--wait-ms N]
//! ```
//!
//! `stats` polls every shard and prints one JSON object: summed counter
//! sections, merged latency windows, and each shard's raw snapshot (see
//! `biv::fleet::fleet_stats`). Unreachable shards are reported inside
//! the object; only a fully unreachable fleet fails.
//!
//! `drain` retires one shard with a warm handoff: it sends the shard a
//! graceful shutdown, waits for the endpoint to actually go away (which
//! is when the departing daemon has flushed its store snapshot), then
//! tells the successor to preload the snapshot directory — so every
//! summary the departed shard had computed is served warm by its
//! successor. The departing shard must have been running with
//! `--cache-dir DIR`, and `DIR` must be readable by the successor.

use std::process::ExitCode;
use std::time::Duration;

use biv::fleet::{drain_shard, fleet_stats};

const USAGE: &str = "usage: bivctl stats EP1,EP2,...\n       bivctl drain EP1,EP2,... --shard K --store DIR --successor J [--wait-ms N]";

fn split_endpoints(spec: &str) -> Result<Vec<String>, String> {
    let endpoints: Vec<String> = spec
        .split(',')
        .map(str::trim)
        .filter(|e| !e.is_empty())
        .map(str::to_string)
        .collect();
    if endpoints.is_empty() {
        return Err("no endpoints given".into());
    }
    Ok(endpoints)
}

fn run_stats(args: &[String]) -> Result<(), String> {
    let [spec] = args else {
        return Err(USAGE.into());
    };
    let endpoints = split_endpoints(spec)?;
    let stats = fleet_stats(&endpoints)?;
    println!("{}", stats.to_text());
    Ok(())
}

fn run_drain(args: &[String]) -> Result<(), String> {
    let Some((spec, rest)) = args.split_first() else {
        return Err(USAGE.into());
    };
    let endpoints = split_endpoints(spec)?;
    let mut shard: Option<usize> = None;
    let mut store: Option<String> = None;
    let mut successor: Option<usize> = None;
    let mut wait = Duration::from_secs(30);
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().cloned().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--shard" => {
                shard = Some(parse_num(&value("--shard")?, "--shard")?);
            }
            "--store" => store = Some(value("--store")?),
            "--successor" => {
                successor = Some(parse_num(&value("--successor")?, "--successor")?);
            }
            "--wait-ms" => {
                wait = Duration::from_millis(parse_num(&value("--wait-ms")?, "--wait-ms")?);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    let shard = shard.ok_or("drain needs --shard K")?;
    let store = store.ok_or("drain needs --store DIR (the departing shard's --cache-dir)")?;
    let successor = successor.ok_or("drain needs --successor J")?;
    let report = drain_shard(&endpoints, shard, &store, successor, wait)?;
    eprintln!(
        "bivctl: shard {shard} drained; successor {successor} preloaded {} summaries from {store}",
        report.loaded
    );
    Ok(())
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid {flag} value `{value}`"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "stats" => run_stats(rest),
            "drain" => run_drain(rest),
            "--help" | "-h" => Err(USAGE.into()),
            other => Err(format!("unknown command `{other}` (try --help)")),
        },
        None => Err(USAGE.into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
