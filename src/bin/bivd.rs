//! `bivd` — the resident induction-variable analysis daemon.
//!
//! ```text
//! bivd [--socket PATH | --tcp ADDR] [--workers N] [--queue-cap N]
//!      [--cache-cap N] [--cache-dir PATH] [--timeout-ms N]
//!      [--fleet shard=K/N] [--peers EP1,EP2,...] [--replicas R]
//!      [--heartbeat-ms N] [--no-auto-rebalance] [--net-threaded]
//!      [--budget SPEC] [--faults SPEC]
//! ```
//!
//! Listens on a Unix socket (default `$TMPDIR/bivd.sock`) or a TCP
//! address, serving the framed JSON protocol that `bivc --remote`
//! speaks. A fixed pool of workers shares one structural cache, so
//! repeated submissions of structurally identical functions are served
//! from cache across requests and clients — while every response stays
//! byte-identical to a local `bivc` run.
//!
//! With `--cache-dir`, summaries also persist to a durable
//! content-addressed store in that directory: the daemon preloads it on
//! startup (a warm restart), writes new summaries through to it, and
//! flushes it when the drain completes, so a `kill -9` loses at most
//! the unflushed tail — never a served answer.
//!
//! The daemon drains gracefully on SIGINT, SIGTERM, or a protocol
//! `shutdown` request: accepted work is finished and answered, new
//! frames are refused with an explicit `draining` error, and the final
//! counters are printed on exit.
//!
//! `--fleet shard=K/N` declares this daemon shard `K` of an `N`-shard
//! fleet (see `biv-fleet`). The daemon itself behaves identically — one
//! cache, one queue — but it answers `analyze_fleet` requests only when
//! the router's believed identity matches, redirecting mismatches with
//! its actual identity, and its `stats` response carries the shard
//! coordinates so the fleet aggregator can label it.
//!
//! `--peers` additionally starts the cluster agent: the shard gossips a
//! versioned membership view with its peers (routers then bootstrap the
//! whole ring from any one live seed), replicates committed summaries
//! to its `--replicas R` ring successors so a killed primary's keys are
//! served warm, and — with `--cache-dir` — hands snapshot copies to the
//! affected shards when membership changes (join/leave rebalance). The
//! first shard of a fleet has no one to dial yet: pass `--peers none`.
//!
//! On Linux connection I/O runs on a readiness-driven epoll event loop;
//! `--net-threaded` selects the portable thread-per-connection
//! front-end instead. Both produce byte-identical responses.

use std::process::ExitCode;
use std::time::Duration;

use biv::fleet::{AgentConfig, ClusterAgent};
use biv::server::signal;
use biv::server::{Endpoint, NetMode, Server, ServerConfig};

const USAGE: &str = "usage: bivd [--socket PATH | --tcp ADDR] [--workers N] [--queue-cap N] [--cache-cap N] [--cache-dir PATH] [--timeout-ms N] [--fleet shard=K/N] [--peers EP1,EP2,... | --peers none] [--replicas R] [--heartbeat-ms N] [--no-auto-rebalance] [--net-threaded] [--budget time=MS,nodes=N,scc=N,order=N] [--faults seed=N,profile=NAME]";

fn default_socket() -> String {
    std::env::temp_dir()
        .join("bivd.sock")
        .to_string_lossy()
        .into_owned()
}

/// Cluster-agent settings — bivd-side only, not part of [`ServerConfig`]
/// because the agent is built *after* bind (its advertised endpoint is
/// the bound one).
struct ClusterOpts {
    /// `Some` once `--peers` was given; the agent runs iff this is set.
    seeds: Option<Vec<String>>,
    replicas: Option<u32>,
    heartbeat_ms: Option<u64>,
    auto_rebalance: bool,
}

fn parse_args() -> Result<(ServerConfig, ClusterOpts), String> {
    let mut endpoint: Option<Endpoint> = None;
    let mut config = ServerConfig::new(Endpoint::Unix(default_socket().into()));
    let mut cluster = ClusterOpts {
        seeds: None,
        replicas: None,
        heartbeat_ms: None,
        auto_rebalance: true,
    };
    let mut args = std::env::args().skip(1);
    fn set_endpoint(e: Endpoint, endpoint: &mut Option<Endpoint>) -> Result<(), String> {
        if endpoint.is_some() {
            return Err("give at most one of --socket / --tcp".into());
        }
        *endpoint = Some(e);
        Ok(())
    }
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--socket" => {
                let path = value("--socket")?;
                set_endpoint(Endpoint::Unix(path.into()), &mut endpoint)?;
            }
            "--tcp" => {
                let addr = value("--tcp")?;
                set_endpoint(Endpoint::Tcp(addr), &mut endpoint)?;
            }
            "--workers" => config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue-cap" => config.queue_cap = parse_num(&value("--queue-cap")?, "--queue-cap")?,
            "--cache-cap" => config.cache_cap = parse_num(&value("--cache-cap")?, "--cache-cap")?,
            "--cache-dir" => config.cache_dir = Some(value("--cache-dir")?.into()),
            "--timeout-ms" => {
                let ms: u64 = parse_num(&value("--timeout-ms")?, "--timeout-ms")?;
                config.request_timeout = std::time::Duration::from_millis(ms);
            }
            "--fleet" => {
                let (shard_id, shard_count) = parse_fleet(&value("--fleet")?)?;
                config.shard_id = shard_id;
                config.shard_count = shard_count;
            }
            "--peers" => {
                let list = value("--peers")?;
                cluster.seeds = Some(if list.is_empty() || list == "none" {
                    Vec::new()
                } else {
                    list.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect()
                });
            }
            "--replicas" => {
                let r: u32 = parse_num(&value("--replicas")?, "--replicas")?;
                if r == 0 {
                    return Err("--replicas must be at least 1".into());
                }
                cluster.replicas = Some(r);
            }
            "--heartbeat-ms" => {
                let ms: u64 = parse_num(&value("--heartbeat-ms")?, "--heartbeat-ms")?;
                if ms == 0 {
                    return Err("--heartbeat-ms must be at least 1".into());
                }
                cluster.heartbeat_ms = Some(ms);
            }
            "--no-auto-rebalance" => cluster.auto_rebalance = false,
            "--net-threaded" => config.net_mode = NetMode::Threaded,
            "--budget" => {
                config.budget = biv::core_analysis::Budget::parse(&value("--budget")?)?;
            }
            "--faults" => install_faults(&value("--faults")?)?,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    config.endpoint = endpoint.unwrap_or(Endpoint::Unix(default_socket().into()));
    if cluster.seeds.is_none()
        && (cluster.replicas.is_some() || cluster.heartbeat_ms.is_some() || !cluster.auto_rebalance)
    {
        return Err(
            "--replicas / --heartbeat-ms / --no-auto-rebalance need --peers (use `--peers none` for the first shard)"
                .into(),
        );
    }
    Ok((config, cluster))
}

/// Arms deterministic fault injection for this daemon. Only meaningful
/// in builds with the `fault-injection` feature; production binaries
/// carry no injection code and refuse the flag instead of silently
/// ignoring it.
#[cfg(feature = "fault-injection")]
fn install_faults(spec: &str) -> Result<(), String> {
    biv_faults::install_from_spec(spec)
}

#[cfg(not(feature = "fault-injection"))]
fn install_faults(_spec: &str) -> Result<(), String> {
    Err("this binary was built without fault injection; rebuild with `--features fault-injection` to use --faults".into())
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid {flag} value `{value}`"))
}

/// Parses `shard=K/N` into `(K, N)`, requiring `K < N` and `N > 0`.
fn parse_fleet(spec: &str) -> Result<(u32, u32), String> {
    let bad = || format!("invalid --fleet value `{spec}` (expected shard=K/N with K < N)");
    let rest = spec.strip_prefix("shard=").ok_or_else(bad)?;
    let (k, n) = rest.split_once('/').ok_or_else(bad)?;
    let shard_id: u32 = k.parse().map_err(|_| bad())?;
    let shard_count: u32 = n.parse().map_err(|_| bad())?;
    if shard_count == 0 || shard_id >= shard_count {
        return Err(bad());
    }
    Ok((shard_id, shard_count))
}

fn main() -> ExitCode {
    let (config, cluster) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (shard_id, shard_count) = (config.shard_id, config.shard_count);
    let cache_dir = config.cache_dir.clone();
    // Install the handler before bind: once the socket exists a
    // supervisor may SIGTERM at any moment, and the default action
    // would skip the drain.
    let shutdown = signal::install();
    let mut server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bivd: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    if shard_count > 1 {
        eprintln!(
            "bivd: listening on {} ({} workers, shard {shard_id}/{shard_count})",
            server.bound_endpoint(),
            server.workers()
        );
    } else {
        eprintln!(
            "bivd: listening on {} ({} workers)",
            server.bound_endpoint(),
            server.workers()
        );
    }
    let mut agent_threads = Vec::new();
    if let Some(seeds) = cluster.seeds {
        let mut agent = AgentConfig::new(shard_id, shard_count, server.bound_endpoint());
        agent.seeds = seeds;
        agent.cache_dir = cache_dir;
        agent.auto_rebalance = cluster.auto_rebalance;
        if let Some(r) = cluster.replicas {
            agent.replication = r;
        }
        if let Some(ms) = cluster.heartbeat_ms {
            agent = agent.with_heartbeat(Duration::from_millis(ms));
        }
        eprintln!(
            "bivd: cluster agent up (R={}, heartbeat {}ms, {} seed(s))",
            agent.replication,
            agent.heartbeat.as_millis(),
            agent.seeds.len()
        );
        let (hook, threads) = ClusterAgent::spawn(agent, shutdown);
        server.install_cluster(hook);
        agent_threads = threads;
    }
    let outcome = server.run(shutdown);
    for thread in agent_threads {
        let _ = thread.join();
    }
    match outcome {
        Ok(summary) => {
            eprintln!("bivd: drained: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bivd: serve error: {e}");
            ExitCode::FAILURE
        }
    }
}
