//! `bivc` — command-line driver for the `biv` analysis pipeline.
//!
//! ```text
//! bivc [--ssa] [--classes] [--deps] [--trip-counts] [--classic] [--dot] FILE
//! bivc [--jobs N] [--batch] [--cache-cap N] FILE|DIR...   # parallel batch analysis
//! bivc --invariants FILE|DIR...           # verified per-loop invariants in the report
//! bivc --cache-dir DIR FILE|DIR...        # batch with a durable analysis store
//! bivc --stats-json PATH ...              # machine-readable batch/cache counters
//! bivc --remote ENDPOINT FILE|DIR...      # submit the batch to a running bivd
//! bivc --fleet EP1,EP2,... FILE|DIR...    # shard the batch across a bivd fleet
//! bivc --optimize FILE|DIR...             # IV-driven transformations, validated
//! bivc --watch-bench [--edits N] FILE...  # incremental re-analysis under edits
//! bivc --demo                             # run the built-in Figure 1 demo
//! ```
//!
//! `--optimize` runs the classification-driven transformation pipeline
//! (strength reduction, wrap-around peeling, flip-flop unrolling,
//! dead-IV elimination, loop interchange) on every function and
//! validates each rewritten function against its original by
//! differential execution on seeded inputs. A single file prints the
//! transformed IR; several files (or `--jobs`/`--batch`) print one
//! report line per function plus aggregate totals, byte-identical for
//! every job count. Any validation failure makes the exit code nonzero.
//!
//! `--watch-bench` simulates an editing session: for every function it
//! partitions the loop nests into hash-keyed regions, applies a
//! deterministic sequence of single-nest constant edits (`--edits`,
//! default 16), and after each edit re-analyzes twice — incrementally
//! against the warm per-nest cache, and from scratch. It prints per-edit
//! reuse counts with median wall times for both paths, and cross-checks
//! every warm result byte-for-byte against a cold incremental run;
//! any divergence makes the exit code nonzero.
//!
//! `--time` additionally prints per-phase wall times (parse, SSA, loop
//! forest, classify, closed forms) to stderr; analysis output on stdout
//! is unchanged, and the flag costs nothing when absent.
//!
//! With a single input file and no batch flags, everything is printed in
//! the detailed single-function format. With several inputs, a
//! directory, `--batch`, or `--jobs`, the parallel batch driver runs
//! instead: every function from every input is classified (sharded
//! across `--jobs` workers, structurally deduplicated through the batch
//! cache) and printed as canonical per-function summaries followed by a
//! cache statistics line. Batch output is byte-identical for every job
//! count. `BIV_JOBS` sets the default worker count.
//!
//! Batch mode never aborts on a bad input: unreadable or unparsable
//! files are reported individually on stderr, every remaining file is
//! still analyzed, and the exit code is nonzero.
//!
//! `--cache-dir DIR` persists summaries to (and serves them from) a
//! durable content-addressed store in `DIR`, so a second run over the
//! same corpus is near-free. The stdout bytes are identical to a cold
//! in-memory run over the same files: the stats line is replayed as a
//! cold cache, exactly like the daemon does, so store warmth changes
//! latency, never output. Real cumulative counters are available via
//! `--stats-json PATH`, which writes one JSON object (`batch`, `cache`,
//! and — with a store — `store`) reusing the `bivd` stats field names.
//!
//! `--remote ENDPOINT` (a Unix socket path, or `tcp:HOST:PORT`) sends
//! the batch to a running `bivd` instead of analyzing in-process. The
//! stdout bytes are identical to a local run over the same files — the
//! daemon's warm cache changes latency, never output.
//!
//! `--fleet EP1,EP2,...` shards the batch across an N-shard `bivd`
//! fleet (each started with `bivd --fleet shard=K/N`): files route by
//! consistent hashing on content, shard failures re-route to ring
//! successors, and the reassembled stdout is *still* byte-identical to
//! a local run. A file no live shard can serve fails individually on
//! stderr; the rest of the batch is unaffected.
//!
//! `--invariants` adds machine-checked per-loop polynomial invariants
//! (e.g. `2*s - i^2 + i = 0`) to the grouped batch report. Invariants
//! are always *computed* — they live in the cached summaries and ride
//! the store, the daemon, and the fleet — so the flag only selects
//! rendering: local, `--remote`, and `--fleet` runs print identical
//! bytes for either setting, warm or cold. With `--stats-json` the
//! object gains an `invariants` block (loops carrying at least one
//! relation, total relations).

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use biv::core_analysis::{
    analyze_batch_with_backend, analyze_with, analyze_with_times, cold_batch_stats, describe_class,
    render_grouped_with, resolve_jobs, AnalysisConfig, BatchOptions, BatchStats, Budget,
    CacheBackend, PhaseTimes, StructuralCache,
};
use biv::ir::parser::parse_program;
use biv::ir::Function;
use biv::server::{AnalyzeFile, Client, Endpoint, Json, Response};
use biv::store::{StoreOptions, TieredCache};

struct Options {
    dot: bool,
    ssa: bool,
    classes: bool,
    deps: bool,
    trip_counts: bool,
    classic: bool,
    batch: bool,
    optimize: bool,
    watch_bench: bool,
    edits: usize,
    time: bool,
    jobs: usize,
    cache_cap: Option<usize>,
    cache_dir: Option<String>,
    stats_json: Option<String>,
    remote: Option<String>,
    fleet: Option<String>,
    invariants: bool,
    budget: Budget,
    paths: Vec<String>,
}

const USAGE: &str = "usage: bivc [--ssa] [--classes] [--deps] [--trip-counts] [--classic] [--dot] [--time] FILE\n       bivc [--jobs N] [--batch] [--invariants] [--cache-cap N] [--cache-dir DIR] [--stats-json PATH] [--time] FILE|DIR...\n       bivc --remote ENDPOINT [--invariants] [--cache-cap N] FILE|DIR...\n       bivc --fleet EP1,EP2,... [--invariants] [--cache-cap N] FILE|DIR...\n       bivc --optimize [--jobs N] [--stats-json PATH] FILE|DIR...\n       bivc --watch-bench [--edits N] FILE|DIR...\n       bivc --demo\n\nrobustness knobs (any mode):\n       --budget time=MS,nodes=N,scc=N,order=N   degrade to `unknown` past these caps\n       --faults seed=N,profile=NAME             deterministic fault injection\n                                                (needs a fault-injection build)";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        dot: false,
        ssa: false,
        classes: false,
        deps: false,
        trip_counts: false,
        classic: false,
        batch: false,
        optimize: false,
        watch_bench: false,
        edits: 16,
        time: false,
        jobs: 0,
        cache_cap: None,
        cache_dir: None,
        stats_json: None,
        remote: None,
        fleet: None,
        invariants: false,
        budget: Budget::UNLIMITED,
        paths: Vec::new(),
    };
    let mut any_flag = false;
    let mut demo = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ssa" => {
                opts.ssa = true;
                any_flag = true;
            }
            "--dot" => {
                opts.dot = true;
                any_flag = true;
            }
            "--classes" => {
                opts.classes = true;
                any_flag = true;
            }
            "--deps" => {
                opts.deps = true;
                any_flag = true;
            }
            "--trip-counts" => {
                opts.trip_counts = true;
                any_flag = true;
            }
            "--classic" => {
                opts.classic = true;
                any_flag = true;
            }
            "--batch" => opts.batch = true,
            "--invariants" => opts.invariants = true,
            "--optimize" => {
                opts.optimize = true;
                any_flag = true; // suppress the default analysis dump
            }
            "--watch-bench" => {
                opts.watch_bench = true;
                any_flag = true; // suppress the default analysis dump
            }
            "--edits" => {
                let value = args.next().ok_or("--edits needs a value")?;
                opts.edits = value
                    .parse()
                    .map_err(|_| format!("invalid --edits value `{value}`"))?;
            }
            // Orthogonal to the output selectors: does not touch any_flag.
            "--time" => opts.time = true,
            "--jobs" => {
                let value = args.next().ok_or("--jobs needs a value")?;
                opts.jobs = value
                    .parse()
                    .map_err(|_| format!("invalid --jobs value `{value}`"))?;
                opts.batch = true;
            }
            "--cache-cap" => {
                let value = args.next().ok_or("--cache-cap needs a value")?;
                opts.cache_cap = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid --cache-cap value `{value}`"))?,
                );
                opts.batch = true;
            }
            "--cache-dir" => {
                let value = args.next().ok_or("--cache-dir needs a value")?;
                opts.cache_dir = Some(value);
                opts.batch = true;
            }
            "--stats-json" => {
                let value = args.next().ok_or("--stats-json needs a value")?;
                opts.stats_json = Some(value);
                opts.batch = true;
            }
            "--remote" => {
                let value = args.next().ok_or("--remote needs an endpoint")?;
                opts.remote = Some(value);
                opts.batch = true;
            }
            "--fleet" => {
                let value = args.next().ok_or("--fleet needs a list of endpoints")?;
                opts.fleet = Some(value);
                opts.batch = true;
            }
            "--budget" => {
                let value = args.next().ok_or("--budget needs a value")?;
                opts.budget = Budget::parse(&value)?;
            }
            "--faults" => {
                let value = args.next().ok_or("--faults needs a value")?;
                install_faults(&value)?;
            }
            "--demo" => demo = true,
            "--help" | "-h" => return Err(USAGE.into()),
            path if !path.starts_with('-') => opts.paths.push(path.to_string()),
            other => {
                if let Some(value) = other.strip_prefix("--jobs=") {
                    opts.jobs = value
                        .parse()
                        .map_err(|_| format!("invalid --jobs value `{value}`"))?;
                    opts.batch = true;
                } else if let Some(value) = other.strip_prefix("--cache-cap=") {
                    opts.cache_cap = Some(
                        value
                            .parse()
                            .map_err(|_| format!("invalid --cache-cap value `{value}`"))?,
                    );
                    opts.batch = true;
                } else if let Some(value) = other.strip_prefix("--cache-dir=") {
                    opts.cache_dir = Some(value.to_string());
                    opts.batch = true;
                } else if let Some(value) = other.strip_prefix("--stats-json=") {
                    opts.stats_json = Some(value.to_string());
                    opts.batch = true;
                } else if let Some(value) = other.strip_prefix("--remote=") {
                    opts.remote = Some(value.to_string());
                    opts.batch = true;
                } else if let Some(value) = other.strip_prefix("--fleet=") {
                    opts.fleet = Some(value.to_string());
                    opts.batch = true;
                } else if let Some(value) = other.strip_prefix("--edits=") {
                    opts.edits = value
                        .parse()
                        .map_err(|_| format!("invalid --edits value `{value}`"))?;
                } else if let Some(value) = other.strip_prefix("--budget=") {
                    opts.budget = Budget::parse(value)?;
                } else if let Some(value) = other.strip_prefix("--faults=") {
                    install_faults(value)?;
                } else {
                    return Err(format!("unknown flag `{other}` (try --help)"));
                }
            }
        }
    }
    if !any_flag {
        opts.ssa = true;
        opts.classes = true;
        opts.deps = true;
        opts.trip_counts = true;
    }
    if opts.paths.is_empty() && !demo {
        return Err("no input file (try --demo or --help)".into());
    }
    if opts.remote.is_some() && opts.fleet.is_some() {
        return Err("--remote and --fleet are different submission modes; pick one".into());
    }
    if opts.remote.is_some() || opts.fleet.is_some() {
        if opts.cache_dir.is_some() {
            return Err(
                "--cache-dir is local-only; the daemon owns its store (use `bivd --cache-dir`)"
                    .into(),
            );
        }
        if opts.stats_json.is_some() {
            return Err("--stats-json is local-only; use the daemon's `stats` request".into());
        }
        if opts.optimize {
            return Err("--optimize is local-only: transformed IR and validation both need the functions in-process".into());
        }
        if opts.watch_bench {
            return Err(
                "--watch-bench is local-only: the edit loop needs the functions in-process".into(),
            );
        }
    }
    if opts.watch_bench && opts.cache_dir.is_some() {
        return Err("--watch-bench keeps its per-nest cache in memory; drop --cache-dir".into());
    }
    if opts.watch_bench && opts.optimize {
        return Err("--watch-bench and --optimize are separate modes; pick one".into());
    }
    if opts.optimize && opts.cache_dir.is_some() {
        return Err(
            "--optimize does not use the analysis store; drop --cache-dir (the pipeline re-analyzes between transforms)"
                .into(),
        );
    }
    if opts.invariants && (opts.optimize || opts.watch_bench) {
        return Err("--invariants is a batch-report flag; it does not combine with --optimize or --watch-bench".into());
    }
    Ok(opts)
}

/// Arms deterministic fault injection for this process. Only meaningful
/// in builds with the `fault-injection` feature; release binaries carry
/// no injection code and refuse the flag instead of silently ignoring
/// it.
#[cfg(feature = "fault-injection")]
fn install_faults(spec: &str) -> Result<(), String> {
    biv_faults::install_from_spec(spec)
}

#[cfg(not(feature = "fault-injection"))]
fn install_faults(_spec: &str) -> Result<(), String> {
    Err("this binary was built without fault injection; rebuild with `--features fault-injection` to use --faults".into())
}

const DEMO: &str = r#"
func fig1(n, c, k) {
    j = n
    L7: loop {
        i = j + c
        j = i + k
        A[j] = A[i] + 1
        if j > 1000 { break }
    }
}
"#;

/// Expands the input paths: files pass through, directories contribute
/// their `.biv` files (sorted by name, non-recursive then recursive
/// subdirectories, also sorted) so the batch order is deterministic.
/// Unreadable paths become per-file errors, not aborts.
fn expand_inputs(paths: &[String], errors: &mut Vec<String>) -> Vec<String> {
    let mut out = Vec::new();
    for path in paths {
        let meta = match std::fs::metadata(path) {
            Ok(meta) => meta,
            Err(e) => {
                errors.push(format!("cannot read `{path}`: {e}"));
                continue;
            }
        };
        if meta.is_dir() {
            let mut stack = vec![path.clone()];
            while let Some(dir) = stack.pop() {
                let entries = match std::fs::read_dir(&dir) {
                    Ok(entries) => entries,
                    Err(e) => {
                        errors.push(format!("cannot read directory `{dir}`: {e}"));
                        continue;
                    }
                };
                let mut entries: Vec<_> =
                    entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
                entries.sort();
                for entry in entries {
                    let display = entry.to_string_lossy().into_owned();
                    if entry.is_dir() {
                        stack.push(display);
                    } else if display.ends_with(".biv") {
                        out.push(display);
                    }
                }
            }
        } else {
            out.push(path.clone());
        }
    }
    out
}

/// The parallel batch mode: all functions from all files, classified
/// through the sharded, cached batch driver — in-process by default,
/// or by a running `bivd` with `--remote`. Either way the stdout bytes
/// are the same. Returns the number of per-file errors (already printed
/// to stderr); any error makes the exit code nonzero, but every
/// readable, parsable file is still analyzed.
fn run_batch(opts: &Options) -> Result<usize, String> {
    let mut errors: Vec<String> = Vec::new();
    let files = expand_inputs(&opts.paths, &mut errors);
    if files.is_empty() && errors.is_empty() {
        return Err("no input files found".into());
    }
    let output = match (&opts.remote, &opts.fleet) {
        (Some(endpoint), _) => run_batch_remote(opts, endpoint, &files, &mut errors)?,
        (None, Some(endpoints)) => run_batch_fleet(opts, endpoints, &files, &mut errors)?,
        (None, None) => run_batch_local(opts, &files, &mut errors)?,
    };
    print!("{output}");
    for error in &errors {
        eprintln!("bivc: {error}");
    }
    Ok(errors.len())
}

/// In-process batch analysis over the readable, parsable subset of
/// `files`; failures land in `errors`. With `--cache-dir` the batch
/// runs against a durable tiered cache and the stats line is replayed
/// cold, so store warmth never changes the output bytes. Only an
/// unusable cache directory is a hard error.
fn run_batch_local(
    opts: &Options,
    files: &[String],
    errors: &mut Vec<String>,
) -> Result<String, String> {
    let t_parse = opts.time.then(Instant::now);
    let mut funcs: Vec<Function> = Vec::new();
    // (file path, functions in that file) for grouped printing.
    let mut ranges: Vec<(String, usize)> = Vec::new();
    for path in files {
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                errors.push(format!("cannot read `{path}`: {e}"));
                continue;
            }
        };
        match parse_program(&source) {
            Ok(program) => {
                ranges.push((path.clone(), program.functions.len()));
                funcs.extend(program.functions);
            }
            Err(e) => errors.push(format!("{path}: parse error: {e}")),
        }
    }
    let parse_time = t_parse.map(|t| t.elapsed());
    let mut batch_opts = BatchOptions {
        jobs: opts.jobs,
        config: AnalysisConfig {
            budget: opts.budget,
            ..AnalysisConfig::default()
        },
        ..BatchOptions::default()
    };
    if let Some(cap) = opts.cache_cap {
        batch_opts.cache_capacity = cap;
    }
    let mut backend: Box<dyn CacheBackend + Send> = match &opts.cache_dir {
        Some(dir) => {
            let store_opts = StoreOptions::for_budget(&opts.budget);
            let tiered = TieredCache::open(Path::new(dir), batch_opts.cache_capacity, &store_opts)
                .map_err(|e| format!("cannot open cache dir `{dir}`: {e}"))?;
            Box::new(tiered)
        }
        None => Box::new(StructuralCache::new(batch_opts.cache_capacity)),
    };
    eprintln!(
        "analyzing {} functions from {} files on {} workers",
        funcs.len(),
        ranges.len(),
        resolve_jobs(opts.jobs)
    );
    let t_analyze = opts.time.then(Instant::now);
    let report = analyze_batch_with_backend(&funcs, &batch_opts, &mut *backend);
    if let Err(e) = backend.flush() {
        errors.push(format!("cache flush failed: {e}"));
    }
    // Batch workers interleave phases, so only end-to-end times are
    // meaningful here; per-phase timing is the single-function mode's job.
    if let (Some(parse), Some(t)) = (parse_time, t_analyze) {
        eprintln!(
            "timing: parse {:.3?}, batch analysis {:.3?}",
            parse,
            t.elapsed()
        );
    }
    if let Some(path) = &opts.stats_json {
        if let Err(e) = write_stats_json(path, &report.stats, &report.functions, &*backend) {
            errors.push(e);
        }
    }
    // A durable store makes the warm counters depend on what earlier
    // runs left behind, so — exactly like the daemon — the printed
    // stats line replays a cold cache over this batch's hash sequence.
    // The real cumulative counters remain visible via --stats-json.
    let stats = if opts.cache_dir.is_some() {
        let hashes: Vec<u64> = report.functions.iter().map(|f| f.hash).collect();
        cold_batch_stats(&hashes, batch_opts.cache_capacity)
    } else {
        report.stats
    };
    Ok(render_grouped_with(
        &ranges,
        &report.functions,
        &stats,
        opts.invariants,
    ))
}

/// Writes the batch's machine-readable counters to `path` as one JSON
/// object. Field names match the daemon's `stats` response (`cache`,
/// and `store` when a durable tier is present) so dashboards share one
/// schema across the CLI and the server.
fn write_stats_json<B: CacheBackend + ?Sized>(
    path: &str,
    stats: &BatchStats,
    functions: &[biv::core_analysis::FunctionSummary],
    backend: &B,
) -> Result<(), String> {
    let mem = backend.memory();
    // Invariant counters over per-function attachments: a summary
    // shared by N structurally identical functions counts N times,
    // matching what the grouped report prints.
    let (mut inv_loops, mut inv_relations) = (0i64, 0i64);
    for f in functions {
        for l in &f.summary.loops {
            if !l.invariants.is_empty() {
                inv_loops += 1;
                inv_relations += l.invariants.len() as i64;
            }
        }
    }
    let mut fields = vec![
        (
            "batch",
            Json::obj(vec![
                ("functions", Json::Int(stats.functions as i64)),
                ("hits", Json::Int(stats.hits as i64)),
                ("misses", Json::Int(stats.misses as i64)),
                ("evictions", Json::Int(stats.evictions as i64)),
                ("jobs", Json::Int(stats.jobs as i64)),
            ]),
        ),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::Int(mem.hits() as i64)),
                ("misses", Json::Int(mem.misses() as i64)),
                ("evictions", Json::Int(mem.evictions() as i64)),
                ("entries", Json::Int(mem.len() as i64)),
                ("capacity", Json::Int(mem.capacity() as i64)),
            ]),
        ),
        (
            "invariants",
            Json::obj(vec![
                ("loops", Json::Int(inv_loops)),
                ("relations", Json::Int(inv_relations)),
            ]),
        ),
    ];
    if let Some(gauges) = backend.store_gauges() {
        fields.push(("store", biv::server::metrics::store_json(&gauges)));
    }
    let text = Json::obj(fields).to_text();
    std::fs::write(path, text + "\n").map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// The `--optimize` mode: parse every input, run the transformation
/// pipeline on every function across `--jobs` workers, and validate each
/// rewritten function against its original by differential execution on
/// seeded inputs. With a single input file (and no batch flags) the
/// transformed IR is printed per function; otherwise one report line per
/// function. Output is byte-identical for every `--jobs` value. Returns
/// the number of errors, including validation failures (already printed
/// to stderr).
fn run_optimize(opts: &Options) -> Result<usize, String> {
    use biv::core_analysis::{ValidationOptions, Verdict};
    use biv::transform::{optimize_batch, TransformReport};
    let mut errors: Vec<String> = Vec::new();
    let files = expand_inputs(&opts.paths, &mut errors);
    if files.is_empty() && errors.is_empty() {
        return Err("no input files found".into());
    }
    let mut funcs: Vec<Function> = Vec::new();
    let mut ranges: Vec<(String, usize)> = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                errors.push(format!("cannot read `{path}`: {e}"));
                continue;
            }
        };
        match parse_program(&source) {
            Ok(program) => {
                ranges.push((path.clone(), program.functions.len()));
                funcs.extend(program.functions);
            }
            Err(e) => errors.push(format!("{path}: parse error: {e}")),
        }
    }
    let jobs = resolve_jobs(opts.jobs);
    eprintln!(
        "optimizing {} functions from {} files on {} workers",
        funcs.len(),
        ranges.len(),
        jobs
    );
    let vopts = ValidationOptions::default();
    let config = AnalysisConfig {
        budget: opts.budget,
        ..AnalysisConfig::default()
    };
    let t_optimize = opts.time.then(Instant::now);
    let results = optimize_batch(&funcs, jobs, &vopts, config);
    if let Some(t) = t_optimize {
        eprintln!("timing: optimize + validate {:.3?}", t.elapsed());
    }
    let detailed = ranges.len() == 1 && !opts.batch;
    let mut out = String::new();
    let mut totals = TransformReport::default();
    let (mut validated, mut inconclusive, mut failed) = (0usize, 0usize, 0usize);
    let mut next = 0usize;
    for (path, count) in &ranges {
        if !detailed {
            out.push_str(&format!("══ {path} ══\n"));
        }
        for r in &results[next..next + count] {
            totals.merge(&r.report);
            match &r.verdict {
                Verdict::Validated { .. } => validated += 1,
                Verdict::Inconclusive { .. } => inconclusive += 1,
                bad => {
                    failed += 1;
                    errors.push(format!(
                        "{path}: {}: validation FAILED: {}",
                        r.name,
                        bad.render()
                    ));
                }
            }
            if detailed {
                out.push_str(&format!("══ function {} ══\n", r.name));
                out.push_str(&format!("transforms: {}\n", r.report.render()));
                out.push_str(&format!("validation: {}\n", r.verdict.render()));
                if r.report.total() > 0 {
                    out.push_str(&biv::ir::print::function_to_string(&r.func));
                }
            } else {
                out.push_str(&format!(
                    "  {}: {} | {}\n",
                    r.name,
                    r.report.render(),
                    r.verdict.render()
                ));
            }
        }
        next += count;
    }
    out.push_str(&format!(
        "transform totals: {} | functions={} validated={} inconclusive={} failed={}\n",
        totals.render(),
        results.len(),
        validated,
        inconclusive,
        failed
    ));
    print!("{out}");
    if let Some(path) = &opts.stats_json {
        let text = Json::obj(vec![(
            "transform",
            Json::obj(vec![
                ("functions", Json::Int(results.len() as i64)),
                (
                    "strength_reduced",
                    Json::Int(totals.strength_reduced as i64),
                ),
                ("peeled", Json::Int(totals.peeled as i64)),
                ("unrolled", Json::Int(totals.unrolled as i64)),
                ("dead_ivs", Json::Int(totals.dead_ivs as i64)),
                ("interchanged", Json::Int(totals.interchanged as i64)),
                ("validated", Json::Int(validated as i64)),
                ("inconclusive", Json::Int(inconclusive as i64)),
                ("failed", Json::Int(failed as i64)),
                ("budget_skipped", Json::Bool(totals.budget_skipped)),
            ]),
        )])
        .to_text();
        if let Err(e) = std::fs::write(path, text + "\n") {
            errors.push(format!("cannot write `{path}`: {e}"));
        }
    }
    for error in &errors {
        eprintln!("bivc: {error}");
    }
    Ok(errors.len())
}

/// The `--watch-bench` mode: an editing-session simulation measuring
/// incremental re-analysis. For every function, a warm
/// [`IncrementalState`] survives a deterministic sequence of single-nest
/// constant edits; after each edit the function is re-analyzed three
/// ways — warm incremental (the measurement), whole-function
/// `analyze_with` (the baseline), and cold incremental (the oracle:
/// its rendering must match the warm run byte-for-byte). Returns the
/// number of errors, including identity mismatches (already printed to
/// stderr).
fn run_watch_bench(opts: &Options) -> Result<usize, String> {
    use biv::core_analysis::{
        analyze_incremental, perturb_nest_constant, IncrementalState, RegionMap,
    };
    let mut errors: Vec<String> = Vec::new();
    let files = expand_inputs(&opts.paths, &mut errors);
    if files.is_empty() && errors.is_empty() {
        return Err("no input files found".into());
    }
    let mut funcs: Vec<Function> = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                errors.push(format!("cannot read `{path}`: {e}"));
                continue;
            }
        };
        match parse_program(&source) {
            Ok(program) => funcs.extend(program.functions),
            Err(e) => errors.push(format!("{path}: parse error: {e}")),
        }
    }
    let config = AnalysisConfig {
        budget: opts.budget,
        ..AnalysisConfig::default()
    };
    let median_us = |ns: &mut Vec<u128>| -> f64 {
        ns.sort_unstable();
        if ns.is_empty() {
            return 0.0;
        }
        ns[ns.len() / 2] as f64 / 1000.0
    };
    for func in &funcs {
        let mut state = IncrementalState::new(config);
        let t_cold = Instant::now();
        let initial = analyze_incremental(func, &mut state);
        let cold_ns = t_cold.elapsed().as_nanos();
        if !initial.stats.sliceable {
            println!(
                "func {}: not sliceable (no nests or shared exits); whole-function fallback, \
                 cold {:.1}µs",
                func.name(),
                cold_ns as f64 / 1000.0
            );
            continue;
        }
        let mut current = func.clone();
        let mut warm_ns: Vec<u128> = Vec::new();
        let mut full_ns: Vec<u128> = Vec::new();
        let (mut applied, mut reused_total, mut nests_total) = (0usize, 0usize, 0usize);
        for edit in 0..opts.edits {
            let regions = RegionMap::compute(&current);
            if !regions.is_sliceable() || regions.nests.is_empty() {
                break;
            }
            // Round-robin over nests; a nest with no constants just
            // skips its turn.
            let k = edit % regions.nests.len();
            let pick = edit as u64 * 0x9e37_79b9 + 17;
            let Some(mutated) = perturb_nest_constant(&current, &regions, k, pick) else {
                continue;
            };
            let t_warm = Instant::now();
            let warm = analyze_incremental(&mutated, &mut state);
            warm_ns.push(t_warm.elapsed().as_nanos());
            let t_full = Instant::now();
            let full = analyze_with(&mutated, config);
            full_ns.push(t_full.elapsed().as_nanos());
            std::hint::black_box(&full);
            let mut cold_state = IncrementalState::new(config);
            let cold = analyze_incremental(&mutated, &mut cold_state);
            if warm.render_nests() != cold.render_nests() {
                errors.push(format!(
                    "{}: edit {edit}: warm incremental diverged from cold re-analysis",
                    func.name()
                ));
            }
            applied += 1;
            reused_total += warm.stats.reused;
            nests_total += warm.stats.nests;
            current = mutated;
        }
        println!(
            "func {}: nests={} edits={} reused {}/{} | cold {:.1}µs, warm median {:.1}µs, \
             full median {:.1}µs",
            func.name(),
            initial.stats.nests,
            applied,
            reused_total,
            nests_total,
            cold_ns as f64 / 1000.0,
            median_us(&mut warm_ns),
            median_us(&mut full_ns),
        );
    }
    for error in &errors {
        eprintln!("bivc: {error}");
    }
    Ok(errors.len())
}

/// Ships the batch to a `bivd` at `endpoint`. The daemon renders the
/// same bytes a local run would (its stats line replays a cold cache at
/// this client's `--cache-cap`), so callers cannot tell the modes apart
/// by output — only by latency.
fn run_batch_remote(
    opts: &Options,
    endpoint: &str,
    files: &[String],
    errors: &mut Vec<String>,
) -> Result<String, String> {
    let mut payload: Vec<AnalyzeFile> = Vec::new();
    for path in files {
        match std::fs::read_to_string(path) {
            Ok(source) => payload.push(AnalyzeFile {
                path: path.clone(),
                source,
            }),
            Err(e) => errors.push(format!("cannot read `{path}`: {e}")),
        }
    }
    let endpoint = Endpoint::parse(endpoint);
    let mut client =
        Client::connect(&endpoint).map_err(|e| format!("cannot connect to {endpoint}: {e}"))?;
    eprintln!("analyzing {} files via {endpoint}", payload.len());
    let response = client
        .analyze_with(payload, opts.cache_cap, opts.invariants)
        .map_err(|e| format!("remote analysis via {endpoint} failed: {e}"))?;
    match response {
        Response::Analyze {
            output,
            errors: remote_errors,
            ..
        } => {
            errors.extend(remote_errors.into_iter().map(|e| e.message));
            Ok(output)
        }
        Response::Busy { retry_after_ms } => Err(format!(
            "server at {endpoint} is saturated (busy even after retries; last hint {retry_after_ms} ms)"
        )),
        Response::Error { kind, message } => {
            Err(format!("server at {endpoint} refused the batch ({kind}): {message}"))
        }
        other => Err(format!("unexpected response from {endpoint}: {other:?}")),
    }
}

/// Shards the batch across a `bivd` fleet via the consistent-hash
/// router. The stdout bytes match a local run exactly — files are
/// reassembled in input order and the stats line is replayed cold over
/// the whole batch — while shard deaths, redirects, and per-file
/// failures surface on stderr.
fn run_batch_fleet(
    opts: &Options,
    endpoints: &str,
    files: &[String],
    errors: &mut Vec<String>,
) -> Result<String, String> {
    use biv::fleet::{FleetConfig, Router};
    let endpoints: Vec<String> = endpoints
        .split(',')
        .map(str::trim)
        .filter(|e| !e.is_empty())
        .map(str::to_string)
        .collect();
    if endpoints.is_empty() {
        return Err("--fleet needs at least one endpoint".into());
    }
    let mut payload: Vec<AnalyzeFile> = Vec::new();
    for path in files {
        match std::fs::read_to_string(path) {
            Ok(source) => payload.push(AnalyzeFile {
                path: path.clone(),
                source,
            }),
            Err(e) => errors.push(format!("cannot read `{path}`: {e}")),
        }
    }
    let shard_count = endpoints.len();
    let mut config = FleetConfig::new(endpoints);
    config.cache_cap = opts.cache_cap;
    config.invariants = opts.invariants;
    let mut router = Router::new(config)?;
    eprintln!(
        "analyzing {} files across {shard_count} shards",
        payload.len()
    );
    let report = router.analyze(payload)?;
    for note in &report.notes {
        eprintln!("bivc: fleet: {note}");
    }
    // The one-line batch summary (greppable by smoke tests): a warm
    // failover shows up here as `0 analyzed` with everything cached.
    let mut summary = format!(
        "bivc: fleet: {} functions, {} analyzed, {} cached",
        report.functions, report.analyzed, report.cached
    );
    if report.backoff_exhausted > 0 {
        summary.push_str(&format!(", {} backoff-exhausted", report.backoff_exhausted));
    }
    if !report.dead_shards.is_empty() {
        summary.push_str(&format!(", {} dead shard(s)", report.dead_shards.len()));
    }
    eprintln!("{summary}");
    errors.extend(report.errors.into_iter().map(|e| e.message));
    Ok(report.output)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.watch_bench {
        return match run_watch_bench(&opts) {
            Ok(0) => ExitCode::SUCCESS,
            Ok(_) => ExitCode::FAILURE, // errors / identity mismatches on stderr
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    if opts.optimize {
        return match run_optimize(&opts) {
            Ok(0) => ExitCode::SUCCESS,
            Ok(_) => ExitCode::FAILURE, // errors / failed validations on stderr
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    let multiple_inputs = opts.paths.len() > 1
        || opts
            .paths
            .first()
            .and_then(|p| std::fs::metadata(p).ok())
            .is_some_and(|m| m.is_dir());
    if opts.batch || opts.invariants || multiple_inputs {
        return match run_batch(&opts) {
            Ok(0) => ExitCode::SUCCESS,
            Ok(_) => ExitCode::FAILURE, // per-file errors already on stderr
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    let source = match opts.paths.first() {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => DEMO.to_string(),
    };
    let t_parse = opts.time.then(Instant::now);
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parse_time = t_parse.map(|t| t.elapsed());
    let mut phase_totals = PhaseTimes::default();
    for func in &program.functions {
        println!("══ function {} ══", func.name());
        if opts.classic {
            let report = biv::classic::detect(func);
            println!(
                "classical detector: {} variables classified",
                report.total()
            );
            for lr in &report.loops {
                for iv in &lr.ivs {
                    println!("    {}: {:?}", func.var_name(iv.var), iv.kind);
                }
            }
        }
        let config = AnalysisConfig {
            budget: opts.budget,
            ..AnalysisConfig::default()
        };
        let analysis = if opts.time {
            let (analysis, times) = analyze_with_times(func, config);
            phase_totals.accumulate(&times);
            analysis
        } else {
            analyze_with(func, config)
        };
        if opts.dot {
            println!("{}", biv::ir::dot::cfg_to_dot(func));
            println!("{}", biv::ssa::ssa_graph_to_dot(analysis.ssa()));
        }
        if opts.ssa {
            println!("{}", biv::ssa::ssa_to_string(analysis.ssa()));
        }
        if opts.classes || opts.trip_counts {
            for (_, info) in analysis.loops() {
                if opts.trip_counts {
                    println!("loop {}: trip count {}", info.name, info.trip_count);
                    if let Some(max) = &info.max_trip_count {
                        println!("    max trip count: {max}");
                    }
                }
                if opts.classes {
                    // `VecMap` iteration is in value-index order.
                    for (v, class) in info.classes.iter() {
                        println!(
                            "    {:<8} => {}",
                            analysis.ssa().value_name(v),
                            describe_class(&analysis, class)
                        );
                    }
                }
            }
        }
        if opts.deps {
            let tester = biv::depend::DependenceTester::new(&analysis);
            let accesses = tester.accesses();
            println!("dependences ({} array references):", accesses.len());
            for s in 0..accesses.len() {
                for d in 0..accesses.len() {
                    let (a, b) = (&accesses[s], &accesses[d]);
                    if a.array != b.array || (!a.is_write && !b.is_write) {
                        continue;
                    }
                    if s == d && !a.is_write {
                        continue;
                    }
                    if let biv::depend::DepTestResult::Dependent(dep) = tester.test(s, d) {
                        let array = analysis.ssa().func().array_name(a.array);
                        println!(
                            "    {array}: {} {} {}",
                            dep.kind,
                            dep.directions,
                            if dep.exact { "" } else { "(assumed)" }
                        );
                    }
                }
            }
        }
    }
    if let Some(parse) = parse_time {
        eprintln!("timing: parse {parse:.3?}, {phase_totals}");
    }
    ExitCode::SUCCESS
}
