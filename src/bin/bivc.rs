//! `bivc` — command-line driver for the `biv` analysis pipeline.
//!
//! ```text
//! bivc [--ssa] [--classes] [--deps] [--trip-counts] [--classic] [--dot] FILE
//! bivc --demo            # run the built-in Figure 1 demo
//! ```
//!
//! With no mode flags, everything is printed.

use std::process::ExitCode;

use biv::core_analysis::{analyze, describe_class};
use biv::depend::{DepTestResult, DependenceTester};
use biv::ir::parser::parse_program;

struct Options {
    dot: bool,
    ssa: bool,
    classes: bool,
    deps: bool,
    trip_counts: bool,
    classic: bool,
    path: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        dot: false,
        ssa: false,
        classes: false,
        deps: false,
        trip_counts: false,
        classic: false,
        path: None,
    };
    let mut any_flag = false;
    let mut demo = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--ssa" => {
                opts.ssa = true;
                any_flag = true;
            }
            "--dot" => {
                opts.dot = true;
                any_flag = true;
            }
            "--classes" => {
                opts.classes = true;
                any_flag = true;
            }
            "--deps" => {
                opts.deps = true;
                any_flag = true;
            }
            "--trip-counts" => {
                opts.trip_counts = true;
                any_flag = true;
            }
            "--classic" => {
                opts.classic = true;
                any_flag = true;
            }
            "--demo" => demo = true,
            "--help" | "-h" => {
                return Err("usage: bivc [--ssa] [--classes] [--deps] [--trip-counts] [--classic] [--dot] FILE | --demo".into())
            }
            path if !path.starts_with('-') => opts.path = Some(path.to_string()),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if !any_flag {
        opts.ssa = true;
        opts.classes = true;
        opts.deps = true;
        opts.trip_counts = true;
    }
    if demo && opts.path.is_none() {
        opts.path = None;
    } else if opts.path.is_none() {
        return Err("no input file (try --demo or --help)".into());
    }
    Ok(opts)
}

const DEMO: &str = r#"
func fig1(n, c, k) {
    j = n
    L7: loop {
        i = j + c
        j = i + k
        A[j] = A[i] + 1
        if j > 1000 { break }
    }
}
"#;

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let source = match &opts.path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => DEMO.to_string(),
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for func in &program.functions {
        println!("══ function {} ══", func.name());
        if opts.classic {
            let report = biv::classic::detect(func);
            println!("classical detector: {} variables classified", report.total());
            for lr in &report.loops {
                for iv in &lr.ivs {
                    println!("    {}: {:?}", func.var_name(iv.var), iv.kind);
                }
            }
        }
        let analysis = analyze(func);
        if opts.dot {
            println!("{}", biv::ir::dot::cfg_to_dot(func));
            println!("{}", biv::ssa::ssa_graph_to_dot(analysis.ssa()));
        }
        if opts.ssa {
            println!("{}", biv::ssa::ssa_to_string(analysis.ssa()));
        }
        if opts.classes || opts.trip_counts {
            for (_, info) in analysis.loops() {
                if opts.trip_counts {
                    println!("loop {}: trip count {}", info.name, info.trip_count);
                    if let Some(max) = &info.max_trip_count {
                        println!("    max trip count: {max}");
                    }
                }
                if opts.classes {
                    let mut values: Vec<_> = info.classes.iter().collect();
                    values.sort_by_key(|(v, _)| **v);
                    for (v, class) in values {
                        println!(
                            "    {:<8} => {}",
                            analysis.ssa().value_name(*v),
                            describe_class(&analysis, class)
                        );
                    }
                }
            }
        }
        if opts.deps {
            let tester = DependenceTester::new(&analysis);
            let accesses = tester.accesses();
            println!("dependences ({} array references):", accesses.len());
            for s in 0..accesses.len() {
                for d in 0..accesses.len() {
                    let (a, b) = (&accesses[s], &accesses[d]);
                    if a.array != b.array || (!a.is_write && !b.is_write) {
                        continue;
                    }
                    if s == d && !a.is_write {
                        continue;
                    }
                    if let DepTestResult::Dependent(dep) = tester.test(s, d) {
                        let array = analysis.ssa().func().array_name(a.array);
                        println!(
                            "    {array}: {} {} {}",
                            dep.kind,
                            dep.directions,
                            if dep.exact { "" } else { "(assumed)" }
                        );
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}
