//! Trip-count analysis (§5.2): the condition-conversion table, constant
//! and symbolic counts, and the countable-loop machinery behind nested
//! induction variables.
//!
//! ```sh
//! cargo run --example trip_counts
//! ```

use biv::core_analysis::analyze_source;

fn show(title: &str, src: &str) -> Result<(), Box<dyn std::error::Error>> {
    let analysis = analyze_source(src)?;
    println!("── {title}");
    for (_, info) in analysis.loops() {
        println!("   {}: trip count = {}", info.name, info.trip_count);
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    show(
        "constant bounds: for i = 1 to 10",
        "func f() { L1: for i = 1 to 10 { x = i } }",
    )?;
    show(
        "constant bounds, step 3: for i = 5 to 20 by 3 (rounds up)",
        "func f() { L1: for i = 5 to 20 by 3 { x = i } }",
    )?;
    show(
        "downward: for i = 10 to 1 by -2",
        "func f() { L1: for i = 10 to 1 by -2 { x = i } }",
    )?;
    show(
        "symbolic bound: for i = 1 to n",
        "func f(n) { L1: for i = 1 to n { x = i } }",
    )?;
    show(
        "triangular inner loop: for k = 1 to i (count is the outer IV)",
        "func f(n) { L19: for i = 1 to n { L20: for k = 1 to i { x = k } } }",
    )?;
    show(
        "zero-trip: for i = 10 to 5",
        "func f() { L1: for i = 10 to 5 { x = i } }",
    )?;
    show(
        "non-terminating: step 0",
        "func f() { x = 0 L1: loop { x = x + 0 if x > 5 { break } } }",
    )?;
    show(
        "mid-loop exit like the paper's L18",
        "func f() { k = 0 L18: loop { k = k + 2 if k > 9 { break } } }",
    )?;
    show(
        "uncountable: data-dependent exit",
        "func f(n) { L1: loop { t = A[n] if t > 0 { break } } }",
    )?;
    Ok(())
}
