//! Strength reduction and wrap-around loop peeling — the transformations
//! the classification was historically tied to (§1, §4.1).
//!
//! ```sh
//! cargo run --example strength_reduction
//! ```

use biv::ir::interp::Interpreter;
use biv::ir::parser::parse_program;
use biv::ir::print::function_to_string;
use biv::transform::{peel_first_iteration, strength_reduce};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Strength reduction -------------------------------------------
    let src = r#"
        func addressing(n) {
            L1: for i = 1 to n {
                j = 8 * i
                A[j] = i
                k = i * 4
                B[k] = j
            }
        }
    "#;
    let program = parse_program(src)?;
    let original = program.functions[0].clone();
    let mut reduced = original.clone();
    let count = strength_reduce(&mut reduced);
    println!("strength reduction eliminated {count} multiplications");
    println!("--- before ---\n{}", function_to_string(&original));
    println!("--- after ----\n{}", function_to_string(&reduced));

    // Differential check.
    let interp = Interpreter::new();
    let a = interp.run(&original, &[10])?;
    let b = interp.run(&reduced, &[10])?;
    assert_eq!(a.arrays, b.arrays);
    println!("semantics preserved (differential interpretation on n=10)\n");

    // --- Wrap-around peeling -------------------------------------------
    let src = r#"
        func wrap(n) {
            j = 100
            i = 1
            L10: loop {
                A[j] = i
                j = i
                i = i + 1
                if i > n { break }
            }
        }
    "#;
    let program = parse_program(src)?;
    let mut func = program.functions[0].clone();
    let before = biv::core_analysis::analyze(&func);
    let j2 = before.ssa().value_by_name("j2").expect("j2 exists");
    println!(
        "before peeling: j2 = {}",
        before.describe(j2).unwrap_or_default()
    );
    assert!(peel_first_iteration(&mut func, "L10").peeled());
    let after = biv::core_analysis::analyze(&func);
    let l10 = after.loop_by_label("L10").expect("loop remains");
    let j_var = after.ssa().func().var_by_name("j").expect("j exists");
    for (v, class) in &after.info(l10).classes {
        if after.ssa().values[v].var == Some(j_var) {
            println!(
                "after peeling:  {} = {}",
                after.ssa().value_name(v),
                biv::core_analysis::describe_class(&after, class)
            );
        }
    }
    println!("the wrap-around refined to a plain induction variable");
    Ok(())
}
