//! The full zoo: every worked example from the paper (Figures 1–10,
//! loops L7–L24), classified and printed side by side with the paper's
//! expected results.
//!
//! ```sh
//! cargo run --example paper_zoo
//! ```

use biv::core_analysis::{analyze_source, Analysis};

struct Example {
    title: &'static str,
    paper_says: &'static str,
    source: &'static str,
    show: &'static [&'static str],
}

fn examples() -> Vec<Example> {
    vec![
        Example {
            title: "Figure 1 / L7 — basic linear induction variables",
            paper_says: "i3=(L7, n1+c1, c1+k1)  j2=(L7, n1, c1+k1)  j3=(L7, n1+c1+k1, c1+k1)",
            source: "func fig1(n, c, k) { j = n L7: loop { i = j + c j = i + k if j > 1000 { break } } }",
            show: &["j2", "i1", "j3"],
        },
        Example {
            title: "Figure 3 / L8 — same increment on both branch paths",
            paper_says: "i2=(L8, 1, 2)  i3=i4=i5=(L8, 3, 2)",
            source: "func fig3(e, n) { i = 1 L8: loop { if e > 0 { i = i + 2 } else { i = i + 2 } if i > n { break } } }",
            show: &["i2", "i3", "i4", "i5"],
        },
        Example {
            title: "Figure 4 / L10 — wrap-around variables (orders 1 and 2)",
            paper_says: "j2 first-order wrap-around of (L10,1,1); k2 second-order",
            source: "func fig4(n, k0, j0) { k = k0 j = j0 i = 1 L10: loop { A[k] = i A[j] = i k = j j = i i = i + 1 if i > n { break } } }",
            show: &["i2", "j2", "k2"],
        },
        Example {
            title: "Figure 5 / L13 — periodic family, period 3",
            paper_says: "(j,k,l) rotate: periodic period 3; t2 wraps the family",
            source: "func fig5(n, j0, k0, l0, t0) { t = t0 j = j0 k = k0 l = l0 L13: loop { A[t] = j t = j j = k k = l l = t if j > n { break } } }",
            show: &["j2", "k2", "l2", "t2"],
        },
        Example {
            title: "L11 — flip-flop by explicit swap",
            paper_says: "j, jold periodic with period 2",
            source: "func l11(n) { j = 1 jold = 2 L11: for it = 1 to n { jt = jold jold = j j = jt A[j] = it } }",
            show: &["j2", "jold2"],
        },
        Example {
            title: "L12 — flip-flop by j = 3 - j",
            paper_says: "geometric with base -1: values alternate 1, 2, 1, 2, …",
            source: "func l12(n) { j = 1 L12: for it = 1 to n { j = 3 - j A[j] = it } }",
            show: &["j2", "j3"],
        },
        Example {
            title: "L14 — polynomial and geometric induction variables",
            paper_says: "j: (h²+3h+4)/2   k: (h³+6h²+23h+24)/6   l: 2^(h+2) − 1",
            source: "func l14(n) { j = 1 k = 1 l = 1 L14: for i = 1 to n { j = j + i k = k + j + 1 l = l * 2 + 1 A[j] = k } }",
            show: &["j3", "k3", "l3"],
        },
        Example {
            title: "L14 variant — m = 3*m + 2*i + 1",
            paper_says: "geometric: 2·3^h − h − 2",
            source: "func l14m(n) { m = 0 L14: for i = 1 to n { m = 3 * m + 2 * i + 1 A[m] = i } }",
            show: &["m2", "m3"],
        },
        Example {
            title: "Figure 6 / L16 — strictly monotonic",
            paper_says: "k incremented on every path: monotonically strictly increasing",
            source: "func fig6(n, e) { k = 0 L16: loop { if e > 0 { k = k + 1 } else { k = k + 2 } if k > n { break } } }",
            show: &["k2", "k3", "k4"],
        },
        Example {
            title: "L15 — conditional pack: monotonic (non-strict)",
            paper_says: "k monotonically increasing; k3 strictly (§5.4)",
            source: "func l15(n) { k = 0 L15: for i = 1 to n { t = A[i] if t > 0 { k = k + 1 B[k] = t } } }",
            show: &["k2", "k3"],
        },
        Example {
            title: "Figures 7–8 / L17–L18 — nested loops with exit values",
            paper_says: "inner trip count 100; outer: k2=(L17, 0, 204)",
            source: "func fig7(n) { k = 0 L17: loop { i = 1 L18: loop { k = k + 2 if i > 100 { break } i = i + 1 } k = k + 2 if k > n { break } } }",
            show: &["k2", "k3", "k4"],
        },
        Example {
            title: "Figure 9 / L19–L20 — triangular loop (the EHLP92 case)",
            paper_says: "j quadratic in the outer loop: h² + h at the header",
            source: "func fig9(n) { j = 0 L19: for i = 1 to n { j = j + i L20: for k = 1 to i { j = j + 1 } } }",
            show: &["j2", "j4"],
        },
    ]
}

fn print_example(ex: &Example) -> Result<(), Box<dyn std::error::Error>> {
    println!("════════════════════════════════════════════════════════════");
    println!("{}", ex.title);
    println!("  paper: {}", ex.paper_says);
    let analysis: Analysis = analyze_source(ex.source)?;
    for name in ex.show {
        match analysis.describe_by_name(name) {
            Some(desc) => println!("  ours:  {name:<6} => {desc}"),
            None => println!("  ours:  {name:<6} => (no such value)"),
        }
    }
    for (_, info) in analysis.loops() {
        println!("  trip count of {}: {}", info.name, info.trip_count);
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for ex in examples() {
        print_example(&ex)?;
    }
    Ok(())
}
