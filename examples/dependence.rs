//! Dependence analysis on the paper's motivating workloads (§6): a
//! relaxation code with flip-flop plane indices, the conditional-pack
//! loop, and the wrap-around stencil.
//!
//! ```sh
//! cargo run --example dependence
//! ```

use biv::core_analysis::analyze_source;
use biv::depend::{DepTestResult, DependenceTester};

fn report(title: &str, src: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("════════════════════════════════════════════════════════════");
    println!("{title}\n{src}");
    let analysis = analyze_source(src)?;
    let tester = DependenceTester::new(&analysis);
    let accesses = tester.accesses();
    println!("{} array references found", accesses.len());
    for src_idx in 0..accesses.len() {
        for dst_idx in 0..accesses.len() {
            let a = &accesses[src_idx];
            let b = &accesses[dst_idx];
            if a.array != b.array || (!a.is_write && !b.is_write) {
                continue;
            }
            if src_idx == dst_idx && !a.is_write {
                continue;
            }
            let array = analysis.ssa().func().array_name(a.array);
            match tester.test(src_idx, dst_idx) {
                DepTestResult::Independent => {
                    println!("  {array}: ref{src_idx} -> ref{dst_idx}: independent");
                }
                DepTestResult::Dependent(d) => {
                    let mut extras = Vec::new();
                    if d.wraparound_after > 0 {
                        extras.push(format!("holds after iteration {}", d.wraparound_after));
                    }
                    if let Some(p) = d.periodic {
                        extras.push(format!(
                            "iterations congruent to {} mod {}",
                            p.residue, p.period
                        ));
                    }
                    if !d.exact {
                        extras.push("assumed (not proved)".to_string());
                    }
                    let extras = if extras.is_empty() {
                        String::new()
                    } else {
                        format!("  [{}]", extras.join("; "))
                    };
                    println!(
                        "  {array}: ref{src_idx} -> ref{dst_idx}: {} {}{extras}",
                        d.kind, d.directions
                    );
                }
            }
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    report(
        "Relaxation with flip-flop plane index (§4.2): the = direction in \
         family space becomes != across iterations — old and new planes \
         never collide",
        r#"
        func relax(n) {
            new = 1
            old = 2
            L1: for it = 1 to n {
                L2: for i = 2 to 99 {
                    A[new, i] = A[old, i - 1] + A[old, i + 1]
                }
                t = new
                new = old
                old = t
            }
        }
        "#,
    )?;
    report(
        "Conditional pack (Figure 10): strictly monotonic subscripts give \
         the (=) direction for B, (<=) for F",
        r#"
        func pack(n) {
            k = 0
            L15: for i = 1 to n {
                F[k] = A[i]
                t = A[i]
                if t > 0 {
                    k = k + 1
                    B[k] = A[i]
                    E[i] = B[k]
                }
                G[i] = F[k]
            }
        }
        "#,
    )?;
    report(
        "Wrap-around stencil (L9, §4.1): the dependence holds only after \
         the first iteration — peel it and the loop parallelizes",
        r#"
        func stencil(n) {
            iml = n
            L9: for i = 1 to n {
                A[i] = A[iml] + 1
                iml = i
            }
        }
        "#,
    )?;
    Ok(())
}
