//! Quickstart: parse a loop, run the classifier, print the paper-style
//! tuples for every variable.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use biv::core_analysis::analyze_source;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1 of the paper: a family of mutually-defined basic linear
    // induction variables.
    let src = r#"
        func fig1(n, c, k) {
            j = n
            L7: loop {
                i = j + c
                j = i + k
                if j > 1000 { break }
            }
        }
    "#;
    let analysis = analyze_source(src)?;

    println!("source:\n{src}");
    println!("SSA form:\n{}", biv::ssa::ssa_to_string(analysis.ssa()));

    for (_, info) in analysis.loops() {
        println!("loop {} (trip count: {}):", info.name, info.trip_count);
        // Dense-map keys iterate in ascending index order already.
        for value in info.classes.keys() {
            let name = analysis.ssa().value_name(value);
            let description = analysis.describe(value).unwrap_or_default();
            println!("    {name:<6} => {description}");
        }
    }
    Ok(())
}
