//! Deterministic, seeded fault injection for chaos testing.
//!
//! A *fault plan* is a `(seed, profile)` pair installed process-wide.
//! Code under test asks at named *sites* ("net.read.short",
//! "worker.job.panic", …) whether a fault should fire; the answer is a
//! pure function of the seed, the site name, and how many times that
//! site has been consulted — so a given seed produces the same sequence
//! of faults at every site on every run, independent of timing. The
//! *assignment* of a firing draw to a particular request may still race
//! across threads, which is why the chaos suite asserts invariants
//! (every accepted request answered, byte-identical output after
//! retries) rather than exact schedules.
//!
//! With no plan installed every query is a cheap atomic load returning
//! "no fault" — and the facility is only compiled into `biv-core` /
//! `biv-server` behind their `fault-injection` features, so release
//! builds carry none of it.
//!
//! # Sites
//!
//! | site | effect at the call site |
//! |------|-------------------------|
//! | `net.read.eintr` / `net.write.eintr` | a spurious `ErrorKind::Interrupted` |
//! | `net.read.short` / `net.write.short` | the op is truncated to a short length |
//! | `worker.job.panic` | panic inside the worker's per-job `catch_unwind` |
//! | `worker.die` | panic *outside* it — the worker thread dies |
//! | `queue.storm` | an admission is refused as if the queue were full |
//! | `cache.commit` | a computed summary is not committed to the cache |
//! | `analyze.panic` | panic inside per-function analysis (batch boundary) |
//! | `store.write.torn` | a store append writes only a prefix of the record and the store wedges — a simulated crash mid-commit |
//! | `store.write.short` | a store append is split across two writes (exercises the write loop; no data loss) |
//! | `store.record.corrupt` | one byte of a record is flipped after its checksum was computed — caught by CRC on reopen |
//! | `fleet.shard.unreachable` | a router dial fails as if the shard were dead — exercises redirect-to-successor |
//! | `fleet.heartbeat.lost` | one gossip send is skipped — exercises the suspect/refute ladder |
//! | `fleet.partition` | one gossip send is dropped as if the pair were partitioned (same effect as a lost heartbeat, drawn independently so both can stack) |
//! | `fleet.replica.lag` | a replication batch is delayed before sending — exercises the `replication_lag` gauge and warm-failover under lag |
//! | `epoll.wait.eintr` | the event loop's wait is interrupted early (spurious `EINTR`) |
//! | `epoll.spurious.wake` | the event loop wakes with no completion pending — must be a no-op |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Which family of sites a plan arms, and how hard.
///
/// Rates are fixed per profile (in fires per 1024 draws) so a spec
/// string fully determines behaviour; see [`rate_per_1024`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Network-layer faults only: spurious `EINTR`, short reads/writes.
    Io,
    /// Worker faults only: per-job panics and whole-worker deaths.
    Worker,
    /// Queue-admission storms only: forced `busy` rejections.
    Storm,
    /// Cache-commit failures only: computed summaries are not retained.
    Cache,
    /// Per-function analysis panics only (exercises the batch boundary).
    Analyze,
    /// Durable-store faults only: torn appends (simulated crash
    /// mid-commit), split writes, and record corruption caught by CRC
    /// on reopen. None of them changes a served response — persistence
    /// degrades, answers do not.
    Store,
    /// Fleet faults only: a shard dial that fails as if the shard were
    /// dead (`fleet.shard.unreachable`, exercising the router's
    /// redirect path), lost heartbeats and partitioned gossip pairs
    /// (`fleet.heartbeat.lost`, `fleet.partition` — exercising the
    /// suspect/refute ladder), lagging replication pushes
    /// (`fleet.replica.lag`), and spurious event-loop wakeups
    /// (`epoll.wait.eintr`, `epoll.spurious.wake` — both must be
    /// invisible above the readiness layer).
    Fleet,
    /// Everything *except* `analyze.panic`, at moderate rates. The
    /// excluded site changes rendered output (an error line replaces a
    /// function's summary), so the byte-identity chaos invariant holds
    /// only without it. Store short-write and corrupt-record sites are
    /// included (they only ever cost retention or reopen-time recompute,
    /// never answer bytes); `store.write.torn` is not, because one torn
    /// append wedges the store for the rest of the process and would
    /// make the rest of a chaos run exercise nothing.
    Chaos,
}

impl Profile {
    fn parse(name: &str) -> Option<Profile> {
        match name {
            "io" => Some(Profile::Io),
            "worker" => Some(Profile::Worker),
            "storm" => Some(Profile::Storm),
            "cache" => Some(Profile::Cache),
            "analyze" => Some(Profile::Analyze),
            "store" => Some(Profile::Store),
            "fleet" => Some(Profile::Fleet),
            "chaos" => Some(Profile::Chaos),
            _ => None,
        }
    }
}

/// Fire rate for `site` under `profile`, in fires per 1024 draws.
pub fn rate_per_1024(profile: Profile, site: &str) -> u32 {
    let net = site.starts_with("net.");
    let job_panic = site == "worker.job.panic";
    let die = site == "worker.die";
    let storm = site == "queue.storm";
    let cache = site == "cache.commit";
    let analyze = site == "analyze.panic";
    let torn = site == "store.write.torn";
    let short = site == "store.write.short";
    let corrupt = site == "store.record.corrupt";
    let unreachable = site == "fleet.shard.unreachable";
    let heartbeat = site == "fleet.heartbeat.lost";
    let partition = site == "fleet.partition";
    let lag = site == "fleet.replica.lag";
    let epoll = site.starts_with("epoll.");
    match profile {
        Profile::Io if net => 192,
        Profile::Worker if job_panic => 256,
        Profile::Worker if die => 96,
        Profile::Storm if storm => 384,
        Profile::Cache if cache => 256,
        Profile::Analyze if analyze => 256,
        Profile::Store if torn => 96,
        Profile::Store if short => 192,
        Profile::Store if corrupt => 96,
        Profile::Fleet if unreachable => 96,
        // Membership must converge despite losses: rates are set so a
        // suspect verdict needs several *consecutive* losses in both
        // directions, which a heartbeat ladder of 4 beats absorbs.
        Profile::Fleet if heartbeat => 96,
        Profile::Fleet if partition => 64,
        Profile::Fleet if lag => 128,
        Profile::Fleet if epoll => 192,
        Profile::Chaos if net => 64,
        // Spurious event-loop wakeups are byte-safe by construction, so
        // chaos arms them too; `fleet.shard.unreachable` costs only a
        // redirect and a re-dial, never bytes, so it rides along.
        Profile::Chaos if epoll => 96,
        Profile::Chaos if unreachable => 48,
        Profile::Chaos if heartbeat => 48,
        Profile::Chaos if partition => 32,
        Profile::Chaos if lag => 64,
        Profile::Chaos if job_panic => 128,
        Profile::Chaos if die => 48,
        Profile::Chaos if storm => 128,
        Profile::Chaos if cache => 96,
        Profile::Chaos if short => 64,
        Profile::Chaos if corrupt => 32,
        _ => 0,
    }
}

#[derive(Debug, Clone, Copy)]
struct Plan {
    seed: u64,
    profile: Profile,
}

#[derive(Default)]
struct State {
    plan: Option<Plan>,
    /// Per-site draw counts (how often the site was consulted).
    draws: HashMap<String, u64>,
    /// Per-site fire counts (how often a fault was injected).
    fired: HashMap<String, u64>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

/// SplitMix64 finalizer — one statelessly mixed output per input.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Installs a fault plan process-wide, resetting all counters.
pub fn install(seed: u64, profile: Profile) {
    let mut st = state().lock().expect("fault state poisoned");
    st.plan = Some(Plan { seed, profile });
    st.draws.clear();
    st.fired.clear();
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Parses and installs a `seed=N,profile=NAME` spec (order-insensitive).
///
/// Profiles: `io`, `worker`, `storm`, `cache`, `analyze`, `store`,
/// `chaos`.
pub fn install_from_spec(spec: &str) -> Result<(), String> {
    let mut seed: Option<u64> = None;
    let mut profile: Option<Profile> = None;
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        match part.split_once('=') {
            Some(("seed", v)) => {
                seed = Some(v.parse().map_err(|_| format!("invalid fault seed `{v}`"))?);
            }
            Some(("profile", v)) => {
                profile =
                    Some(Profile::parse(v).ok_or_else(|| format!("unknown fault profile `{v}`"))?);
            }
            _ => return Err(format!("unrecognized fault spec part `{part}`")),
        }
    }
    let seed = seed.ok_or("fault spec needs `seed=N`")?;
    let profile = profile.ok_or("fault spec needs `profile=NAME`")?;
    install(seed, profile);
    Ok(())
}

/// Removes the plan; every subsequent query answers "no fault".
pub fn uninstall() {
    let mut st = state().lock().expect("fault state poisoned");
    st.plan = None;
    ACTIVE.store(false, Ordering::SeqCst);
}

/// Whether a plan is currently installed.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// One draw at `site`: `Some(entropy)` if a fault fires, `None` otherwise.
fn draw(site: &str) -> Option<u64> {
    if !active() {
        return None;
    }
    let mut st = state().lock().expect("fault state poisoned");
    let plan = st.plan?;
    let n = st.draws.entry(site.to_string()).or_insert(0);
    let index = *n;
    *n += 1;
    let rate = rate_per_1024(plan.profile, site);
    if rate == 0 {
        return None;
    }
    let h = splitmix(plan.seed ^ fnv1a(site) ^ index.wrapping_mul(0x2545_F491_4F6C_DD1D));
    if (h & 1023) as u32 >= rate {
        return None;
    }
    *st.fired.entry(site.to_string()).or_insert(0) += 1;
    // The low 10 bits decided the fire; hand back the rest as entropy.
    Some(h >> 10)
}

/// Should a fault fire at `site` on this draw?
pub fn fire(site: &str) -> bool {
    draw(site).is_some()
}

/// One draw at `site`, handing back the draw's entropy when it fires.
///
/// Call sites that need to *parameterize* an injected fault — which
/// byte of a record to flip, where to tear a write — use the entropy so
/// the parameter is as deterministic as the firing decision.
pub fn entropy(site: &str) -> Option<u64> {
    draw(site)
}

/// Panics with an identifiable message if a fault fires at `site`.
pub fn maybe_panic(site: &str) {
    if fire(site) {
        panic!("injected fault: {site}");
    }
}

/// A spurious retryable I/O error (`ErrorKind::Interrupted`) if a fault
/// fires at `site`.
pub fn io_error(site: &str) -> Option<std::io::Error> {
    draw(site).map(|_| {
        std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("injected fault: {site}"),
        )
    })
}

/// A short length in `1..full` if a fault fires at `site` and the
/// operation is long enough to truncate.
pub fn short_len(site: &str, full: usize) -> Option<usize> {
    if full <= 1 {
        return None;
    }
    draw(site).map(|entropy| 1 + (entropy as usize) % (full - 1))
}

/// Per-site fire counts so far, sorted by site name.
pub fn fired_counts() -> Vec<(String, u64)> {
    let st = state().lock().expect("fault state poisoned");
    let mut out: Vec<_> = st.fired.iter().map(|(k, v)| (k.clone(), *v)).collect();
    out.sort();
    out
}

/// Total fires across all sites so far.
pub fn total_fired() -> u64 {
    let st = state().lock().expect("fault state poisoned");
    st.fired.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The plan is process-global; serialize tests that install one.
    fn exclusive() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn inactive_by_default_and_after_uninstall() {
        let _gate = exclusive();
        uninstall();
        assert!(!active());
        assert!(!fire("net.read.short"));
        assert!(io_error("net.read.eintr").is_none());
        install(1, Profile::Chaos);
        assert!(active());
        uninstall();
        assert!(!fire("queue.storm"));
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let _gate = exclusive();
        let site = "worker.job.panic";
        install(42, Profile::Worker);
        let a: Vec<bool> = (0..256).map(|_| fire(site)).collect();
        install(42, Profile::Worker);
        let b: Vec<bool> = (0..256).map(|_| fire(site)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&f| f), "rate 256/1024 must fire in 256 draws");
        assert!(!a.iter().all(|&f| f), "and must not fire every draw");
        install(43, Profile::Worker);
        let c: Vec<bool> = (0..256).map(|_| fire(site)).collect();
        assert_ne!(a, c, "different seeds diverge");
        uninstall();
    }

    #[test]
    fn profiles_scope_their_sites() {
        let _gate = exclusive();
        install(7, Profile::Storm);
        for _ in 0..512 {
            assert!(!fire("net.read.short"));
            assert!(!fire("cache.commit"));
            assert!(!fire("analyze.panic"));
        }
        assert!((0..512).any(|_| fire("queue.storm")));
        install(7, Profile::Chaos);
        for _ in 0..512 {
            assert!(!fire("analyze.panic"), "chaos excludes analyze.panic");
            assert!(!fire("store.write.torn"), "chaos excludes torn appends");
        }
        uninstall();
    }

    #[test]
    fn fleet_profile_arms_membership_and_replication_sites() {
        let _gate = exclusive();
        install(17, Profile::Fleet);
        for _ in 0..512 {
            assert!(!fire("net.read.short"));
            assert!(!fire("cache.commit"));
        }
        assert!((0..512).any(|_| fire("fleet.shard.unreachable")));
        assert!((0..512).any(|_| fire("fleet.heartbeat.lost")));
        assert!((0..512).any(|_| fire("fleet.partition")));
        assert!((0..512).any(|_| fire("fleet.replica.lag")));
        // The loss rates leave the timeout ladder standing: across any
        // window of 4 consecutive draws, both loss sites firing every
        // time is rare enough that convergence tests stay deterministic
        // in practice (the chaos suite asserts invariants, not
        // schedules).
        uninstall();
    }

    #[test]
    fn store_profile_scopes_and_fires() {
        let _gate = exclusive();
        install(13, Profile::Store);
        for _ in 0..512 {
            assert!(!fire("net.read.short"));
            assert!(!fire("cache.commit"));
        }
        assert!((0..512).any(|_| fire("store.write.torn")));
        assert!((0..512).any(|_| fire("store.write.short")));
        assert!((0..512).any(|_| fire("store.record.corrupt")));
        uninstall();
    }

    #[test]
    fn entropy_is_deterministic_per_seed() {
        let _gate = exclusive();
        let site = "store.record.corrupt";
        install(21, Profile::Store);
        let a: Vec<Option<u64>> = (0..256).map(|_| entropy(site)).collect();
        install(21, Profile::Store);
        let b: Vec<Option<u64>> = (0..256).map(|_| entropy(site)).collect();
        assert_eq!(a, b, "same seed, same entropy sequence");
        let fires: Vec<u64> = a.into_iter().flatten().collect();
        assert!(!fires.is_empty());
        assert!(
            fires.windows(2).any(|w| w[0] != w[1]),
            "entropy varies across draws"
        );
        uninstall();
    }

    #[test]
    fn short_len_is_short_and_nonzero() {
        let _gate = exclusive();
        install(9, Profile::Io);
        let mut saw_short = false;
        for _ in 0..512 {
            if let Some(n) = short_len("net.write.short", 64) {
                assert!((1..64).contains(&n));
                saw_short = true;
            }
        }
        assert!(saw_short);
        assert_eq!(short_len("net.write.short", 1), None, "can't truncate 1");
        uninstall();
    }

    #[test]
    fn counters_track_fires() {
        let _gate = exclusive();
        install(11, Profile::Cache);
        let mut expected = 0u64;
        for _ in 0..300 {
            if fire("cache.commit") {
                expected += 1;
            }
        }
        assert!(expected > 0);
        let counts = fired_counts();
        assert_eq!(counts, vec![("cache.commit".to_string(), expected)]);
        assert_eq!(total_fired(), expected);
        uninstall();
    }

    #[test]
    fn spec_parsing() {
        let _gate = exclusive();
        assert!(install_from_spec("seed=5,profile=io").is_ok());
        assert!(active());
        assert!(install_from_spec("profile=chaos, seed=99").is_ok());
        assert!(install_from_spec("seed=x,profile=io").is_err());
        assert!(install_from_spec("seed=5,profile=nope").is_err());
        assert!(install_from_spec("seed=5").is_err());
        assert!(install_from_spec("profile=io").is_err());
        assert!(install_from_spec("bogus").is_err());
        uninstall();
    }
}
