//! The **classical** induction-variable detector the paper replaces:
//! basic induction variables found by scanning loop bodies (every
//! definition must be `i = i ± c`), derived induction variables
//! `j = a*i + b` chased to a fixpoint, and the traditional *ad hoc*
//! pattern matchers for wrap-around and flip-flop variables bolted on the
//! side (§1, §4.1).
//!
//! This crate exists as the head-to-head baseline for the benchmark
//! suite: it is a faithful rendition of the Allen–Cocke–Kennedy-style
//! approach over reaching definitions on the (non-SSA) CFG, and it
//! deliberately has the classical blind spots — no polynomial or
//! geometric variables, no periodic families beyond the two-variable
//! flip-flop pattern, no monotonic variables, no multi-loop closed forms.
//!
//! # Example
//!
//! ```
//! use biv_classic::{detect, IvKind};
//! use biv_ir::parser::parse_program;
//!
//! let program = parse_program(
//!     "func f(n) { L1: for i = 1 to n { j = 2 * i + 1 A[j] = i } }",
//! )?;
//! let report = detect(&program.functions[0]);
//! let ivs = &report.loops[0].ivs;
//! assert!(ivs.iter().any(|iv| matches!(iv.kind, IvKind::Basic { .. })));
//! assert!(ivs.iter().any(|iv| matches!(iv.kind, IvKind::Derived { .. })));
//! # Ok::<(), biv_ir::parser::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};

use biv_ir::dom::DomTree;
use biv_ir::loops::{Loop, LoopForest};
use biv_ir::{BinOp, Block, Function, Inst, Operand, Var};

/// The classification a classical detector can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IvKind {
    /// A basic induction variable: every in-loop definition increments or
    /// decrements by a loop-invariant amount.
    Basic {
        /// Net step per iteration when every path agrees and all steps
        /// are constants; `None` for invariant-but-symbolic steps.
        step: Option<i64>,
    },
    /// A derived induction variable `j = scale*i + offset` (single
    /// definition).
    Derived {
        /// The base (basic) induction variable.
        base: Var,
        /// Multiplier when constant.
        scale: i64,
        /// Additive constant.
        offset: i64,
    },
    /// Recognized by the ad-hoc wrap-around matcher: a single in-loop
    /// copy from an induction variable, used earlier in the body.
    WrapAround {
        /// The variable whose value wraps around.
        source: Var,
    },
    /// Recognized by the ad-hoc flip-flop matcher: single definition
    /// `j = c − j`.
    FlipFlop {
        /// The reflection constant.
        about: i64,
    },
}

/// One classified variable in one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicIv {
    /// The variable.
    pub var: Var,
    /// What the classical detector decided.
    pub kind: IvKind,
}

/// Results for one loop.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// The loop analyzed.
    pub loop_id: Loop,
    /// Header block.
    pub header: Block,
    /// Everything classified, in detection order.
    pub ivs: Vec<ClassicIv>,
}

/// Whole-function results.
#[derive(Debug, Clone)]
pub struct Report {
    /// Per-loop reports, innermost loops first.
    pub loops: Vec<LoopReport>,
}

impl Report {
    /// Total number of classified variables across loops.
    pub fn total(&self) -> usize {
        self.loops.iter().map(|l| l.ivs.len()).sum()
    }
}

/// Runs the classical detector on every loop of the function.
pub fn detect(func: &Function) -> Report {
    let dom = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dom);
    let mut loops = Vec::new();
    for l in forest.inner_to_outer() {
        loops.push(detect_in_loop(func, &forest, &dom, l));
    }
    Report { loops }
}

/// Operand invariance: constants, or variables with no definition inside
/// the loop.
fn invariant_operand(op: &Operand, defs_in_loop: &HashMap<Var, Vec<(Block, usize)>>) -> bool {
    match op {
        Operand::Const(_) => true,
        Operand::Var(v) => !defs_in_loop.contains_key(v),
    }
}

fn const_operand(op: &Operand) -> Option<i64> {
    match op {
        Operand::Const(c) => Some(*c),
        Operand::Var(_) => None,
    }
}

/// Whether `var` is used somewhere in the loop not strictly after its
/// single definition at `(def_block, def_index)` — i.e. a use that can
/// observe the loop-carried (previous-iteration) value.
fn used_before_def(
    func: &Function,
    blocks: &HashSet<Block>,
    var: Var,
    def_block: Block,
    def_index: usize,
) -> bool {
    let mut uses = Vec::new();
    for &ub in blocks {
        for (ui, inst) in func.blocks[ub].insts.iter().enumerate() {
            uses.clear();
            inst.uses(&mut uses);
            if uses.contains(&var) && (ub != def_block || ui < def_index) {
                return true;
            }
        }
    }
    false
}

fn detect_in_loop(func: &Function, forest: &LoopForest, dom: &DomTree, l: Loop) -> LoopReport {
    let data = forest.data(l);
    let blocks: HashSet<Block> = data.blocks.iter().copied().collect();
    // Collect in-loop definitions per variable.
    let mut defs_in_loop: HashMap<Var, Vec<(Block, usize)>> = HashMap::new();
    for &b in &blocks {
        for (i, inst) in func.blocks[b].insts.iter().enumerate() {
            if let Some(v) = inst.def() {
                defs_in_loop.entry(v).or_default().push((b, i));
            }
        }
    }
    let mut ivs: Vec<ClassicIv> = Vec::new();
    let mut basic: HashMap<Var, Option<i64>> = HashMap::new();
    // --- Basic induction variables -----------------------------------
    'vars: for (&var, defs) in &defs_in_loop {
        let mut total_step: Option<i64> = Some(0);
        for &(b, i) in defs {
            match &func.blocks[b].insts[i] {
                Inst::Binary {
                    op: BinOp::Add,
                    lhs,
                    rhs,
                    ..
                } => {
                    // i = i + inv or i = inv + i
                    let (other, uses_self) = match (lhs, rhs) {
                        (Operand::Var(v), o) if *v == var => (o, true),
                        (o, Operand::Var(v)) if *v == var => (o, true),
                        _ => (lhs, false),
                    };
                    if !uses_self || !invariant_operand(other, &defs_in_loop) {
                        continue 'vars;
                    }
                    total_step = match (total_step, const_operand(other)) {
                        (Some(acc), Some(c)) => acc.checked_add(c),
                        _ => None,
                    };
                }
                Inst::Binary {
                    op: BinOp::Sub,
                    lhs,
                    rhs,
                    ..
                } => {
                    // Only i = i - inv (not i = inv - i).
                    let ok = matches!(lhs, Operand::Var(v) if *v == var)
                        && invariant_operand(rhs, &defs_in_loop);
                    if !ok {
                        continue 'vars;
                    }
                    total_step = match (total_step, const_operand(rhs)) {
                        (Some(acc), Some(c)) => acc.checked_sub(c),
                        _ => None,
                    };
                }
                _ => continue 'vars,
            }
        }
        // The classical definition also wants the increments to execute
        // exactly once per iteration; require each def's block to
        // dominate the latch (conservative but standard).
        let latch_ok = data
            .latches
            .iter()
            .all(|&latch| defs.iter().all(|&(b, _)| dom.dominates(b, latch)));
        if !latch_ok {
            continue;
        }
        basic.insert(var, total_step);
        ivs.push(ClassicIv {
            var,
            kind: IvKind::Basic { step: total_step },
        });
    }
    // --- Derived induction variables, to a fixpoint -------------------
    // j = a*i + b with a single in-loop definition, i basic or derived.
    let mut derived: HashMap<Var, (Var, i64, i64)> = HashMap::new();
    loop {
        let mut changed = false;
        for (&var, defs) in &defs_in_loop {
            if basic.contains_key(&var) || derived.contains_key(&var) {
                continue;
            }
            if defs.len() != 1 {
                continue;
            }
            let (b, i) = defs[0];
            // A use before the (single) definition means the loop-carried
            // value is observed — the wrap-around shape, not a derived IV.
            if used_before_def(func, &blocks, var, b, i) {
                continue;
            }
            let derived_of = |op: &Operand| -> Option<(Var, i64, i64)> {
                let v = op.as_var()?;
                if basic.contains_key(&v) {
                    Some((v, 1, 0))
                } else {
                    derived.get(&v).copied()
                }
            };
            let found = match &func.blocks[b].insts[i] {
                Inst::Copy { src, .. } => derived_of(src),
                Inst::Binary { op, lhs, rhs, .. } => {
                    let scaled = |iv: (Var, i64, i64), c: i64, op: BinOp| match op {
                        BinOp::Mul => Some((iv.0, iv.1.checked_mul(c)?, iv.2.checked_mul(c)?)),
                        BinOp::Add => Some((iv.0, iv.1, iv.2.checked_add(c)?)),
                        BinOp::Sub => Some((iv.0, iv.1, iv.2.checked_sub(c)?)),
                        _ => None,
                    };
                    match (derived_of(lhs), derived_of(rhs), op) {
                        (Some(iv), None, BinOp::Mul | BinOp::Add | BinOp::Sub) => {
                            const_operand(rhs).and_then(|c| scaled(iv, c, *op))
                        }
                        (None, Some(iv), BinOp::Mul | BinOp::Add) => {
                            const_operand(lhs).and_then(|c| scaled(iv, c, *op))
                        }
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(info) = found {
                derived.insert(var, info);
                ivs.push(ClassicIv {
                    var,
                    kind: IvKind::Derived {
                        base: info.0,
                        scale: info.1,
                        offset: info.2,
                    },
                });
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // --- Ad-hoc wrap-around matcher -----------------------------------
    // A variable with a single in-loop def that copies an induction
    // variable, where some use appears earlier in the body than the def.
    for (&var, defs) in &defs_in_loop {
        if basic.contains_key(&var) || derived.contains_key(&var) {
            continue;
        }
        if defs.len() != 1 {
            continue;
        }
        let (b, i) = defs[0];
        let Inst::Copy { src, .. } = &func.blocks[b].insts[i] else {
            continue;
        };
        let Some(source) = src.as_var() else {
            continue;
        };
        if !basic.contains_key(&source) && !derived.contains_key(&source) {
            continue;
        }
        if used_before_def(func, &blocks, var, b, i) {
            ivs.push(ClassicIv {
                var,
                kind: IvKind::WrapAround { source },
            });
        }
    }
    // --- Ad-hoc flip-flop matcher --------------------------------------
    for (&var, defs) in &defs_in_loop {
        if defs.len() != 1 {
            continue;
        }
        let (b, i) = defs[0];
        if let Inst::Binary {
            op: BinOp::Sub,
            lhs,
            rhs,
            ..
        } = &func.blocks[b].insts[i]
        {
            if let (Some(c), Some(v)) = (const_operand(lhs), rhs.as_var()) {
                if v == var {
                    ivs.push(ClassicIv {
                        var,
                        kind: IvKind::FlipFlop { about: c },
                    });
                }
            }
        }
    }
    LoopReport {
        loop_id: l,
        header: data.header,
        ivs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_ir::parser::parse_program;

    fn report(src: &str) -> Report {
        let program = parse_program(src).unwrap();
        detect(&program.functions[0])
    }

    fn kinds_of<'r>(r: &'r Report, func_src: &str, name: &str) -> Vec<&'r IvKind> {
        let program = parse_program(func_src).unwrap();
        let var = program.functions[0].var_by_name(name).unwrap();
        r.loops
            .iter()
            .flat_map(|l| l.ivs.iter())
            .filter(|iv| iv.var == var)
            .map(|iv| &iv.kind)
            .collect()
    }

    #[test]
    fn detects_basic_iv() {
        let src = "func f(n) { L1: for i = 1 to n { x = i } }";
        let r = report(src);
        let kinds = kinds_of(&r, src, "i");
        assert_eq!(kinds, vec![&IvKind::Basic { step: Some(1) }]);
    }

    #[test]
    fn detects_mutual_increments_as_single_basic() {
        // i incremented twice per iteration: step 3.
        let src = "func f(n) { i = 0 L1: loop { i = i + 1 i = i + 2 if i > n { break } } }";
        let r = report(src);
        let kinds = kinds_of(&r, src, "i");
        assert_eq!(kinds, vec![&IvKind::Basic { step: Some(3) }]);
    }

    #[test]
    fn detects_derived_iv_chain() {
        let src = "func f(n) { L1: for i = 1 to n { j = 2 * i k = j + 5 A[k] = i } }";
        let r = report(src);
        let j = kinds_of(&r, src, "j");
        assert!(matches!(
            j[0],
            IvKind::Derived {
                scale: 2,
                offset: 0,
                ..
            }
        ));
        let k = kinds_of(&r, src, "k");
        assert!(matches!(
            k[0],
            IvKind::Derived {
                scale: 2,
                offset: 5,
                ..
            }
        ));
    }

    #[test]
    fn conditional_increment_is_not_basic() {
        let src = "func f(n, e) { k = 0 L1: for i = 1 to n { if e > 0 { k = k + 1 } } }";
        let r = report(src);
        // The classical detector finds nothing for k (no monotonic class).
        assert!(kinds_of(&r, src, "k").is_empty());
    }

    #[test]
    fn polynomial_not_detected() {
        // j = j + i is beyond the classical definition.
        let src = "func f(n) { j = 1 L1: for i = 1 to n { j = j + i A[j] = i } }";
        let r = report(src);
        assert!(kinds_of(&r, src, "j").is_empty());
    }

    #[test]
    fn wraparound_matcher_fires() {
        let src = r#"
            func f(n) {
                iml = n
                L9: for i = 1 to n {
                    A[i] = A[iml] + 1
                    iml = i
                }
            }
        "#;
        let r = report(src);
        let kinds = kinds_of(&r, src, "iml");
        assert!(matches!(kinds[0], IvKind::WrapAround { .. }));
    }

    #[test]
    fn flip_flop_matcher_fires() {
        let src = "func f(n) { j = 1 L1: for i = 1 to n { j = 3 - j A[j] = i } }";
        let r = report(src);
        let kinds = kinds_of(&r, src, "j");
        assert!(matches!(kinds[0], IvKind::FlipFlop { about: 3 }));
    }

    #[test]
    fn symbolic_step_reported_as_unknown_step() {
        let src = "func f(n, s) { i = 0 L1: loop { i = i + s if i > n { break } } }";
        let r = report(src);
        let kinds = kinds_of(&r, src, "i");
        assert_eq!(kinds, vec![&IvKind::Basic { step: None }]);
    }

    #[test]
    fn total_counts_all_loops() {
        let src = r#"
            func f(n) {
                L1: for i = 1 to n {
                    L2: for j = 1 to n {
                        A[i, j] = i + j
                    }
                }
            }
        "#;
        let r = report(src);
        assert!(r.total() >= 2, "at least i and j detected: {r:?}");
    }
}
