//! Dense rational matrices with exact Gauss–Jordan inversion.

use std::fmt;

use crate::rational::{Rational, RationalError};
use crate::sympoly::SymPoly;

/// A dense matrix of [`Rational`] entries.
///
/// Used for the paper's closed-form coefficient fitting: invert the basis
/// matrix `a[i][j] = basis_j(i)` exactly and multiply by the first computed
/// values of the recurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Rational>) -> Matrix {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length must equal rows*cols"
        );
        Matrix { rows, cols, data }
    }

    /// Creates a zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            *m.get_mut(i, i) = Rational::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> Rational {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable access to entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut Rational {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }

    /// Exact inverse via Gauss–Jordan elimination.
    ///
    /// Returns `None` when the matrix is singular.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`] from intermediate arithmetic.
    pub fn inverse(&self) -> Result<Option<Matrix>, RationalError> {
        if self.rows != self.cols {
            return Ok(None);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a nonzero pivot at or below `col`.
            let pivot = (col..n).find(|&r| !a.get(r, col).is_zero());
            let pivot = match pivot {
                Some(p) => p,
                None => return Ok(None),
            };
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let pivot_val = a.get(col, col);
            let pivot_inv = Rational::ONE.checked_div(&pivot_val)?;
            a.scale_row(col, &pivot_inv)?;
            inv.scale_row(col, &pivot_inv)?;
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor.is_zero() {
                    continue;
                }
                a.sub_scaled_row(r, col, &factor)?;
                inv.sub_scaled_row(r, col, &factor)?;
            }
        }
        Ok(Some(inv))
    }

    /// Exact null-space basis via reduced row echelon form.
    ///
    /// Returns one basis vector (length `cols`) per free column of the
    /// RREF, in ascending free-column order — a deterministic spanning set
    /// for `{ x : A·x = 0 }`. An empty result means the kernel is trivial.
    /// Each basis vector has the free variable set to 1 and pivot
    /// variables solved exactly.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`] from intermediate arithmetic.
    pub fn null_space(&self) -> Result<Vec<Vec<Rational>>, RationalError> {
        let mut a = self.clone();
        // `pivot_col[r]` is the pivot column of row `r` in the RREF.
        let mut pivot_cols: Vec<usize> = Vec::new();
        let mut row = 0usize;
        for col in 0..a.cols {
            if row == a.rows {
                break;
            }
            let pivot = (row..a.rows).find(|&r| !a.get(r, col).is_zero());
            let pivot = match pivot {
                Some(p) => p,
                None => continue, // free column
            };
            if pivot != row {
                a.swap_rows(pivot, row);
            }
            let pivot_val = a.get(row, col);
            let pivot_inv = Rational::ONE.checked_div(&pivot_val)?;
            a.scale_row(row, &pivot_inv)?;
            for r in 0..a.rows {
                if r == row {
                    continue;
                }
                let factor = a.get(r, col);
                if factor.is_zero() {
                    continue;
                }
                a.sub_scaled_row(r, row, &factor)?;
            }
            pivot_cols.push(col);
            row += 1;
        }
        let is_pivot = {
            let mut flags = vec![false; a.cols];
            for &c in &pivot_cols {
                flags[c] = true;
            }
            flags
        };
        let mut basis = Vec::new();
        for free in 0..a.cols {
            if is_pivot[free] {
                continue;
            }
            let mut v = vec![Rational::ZERO; a.cols];
            v[free] = Rational::ONE;
            for (r, &pc) in pivot_cols.iter().enumerate() {
                // Row r reads: x[pc] + Σ a[r][free]·x[free] = 0.
                v[pc] = a.get(r, free).checked_neg()?;
            }
            basis.push(v);
        }
        Ok(basis)
    }

    /// Multiplies this matrix by a vector of rationals.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Rational]) -> Result<Vec<Rational>, RationalError> {
        assert_eq!(v.len(), self.cols, "vector length must equal matrix cols");
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let mut acc = Rational::ZERO;
            for (c, value) in v.iter().enumerate() {
                acc = acc.checked_add(&self.get(r, c).checked_mul(value)?)?;
            }
            out.push(acc);
        }
        Ok(out)
    }

    /// Multiplies this matrix by a vector of symbolic polynomials — the
    /// paper's "multiply the inverse by the computed (perhaps symbolic)
    /// first k values".
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.cols()`.
    pub fn mul_sym_vec(&self, v: &[SymPoly]) -> Result<Vec<SymPoly>, RationalError> {
        assert_eq!(v.len(), self.cols, "vector length must equal matrix cols");
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let mut acc = SymPoly::zero();
            for (c, value) in v.iter().enumerate() {
                acc = acc.checked_add(&value.checked_scale(&self.get(r, c))?)?;
            }
            out.push(acc);
        }
        Ok(out)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, factor: &Rational) -> Result<(), RationalError> {
        for c in 0..self.cols {
            let cur = self.get(r, c);
            *self.get_mut(r, c) = cur.checked_mul(factor)?;
        }
        Ok(())
    }

    /// `row[r] -= factor * row[src]`
    fn sub_scaled_row(
        &mut self,
        r: usize,
        src: usize,
        factor: &Rational,
    ) -> Result<(), RationalError> {
        for c in 0..self.cols {
            let delta = self.get(src, c).checked_mul(factor)?;
            let cur = self.get(r, c);
            *self.get_mut(r, c) = cur.checked_sub(&delta)?;
        }
        Ok(())
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Rational {
        Rational::from_integer(v)
    }

    #[test]
    fn identity_inverse() {
        let id = Matrix::identity(4);
        assert_eq!(id.inverse().unwrap().unwrap(), id);
    }

    #[test]
    fn paper_l14_matrix_inverse() {
        // The paper's third-order Vandermonde for loop L14:
        // rows are [1, h, h^2, h^3] at h = 0..=3.
        let mut a = Matrix::zero(4, 4);
        for h in 0..4i128 {
            for k in 0..4u32 {
                *a.get_mut(h as usize, k as usize) = int(h.pow(k));
            }
        }
        let inv = a.inverse().unwrap().expect("vandermonde is nonsingular");
        // Multiplying inverse by the first four values of k from L14
        // (4, 9, 17, 29) yields coefficients [4, 23/6, 1, 1/6].
        let coeffs = inv.mul_vec(&[int(4), int(9), int(17), int(29)]).unwrap();
        assert_eq!(coeffs[0], int(4));
        assert_eq!(coeffs[1], Rational::new(23, 6).unwrap());
        assert_eq!(coeffs[2], int(1));
        assert_eq!(coeffs[3], Rational::new(1, 6).unwrap());
    }

    #[test]
    fn singular_detected() {
        let m = Matrix::from_rows(2, 2, vec![int(1), int(2), int(2), int(4)]);
        assert!(m.inverse().unwrap().is_none());
    }

    #[test]
    fn non_square_has_no_inverse() {
        let m = Matrix::zero(2, 3);
        assert!(m.inverse().unwrap().is_none());
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let m = Matrix::from_rows(
            3,
            3,
            vec![
                int(2),
                int(1),
                int(0),
                int(1),
                int(3),
                int(1),
                int(0),
                int(1),
                int(2),
            ],
        );
        let inv = m.inverse().unwrap().unwrap();
        // Check A^{-1} * A = I column by column.
        for c in 0..3 {
            let col: Vec<Rational> = (0..3).map(|r| m.get(r, c)).collect();
            let e = inv.mul_vec(&col).unwrap();
            for (r, val) in e.iter().enumerate() {
                let expected = if r == c {
                    Rational::ONE
                } else {
                    Rational::ZERO
                };
                assert_eq!(*val, expected);
            }
        }
    }

    #[test]
    fn pivot_requires_row_swap() {
        let m = Matrix::from_rows(2, 2, vec![int(0), int(1), int(1), int(0)]);
        let inv = m.inverse().unwrap().unwrap();
        assert_eq!(inv, m); // the swap matrix is its own inverse
    }

    #[test]
    fn null_space_of_invertible_is_trivial() {
        let m = Matrix::from_rows(2, 2, vec![int(1), int(2), int(3), int(4)]);
        assert!(m.null_space().unwrap().is_empty());
    }

    #[test]
    fn null_space_rank_one() {
        // x + 2y = 0 → kernel spanned by (-2, 1).
        let m = Matrix::from_rows(1, 2, vec![int(1), int(2)]);
        let ns = m.null_space().unwrap();
        assert_eq!(ns, vec![vec![int(-2), int(1)]]);
    }

    #[test]
    fn null_space_vectors_annihilate() {
        // Rank-2 3x4 system; kernel has dimension 2.
        let m = Matrix::from_rows(
            3,
            4,
            vec![
                int(1),
                int(2),
                int(0),
                int(1),
                int(0),
                int(0),
                int(1),
                int(3),
                int(1),
                int(2),
                int(1),
                int(4),
            ],
        );
        let ns = m.null_space().unwrap();
        assert_eq!(ns.len(), 2);
        for v in &ns {
            for r in m.mul_vec(v).unwrap() {
                assert!(r.is_zero());
            }
        }
    }

    #[test]
    fn null_space_zero_matrix_is_full() {
        let m = Matrix::zero(2, 3);
        let ns = m.null_space().unwrap();
        assert_eq!(ns.len(), 3);
        for (i, v) in ns.iter().enumerate() {
            assert_eq!(v[i], Rational::ONE);
        }
    }

    #[test]
    fn mul_sym_vec_scales() {
        use crate::sympoly::{SymId, SymPoly};
        let m = Matrix::from_rows(2, 2, vec![int(2), int(0), int(0), int(3)]);
        let x = SymPoly::symbol(SymId(0));
        let y = SymPoly::symbol(SymId(1));
        let out = m.mul_sym_vec(&[x.clone(), y.clone()]).unwrap();
        assert_eq!(out[0], x.checked_scale(&int(2)).unwrap());
        assert_eq!(out[1], y.checked_scale(&int(3)).unwrap());
    }
}
