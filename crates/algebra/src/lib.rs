//! Exact algebra substrate for induction-variable analysis.
//!
//! The closed forms in Wolfe's *Beyond Induction Variables* (PLDI 1992) are
//! polynomials (and geometric series) with **rational** coefficients, found
//! by inverting small integer matrices exactly. This crate provides the
//! pieces that construction needs:
//!
//! - [`Rational`]: arbitrary-sign exact rationals over `i128` with checked
//!   arithmetic (overflow is reported, never wrapped);
//! - [`SymPoly`]: multivariate polynomials over opaque symbols with
//!   rational coefficients, used to carry *symbolic* initial values and
//!   steps (e.g. `n + c1 + k1` in Figure 1 of the paper);
//! - [`Matrix`]: dense rational matrices with exact Gauss–Jordan inversion;
//! - [`vandermonde`]: the paper's coefficient-fitting method — sample the
//!   recurrence at `h = 0, 1, …` and invert the basis matrix.
//!
//! # Example
//!
//! Fit the closed form of `k` from loop L14 of the paper
//! (`k = 4, 9, 17, 29, …` ⇒ `(h³ + 6h² + 23h + 24) / 6`):
//!
//! ```
//! use biv_algebra::{Rational, SymPoly, vandermonde::fit_polynomial};
//!
//! let samples: Vec<SymPoly> = [4, 9, 17, 29]
//!     .iter()
//!     .map(|&v| SymPoly::constant(Rational::from_integer(v)))
//!     .collect();
//! let coeffs = fit_polynomial(&samples).expect("nonsingular");
//! let consts: Vec<Rational> = coeffs.iter().map(|c| c.constant_value().unwrap()).collect();
//! assert_eq!(consts[0], Rational::from_integer(4));            // 24/6
//! assert_eq!(consts[1], Rational::new(23, 6).unwrap());        // 23/6
//! assert_eq!(consts[2], Rational::from_integer(1));            // 6/6
//! assert_eq!(consts[3], Rational::new(1, 6).unwrap());         // 1/6
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod rational;
mod sympoly;
pub mod vandermonde;

pub use matrix::Matrix;
pub use rational::{ParseRationalError, Rational, RationalError};
pub use sympoly::{Monomial, SymId, SymPoly};
