//! Exact rational numbers over `i128` with checked arithmetic.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Error produced by fallible [`Rational`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RationalError {
    /// The denominator of a rational was zero, or a division by zero was
    /// attempted.
    DivisionByZero,
    /// An intermediate `i128` computation overflowed.
    Overflow,
}

impl fmt::Display for RationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RationalError::DivisionByZero => write!(f, "division by zero"),
            RationalError::Overflow => write!(f, "arithmetic overflow in rational computation"),
        }
    }
}

impl std::error::Error for RationalError {}

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1`.
///
/// All arithmetic is exact. The operator impls (`+`, `-`, `*`, `/`) panic on
/// overflow or division by zero; analysis code that must degrade gracefully
/// should use the `checked_*` methods instead.
///
/// ```
/// use biv_algebra::Rational;
///
/// let third = Rational::new(1, 3)?;
/// let half = Rational::new(1, 2)?;
/// assert_eq!((third + half).to_string(), "5/6");
/// assert_eq!(Rational::new(6, 4)?, Rational::new(3, 2)?); // reduced
/// # Ok::<(), biv_algebra::RationalError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };
    /// The rational minus one.
    pub const MINUS_ONE: Rational = Rational { num: -1, den: 1 };

    /// Creates a rational `num / den`, reduced to lowest terms.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::DivisionByZero`] when `den == 0` and
    /// [`RationalError::Overflow`] when normalization overflows (only
    /// possible for `i128::MIN` inputs).
    pub fn new(num: i128, den: i128) -> Result<Rational, RationalError> {
        if den == 0 {
            return Err(RationalError::DivisionByZero);
        }
        if num == 0 {
            return Ok(Rational::ZERO);
        }
        let g = gcd(num, den);
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = num.checked_neg().ok_or(RationalError::Overflow)?;
            den = den.checked_neg().ok_or(RationalError::Overflow)?;
        }
        Ok(Rational { num, den })
    }

    /// Creates a rational from an integer.
    pub const fn from_integer(value: i128) -> Rational {
        Rational { num: value, den: 1 }
    }

    /// The numerator (sign-carrying).
    pub const fn numerator(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub const fn denominator(&self) -> i128 {
        self.den
    }

    /// Returns `true` when this rational is zero.
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` when this rational is an integer.
    pub const fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns the integer value when the rational is an integer.
    pub const fn as_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// The sign of the rational: `-1`, `0`, or `1`.
    pub const fn signum(&self) -> i32 {
        if self.num > 0 {
            1
        } else if self.num < 0 {
            -1
        } else {
            0
        }
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] if an intermediate product
    /// overflows `i128`.
    pub fn checked_add(&self, rhs: &Rational) -> Result<Rational, RationalError> {
        // a/b + c/d = (a*d + c*b) / (b*d); reduce via gcd(b, d) first to
        // keep intermediates small.
        let g = gcd(self.den, rhs.den);
        let lcm = (self.den / g)
            .checked_mul(rhs.den)
            .ok_or(RationalError::Overflow)?;
        let lhs_scaled = self
            .num
            .checked_mul(rhs.den / g)
            .ok_or(RationalError::Overflow)?;
        let rhs_scaled = rhs
            .num
            .checked_mul(self.den / g)
            .ok_or(RationalError::Overflow)?;
        let num = lhs_scaled
            .checked_add(rhs_scaled)
            .ok_or(RationalError::Overflow)?;
        Rational::new(num, lcm)
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] on intermediate overflow.
    pub fn checked_sub(&self, rhs: &Rational) -> Result<Rational, RationalError> {
        let neg = rhs.checked_neg()?;
        self.checked_add(&neg)
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] on intermediate overflow.
    pub fn checked_mul(&self, rhs: &Rational) -> Result<Rational, RationalError> {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .ok_or(RationalError::Overflow)?;
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .ok_or(RationalError::Overflow)?;
        Rational::new(num, den)
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::DivisionByZero`] when `rhs` is zero, or
    /// [`RationalError::Overflow`] on intermediate overflow.
    pub fn checked_div(&self, rhs: &Rational) -> Result<Rational, RationalError> {
        if rhs.is_zero() {
            return Err(RationalError::DivisionByZero);
        }
        let inv = Rational::new(rhs.den, rhs.num)?;
        self.checked_mul(&inv)
    }

    /// Checked negation.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] when the numerator is `i128::MIN`.
    pub fn checked_neg(&self) -> Result<Rational, RationalError> {
        let num = self.num.checked_neg().ok_or(RationalError::Overflow)?;
        Ok(Rational { num, den: self.den })
    }

    /// Checked integer exponentiation. Negative exponents invert the base.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::DivisionByZero`] for `0^negative`, or
    /// [`RationalError::Overflow`] on intermediate overflow.
    pub fn checked_pow(&self, exp: i32) -> Result<Rational, RationalError> {
        if exp < 0 {
            if self.is_zero() {
                return Err(RationalError::DivisionByZero);
            }
            let inv = Rational::new(self.den, self.num)?;
            return inv.checked_pow(-exp);
        }
        let mut result = Rational::ONE;
        let mut base = *self;
        let mut e = exp as u32;
        while e > 0 {
            if e & 1 == 1 {
                result = result.checked_mul(&base)?;
            }
            e >>= 1;
            if e > 0 {
                base = base.checked_mul(&base)?;
            }
        }
        Ok(result)
    }

    /// Absolute value.
    ///
    /// # Panics
    ///
    /// Panics when the numerator is `i128::MIN`.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Floor of the rational as an integer (rounds toward negative
    /// infinity).
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling of the rational as an integer (rounds toward positive
    /// infinity).
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Checked [`ceil`](Rational::ceil): `None` when a negation inside
    /// the rounding overflows (numerator `i128::MIN`). Analysis code
    /// that must degrade gracefully uses this alongside the other
    /// `checked_*` methods.
    pub fn checked_ceil(&self) -> Option<i128> {
        self.num.checked_neg()?.div_euclid(self.den).checked_neg()
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(value: i64) -> Self {
        Rational::from_integer(i128::from(value))
    }
}

impl From<i32> for Rational {
    fn from(value: i32) -> Self {
        Rational::from_integer(i128::from(value))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d with b, d > 0: compare a*d vs c*b. Use wide-safe
        // comparison via checked ops; fall back to float only on overflow
        // (practically unreachable for analysis-sized values).
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => {
                let l = self.num as f64 / self.den as f64;
                let r = other.num as f64 / other.den as f64;
                l.partial_cmp(&r).unwrap_or(Ordering::Equal)
            }
        }
    }
}

macro_rules! panicking_op {
    ($trait:ident, $method:ident, $checked:ident, $msg:expr) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$checked(&rhs).expect($msg)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                self.$checked(rhs).expect($msg)
            }
        }
    };
}

panicking_op!(Add, add, checked_add, "rational addition overflowed");
panicking_op!(Sub, sub, checked_sub, "rational subtraction overflowed");
panicking_op!(Mul, mul, checked_mul, "rational multiplication overflowed");
panicking_op!(Div, div, checked_div, "rational division failed");

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.checked_neg().expect("rational negation overflowed")
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({})", self)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`Rational`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    message: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.message)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"3"`, `"-3"`, or `"3/4"` forms.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mk_err = |m: &str| ParseRationalError {
            message: m.to_string(),
        };
        match s.split_once('/') {
            None => {
                let num: i128 = s.trim().parse().map_err(|_| mk_err(s))?;
                Ok(Rational::from_integer(num))
            }
            Some((n, d)) => {
                let num: i128 = n.trim().parse().map_err(|_| mk_err(s))?;
                let den: i128 = d.trim().parse().map_err(|_| mk_err(s))?;
                Rational::new(num, den).map_err(|e| mk_err(&e.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let r = Rational::new(6, 4).unwrap();
        assert_eq!(r.numerator(), 3);
        assert_eq!(r.denominator(), 2);
    }

    #[test]
    fn negative_denominator_normalizes() {
        let r = Rational::new(1, -2).unwrap();
        assert_eq!(r.numerator(), -1);
        assert_eq!(r.denominator(), 2);
    }

    #[test]
    fn zero_denominator_is_error() {
        assert_eq!(Rational::new(1, 0), Err(RationalError::DivisionByZero));
    }

    #[test]
    fn arithmetic_basics() {
        let half = Rational::new(1, 2).unwrap();
        let third = Rational::new(1, 3).unwrap();
        assert_eq!(half + third, Rational::new(5, 6).unwrap());
        assert_eq!(half - third, Rational::new(1, 6).unwrap());
        assert_eq!(half * third, Rational::new(1, 6).unwrap());
        assert_eq!(half / third, Rational::new(3, 2).unwrap());
        assert_eq!(-half, Rational::new(-1, 2).unwrap());
    }

    #[test]
    fn pow_positive_negative() {
        let two = Rational::from_integer(2);
        assert_eq!(two.checked_pow(10).unwrap(), Rational::from_integer(1024));
        assert_eq!(two.checked_pow(-2).unwrap(), Rational::new(1, 4).unwrap());
        assert_eq!(two.checked_pow(0).unwrap(), Rational::ONE);
        assert_eq!(
            Rational::ZERO.checked_pow(-1),
            Err(RationalError::DivisionByZero)
        );
    }

    #[test]
    fn ordering() {
        let a = Rational::new(1, 3).unwrap();
        let b = Rational::new(1, 2).unwrap();
        assert!(a < b);
        assert!(Rational::from_integer(-1) < Rational::ZERO);
    }

    #[test]
    fn floor_ceil() {
        let r = Rational::new(7, 2).unwrap();
        assert_eq!(r.floor(), 3);
        assert_eq!(r.ceil(), 4);
        let n = Rational::new(-7, 2).unwrap();
        assert_eq!(n.floor(), -4);
        assert_eq!(n.ceil(), -3);
        let i = Rational::from_integer(5);
        assert_eq!(i.floor(), 5);
        assert_eq!(i.ceil(), 5);
    }

    #[test]
    fn overflow_detected() {
        let big = Rational::from_integer(i128::MAX);
        assert_eq!(big.checked_mul(&big), Err(RationalError::Overflow));
        assert_eq!(
            big.checked_add(&Rational::ONE),
            Err(RationalError::Overflow)
        );
    }

    #[test]
    fn parse_round_trip() {
        let r: Rational = "3/4".parse().unwrap();
        assert_eq!(r, Rational::new(3, 4).unwrap());
        let r: Rational = "-7".parse().unwrap();
        assert_eq!(r, Rational::from_integer(-7));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rational::new(3, 4).unwrap().to_string(), "3/4");
        assert_eq!(Rational::from_integer(-2).to_string(), "-2");
    }
}
