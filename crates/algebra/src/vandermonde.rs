//! Closed-form coefficient fitting by exact basis-matrix inversion.
//!
//! This is the paper's §4.3 technique: the compiler knows the *order* of a
//! polynomial (or geometric) induction variable from the structure of its
//! SCR, so the number of unknown coefficients is fixed. Sampling the
//! recurrence at `h = 0, 1, …` gives a linear system whose matrix has
//! integer entries; inverting it exactly recovers the (always rational)
//! coefficients.

use crate::matrix::Matrix;
use crate::rational::{Rational, RationalError};
use crate::sympoly::SymPoly;

/// Fits a polynomial `c0 + c1·h + … + cd·h^d` of degree `d =
/// samples.len() - 1` through the symbolic sample values at `h = 0..=d`.
///
/// Returns the coefficients `[c0, c1, …, cd]`, or `None` when the basis
/// matrix is singular (impossible for distinct sample points, so only on
/// arithmetic failure).
///
/// # Errors
///
/// Propagates [`RationalError::Overflow`] from exact arithmetic.
///
/// # Panics
///
/// Panics when `samples` is empty.
pub fn fit_polynomial(samples: &[SymPoly]) -> Option<Vec<SymPoly>> {
    fit_polynomial_checked(samples).ok().flatten()
}

/// Like [`fit_polynomial`] but surfaces arithmetic errors.
///
/// # Errors
///
/// Returns [`RationalError::Overflow`] when intermediate arithmetic
/// overflows `i128`.
///
/// # Panics
///
/// Panics when `samples` is empty.
pub fn fit_polynomial_checked(samples: &[SymPoly]) -> Result<Option<Vec<SymPoly>>, RationalError> {
    assert!(!samples.is_empty(), "need at least one sample");
    let n = samples.len();
    let mut basis = Matrix::zero(n, n);
    for h in 0..n {
        for k in 0..n {
            *basis.get_mut(h, k) = Rational::from_integer((h as i128).pow(k as u32));
        }
    }
    let inv = match basis.inverse()? {
        Some(inv) => inv,
        None => return Ok(None),
    };
    Ok(Some(inv.mul_sym_vec(samples)?))
}

/// Coefficients of a geometric closed form: a polynomial part plus one
/// exponential term `g^h`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometricFit {
    /// Polynomial coefficients `[c0, c1, …, cm]` of `c_k · h^k`.
    pub poly: Vec<SymPoly>,
    /// Coefficient of the `base^h` term.
    pub geo: SymPoly,
}

/// Fits `c0 + c1·h + … + cm·h^m + g·base^h` through
/// `samples.len() == m + 2` symbolic values at `h = 0..=m+1`.
///
/// This is the paper's geometric-induction-variable matrix: rows are
/// `[1, h, …, h^m, base^h]`. Returns `None` when the basis matrix is
/// singular — which happens exactly when `base^h` is linearly dependent on
/// the polynomial basis at the sample points (e.g. `base == 1`); callers
/// should fold that case into a plain polynomial fit.
///
/// # Errors
///
/// Propagates [`RationalError::Overflow`].
///
/// # Panics
///
/// Panics when `samples.len() < 2`.
pub fn fit_geometric(
    samples: &[SymPoly],
    base: Rational,
) -> Result<Option<GeometricFit>, RationalError> {
    assert!(samples.len() >= 2, "need at least two samples");
    let n = samples.len();
    let poly_terms = n - 1;
    let mut basis = Matrix::zero(n, n);
    for h in 0..n {
        for k in 0..poly_terms {
            *basis.get_mut(h, k) = Rational::from_integer((h as i128).pow(k as u32));
        }
        *basis.get_mut(h, poly_terms) = base.checked_pow(h as i32)?;
    }
    let inv = match basis.inverse()? {
        Some(inv) => inv,
        None => return Ok(None),
    };
    let mut coeffs = inv.mul_sym_vec(samples)?;
    let geo = coeffs.pop().expect("coeff vector is nonempty");
    Ok(Some(GeometricFit { poly: coeffs, geo }))
}

/// Coefficients of a mixed closed form: a polynomial part plus one
/// exponential term per requested base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedFit {
    /// Polynomial coefficients `[c0, …, cd]` of `c_k · h^k`.
    pub poly: Vec<SymPoly>,
    /// One coefficient per base, in the order the bases were passed.
    pub geo: Vec<SymPoly>,
}

/// Fits `Σ c_k·h^k + Σ g_j·base_j^h` through symbolic samples at
/// `h = 0..samples.len()-1`, with polynomial degree `poly_degree` and the
/// given exponential bases.
///
/// `samples.len()` must equal `poly_degree + 1 + bases.len()`. Returns
/// `None` when the basis matrix is singular — e.g. when a base is `1`
/// (linearly dependent on the constant) or bases repeat; callers should
/// normalize those away first.
///
/// # Errors
///
/// Propagates [`RationalError::Overflow`].
///
/// # Panics
///
/// Panics when the sample count does not match the basis size.
pub fn fit_mixed(
    samples: &[SymPoly],
    poly_degree: usize,
    bases: &[Rational],
) -> Result<Option<MixedFit>, RationalError> {
    let n = poly_degree + 1 + bases.len();
    assert_eq!(
        samples.len(),
        n,
        "sample count must equal unknown count (degree+1+bases)"
    );
    let mut basis = Matrix::zero(n, n);
    for h in 0..n {
        for k in 0..=poly_degree {
            *basis.get_mut(h, k) = Rational::from_integer((h as i128).pow(k as u32));
        }
        for (j, base) in bases.iter().enumerate() {
            *basis.get_mut(h, poly_degree + 1 + j) = base.checked_pow(h as i32)?;
        }
    }
    let inv = match basis.inverse()? {
        Some(inv) => inv,
        None => return Ok(None),
    };
    let mut coeffs = inv.mul_sym_vec(samples)?;
    let geo = coeffs.split_off(poly_degree + 1);
    Ok(Some(MixedFit { poly: coeffs, geo }))
}

/// Evaluates a fitted polynomial at iteration `h`.
///
/// # Errors
///
/// Propagates [`RationalError::Overflow`].
pub fn eval_polynomial(coeffs: &[SymPoly], h: i128) -> Result<SymPoly, RationalError> {
    let mut acc = SymPoly::zero();
    let mut power = Rational::ONE;
    let h = Rational::from_integer(h);
    for c in coeffs {
        acc = acc.checked_add(&c.checked_scale(&power)?)?;
        power = power.checked_mul(&h)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: i128) -> SymPoly {
        SymPoly::from_integer(v)
    }

    #[test]
    fn fit_linear() {
        // 3, 5, -> 3 + 2h
        let coeffs = fit_polynomial(&[c(3), c(5)]).unwrap();
        assert_eq!(
            coeffs[0].constant_value().unwrap(),
            Rational::from_integer(3)
        );
        assert_eq!(
            coeffs[1].constant_value().unwrap(),
            Rational::from_integer(2)
        );
    }

    #[test]
    fn fit_quadratic_paper_j() {
        // L14's j: 2, 4, 7 -> (h^2 + 3h + 4)/2
        let coeffs = fit_polynomial(&[c(2), c(4), c(7)]).unwrap();
        assert_eq!(
            coeffs[0].constant_value().unwrap(),
            Rational::from_integer(2)
        );
        assert_eq!(
            coeffs[1].constant_value().unwrap(),
            Rational::new(3, 2).unwrap()
        );
        assert_eq!(
            coeffs[2].constant_value().unwrap(),
            Rational::new(1, 2).unwrap()
        );
    }

    #[test]
    fn fit_cubic_paper_k() {
        // L14's k: 4, 9, 17, 29 -> (h^3 + 6h^2 + 23h + 24)/6
        let coeffs = fit_polynomial(&[c(4), c(9), c(17), c(29)]).unwrap();
        let consts: Vec<Rational> = coeffs.iter().map(|p| p.constant_value().unwrap()).collect();
        assert_eq!(consts[0], Rational::from_integer(4));
        assert_eq!(consts[1], Rational::new(23, 6).unwrap());
        assert_eq!(consts[2], Rational::from_integer(1));
        assert_eq!(consts[3], Rational::new(1, 6).unwrap());
    }

    #[test]
    fn fit_geometric_paper_l() {
        // L14's l: 3, 7, 15, ... = 2^(h+2) - 1 = 4*2^h - 1
        let fit = fit_geometric(&[c(3), c(7), c(15)], Rational::from_integer(2))
            .unwrap()
            .unwrap();
        assert_eq!(fit.poly.len(), 2);
        assert_eq!(
            fit.poly[0].constant_value().unwrap(),
            Rational::from_integer(-1)
        );
        assert!(fit.poly[1].is_zero());
        assert_eq!(fit.geo.constant_value().unwrap(), Rational::from_integer(4));
    }

    #[test]
    fn fit_geometric_paper_m() {
        // m = 3*m + 2*i + 1 with m0=0, i = h+1 at the point of use:
        // values m: 0, 3, 14, 45, ... closed form 3/2*3^h - h - 3/2
        // (the paper's printed form). Verify by recurrence: with i starting
        // at 1: m1 = 3*0 + 2*1 + 1 = 3, m2 = 9 + 4 + 1 = 14, m3 = 42+6+1 = 49?
        // Careful: i at iteration h (0-based) is h+1, so
        // m_{h+1} = 3 m_h + 2(h+1) + 1. m0=0, m1=3, m2=3*3+5=14, m3=3*14+7=49.
        let fit = fit_geometric(&[c(0), c(3), c(14), c(49)], Rational::from_integer(3))
            .unwrap()
            .unwrap();
        // Fit: c0 + c1 h + g 3^h. At h=0: c0+g=0; h=1: c0+c1+3g=3;
        // h=2: c0+2c1+9g=14; consistent with g=5/2? Solve: from rows:
        // (1) c0 + g = 0, (2) c0 + c1 + 3g = 3, (3) c0 + 2c1 + 9g = 14.
        // (2)-(1): c1 + 2g = 3. (3)-(2): c1 + 6g = 11 => 4g = 8 => g = 2,
        // c1 = -1, c0 = -2. Check h=3: -2 -3 + 2*27 = 49. Correct!
        assert_eq!(fit.geo.constant_value().unwrap(), Rational::from_integer(2));
        assert_eq!(
            fit.poly[0].constant_value().unwrap(),
            Rational::from_integer(-2)
        );
        assert_eq!(
            fit.poly[1].constant_value().unwrap(),
            Rational::from_integer(-1)
        );
    }

    #[test]
    fn geometric_base_one_is_singular() {
        let out = fit_geometric(&[c(1), c(2), c(3)], Rational::ONE).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn symbolic_initial_value() {
        // values n, n+2, n+4 -> n + 2h with symbolic n
        use crate::sympoly::SymId;
        let n = SymPoly::symbol(SymId(9));
        let two = c(2);
        let s1 = n.checked_add(&two).unwrap();
        let s2 = s1.checked_add(&two).unwrap();
        let coeffs = fit_polynomial(&[n.clone(), s1, s2]).unwrap();
        assert_eq!(coeffs[0], n);
        assert_eq!(
            coeffs[1].constant_value().unwrap(),
            Rational::from_integer(2)
        );
        assert!(coeffs[2].is_zero());
    }

    #[test]
    fn eval_round_trips() {
        let coeffs = fit_polynomial(&[c(4), c(9), c(17), c(29)]).unwrap();
        // Closed form (h^3 + 6h^2 + 23h + 24)/6 at h=4: 276/6 = 46.
        let v = eval_polynomial(&coeffs, 4).unwrap();
        assert_eq!(v.constant_value().unwrap(), Rational::from_integer(46));
    }
}

#[cfg(test)]
mod mixed_tests {
    use super::*;

    fn c(v: i128) -> SymPoly {
        SymPoly::from_integer(v)
    }

    #[test]
    fn mixed_fit_poly_plus_two_bases() {
        // v(h) = 1 + 2h + 3·2^h - 1·3^h
        let f = |h: u32| 1 + 2 * (h as i128) + 3 * 2i128.pow(h) - 3i128.pow(h);
        let samples: Vec<SymPoly> = (0..4).map(|h| c(f(h))).collect();
        let fit = fit_mixed(
            &samples,
            1,
            &[Rational::from_integer(2), Rational::from_integer(3)],
        )
        .unwrap()
        .unwrap();
        assert_eq!(
            fit.poly[0].constant_value().unwrap(),
            Rational::from_integer(1)
        );
        assert_eq!(
            fit.poly[1].constant_value().unwrap(),
            Rational::from_integer(2)
        );
        assert_eq!(
            fit.geo[0].constant_value().unwrap(),
            Rational::from_integer(3)
        );
        assert_eq!(
            fit.geo[1].constant_value().unwrap(),
            Rational::from_integer(-1)
        );
    }

    #[test]
    fn mixed_fit_base_one_singular() {
        let samples: Vec<SymPoly> = (0..3).map(|h| c(h + 1)).collect();
        assert!(fit_mixed(&samples, 1, &[Rational::ONE]).unwrap().is_none());
    }

    #[test]
    fn mixed_fit_no_bases_equals_polynomial() {
        let samples: Vec<SymPoly> = vec![c(4), c(9), c(17), c(29)];
        let fit = fit_mixed(&samples, 3, &[]).unwrap().unwrap();
        let direct = fit_polynomial(&samples).unwrap();
        assert_eq!(fit.poly, direct);
        assert!(fit.geo.is_empty());
    }
}
