//! Multivariate symbolic polynomials with rational coefficients.
//!
//! The classifier carries initial values and steps symbolically: in
//! Figure 1 of the paper the induction variable `i3` is `(L7, n1+c1,
//! c1+k1)` — the init and step are *polynomials over loop-entry symbols*.
//! [`SymPoly`] is that representation.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::rational::{Rational, RationalError};

/// An opaque symbol identifier. Client crates map these to SSA values (or
/// any other namespace) — this crate only needs equality and ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(pub u32);

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A monomial: a sorted product of symbols raised to positive powers.
///
/// The empty monomial is the constant term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    // Sorted by symbol, powers > 0.
    factors: Vec<(SymId, u32)>,
}

impl Monomial {
    /// The constant (empty) monomial.
    pub fn one() -> Monomial {
        Monomial::default()
    }

    /// A single symbol to the first power.
    pub fn symbol(sym: SymId) -> Monomial {
        Monomial {
            factors: vec![(sym, 1)],
        }
    }

    /// Whether this is the constant monomial.
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// Total degree (sum of powers).
    pub fn degree(&self) -> u32 {
        self.factors.iter().map(|&(_, p)| p).sum()
    }

    /// The `(symbol, power)` factors, sorted by symbol.
    pub fn factors(&self) -> &[(SymId, u32)] {
        &self.factors
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out: Vec<(SymId, u32)> =
            Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            let (sa, pa) = self.factors[i];
            let (sb, pb) = other.factors[j];
            match sa.cmp(&sb) {
                std::cmp::Ordering::Less => {
                    out.push((sa, pa));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((sb, pb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((sa, pa + pb));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.factors[i..]);
        out.extend_from_slice(&other.factors[j..]);
        Monomial { factors: out }
    }
}

/// A multivariate polynomial over [`SymId`] symbols with [`Rational`]
/// coefficients.
///
/// Internally a sorted map from [`Monomial`] to nonzero coefficient, so
/// equality and display are canonical.
///
/// ```
/// use biv_algebra::{Rational, SymId, SymPoly};
///
/// // n + 2, evaluated at n = 40.
/// let n = SymPoly::symbol(SymId(0));
/// let p = n.checked_add(&SymPoly::from_integer(2))?;
/// let v = p.eval(|_| Some(Rational::from_integer(40))).unwrap();
/// assert_eq!(v, Rational::from_integer(42));
/// # Ok::<(), biv_algebra::RationalError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SymPoly {
    terms: BTreeMap<Monomial, Rational>,
}

impl SymPoly {
    /// The zero polynomial.
    pub fn zero() -> SymPoly {
        SymPoly::default()
    }

    /// A constant polynomial.
    pub fn constant(value: Rational) -> SymPoly {
        let mut terms = BTreeMap::new();
        if !value.is_zero() {
            terms.insert(Monomial::one(), value);
        }
        SymPoly { terms }
    }

    /// A constant polynomial from an integer.
    pub fn from_integer(value: i128) -> SymPoly {
        SymPoly::constant(Rational::from_integer(value))
    }

    /// The polynomial consisting of a single symbol.
    pub fn symbol(sym: SymId) -> SymPoly {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::symbol(sym), Rational::ONE);
        SymPoly { terms }
    }

    /// Whether this polynomial is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether this polynomial is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
            || (self.terms.len() == 1 && self.terms.keys().next().unwrap().is_one())
    }

    /// Returns the constant value when [`SymPoly::is_constant`] holds.
    pub fn constant_value(&self) -> Option<Rational> {
        if self.terms.is_empty() {
            Some(Rational::ZERO)
        } else if self.terms.len() == 1 {
            let (m, c) = self.terms.iter().next().unwrap();
            if m.is_one() {
                Some(*c)
            } else {
                None
            }
        } else {
            None
        }
    }

    /// The constant term (zero when absent).
    pub fn constant_term(&self) -> Rational {
        self.terms
            .get(&Monomial::one())
            .copied()
            .unwrap_or(Rational::ZERO)
    }

    /// Total degree of the polynomial; zero for constants (including zero).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Number of terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(monomial, coefficient)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &Rational)> {
        self.terms.iter()
    }

    /// All symbols mentioned by the polynomial, deduplicated and sorted.
    pub fn symbols(&self) -> Vec<SymId> {
        let mut syms: Vec<SymId> = self
            .terms
            .keys()
            .flat_map(|m| m.factors().iter().map(|&(s, _)| s))
            .collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`] from coefficient arithmetic.
    pub fn checked_add(&self, other: &SymPoly) -> Result<SymPoly, RationalError> {
        let mut terms = self.terms.clone();
        for (m, c) in &other.terms {
            match terms.get_mut(m) {
                Some(existing) => {
                    *existing = existing.checked_add(c)?;
                    if existing.is_zero() {
                        terms.remove(m);
                    }
                }
                None => {
                    terms.insert(m.clone(), *c);
                }
            }
        }
        Ok(SymPoly { terms })
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    pub fn checked_sub(&self, other: &SymPoly) -> Result<SymPoly, RationalError> {
        self.checked_add(&other.checked_neg()?)
    }

    /// Checked negation.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    pub fn checked_neg(&self) -> Result<SymPoly, RationalError> {
        let mut terms = BTreeMap::new();
        for (m, c) in &self.terms {
            terms.insert(m.clone(), c.checked_neg()?);
        }
        Ok(SymPoly { terms })
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    pub fn checked_mul(&self, other: &SymPoly) -> Result<SymPoly, RationalError> {
        let mut terms: BTreeMap<Monomial, Rational> = BTreeMap::new();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                let m = ma.mul(mb);
                let c = ca.checked_mul(cb)?;
                match terms.get_mut(&m) {
                    Some(existing) => {
                        *existing = existing.checked_add(&c)?;
                        if existing.is_zero() {
                            terms.remove(&m);
                        }
                    }
                    None => {
                        if !c.is_zero() {
                            terms.insert(m, c);
                        }
                    }
                }
            }
        }
        Ok(SymPoly { terms })
    }

    /// Checked scaling by a rational.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    pub fn checked_scale(&self, factor: &Rational) -> Result<SymPoly, RationalError> {
        if factor.is_zero() {
            return Ok(SymPoly::zero());
        }
        let mut terms = BTreeMap::new();
        for (m, c) in &self.terms {
            terms.insert(m.clone(), c.checked_mul(factor)?);
        }
        Ok(SymPoly { terms })
    }

    /// Evaluates the polynomial with a (total) assignment of symbols to
    /// rationals.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic errors; missing symbols yield an error via
    /// the `lookup` closure returning `None`, reported as overflow-free
    /// `Err(RationalError::DivisionByZero)`? No — missing symbols are the
    /// caller's bug, so this returns `None` instead.
    pub fn eval<F>(&self, lookup: F) -> Option<Rational>
    where
        F: Fn(SymId) -> Option<Rational>,
    {
        let mut total = Rational::ZERO;
        for (m, c) in &self.terms {
            let mut term = *c;
            for &(sym, pow) in m.factors() {
                let v = lookup(sym)?;
                let p = v.checked_pow(pow as i32).ok()?;
                term = term.checked_mul(&p).ok()?;
            }
            total = total.checked_add(&term).ok()?;
        }
        Some(total)
    }

    /// Substitutes each symbol with a polynomial.
    ///
    /// Symbols for which `lookup` returns `None` are left in place.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    pub fn substitute<F>(&self, lookup: F) -> Result<SymPoly, RationalError>
    where
        F: Fn(SymId) -> Option<SymPoly>,
    {
        let mut total = SymPoly::zero();
        for (m, c) in &self.terms {
            let mut term = SymPoly::constant(*c);
            for &(sym, pow) in m.factors() {
                let replacement = lookup(sym).unwrap_or_else(|| SymPoly::symbol(sym));
                for _ in 0..pow {
                    term = term.checked_mul(&replacement)?;
                }
            }
            total = total.checked_add(&term)?;
        }
        Ok(total)
    }

    /// Renders with a custom symbol naming function.
    pub fn display_with<F>(&self, name: F) -> String
    where
        F: Fn(SymId) -> String,
    {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        let mut out = String::new();
        for (idx, (m, c)) in self.terms.iter().enumerate() {
            let coeff_abs = c.abs();
            let negative = c.signum() < 0;
            if idx == 0 {
                if negative {
                    out.push('-');
                }
            } else if negative {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            let show_coeff = m.is_one() || coeff_abs != Rational::ONE;
            if show_coeff {
                out.push_str(&coeff_abs.to_string());
            }
            for (fidx, &(sym, pow)) in m.factors().iter().enumerate() {
                if show_coeff || fidx > 0 {
                    out.push('*');
                }
                out.push_str(&name(sym));
                if pow > 1 {
                    out.push('^');
                    out.push_str(&pow.to_string());
                }
            }
        }
        out
    }
}

impl From<Rational> for SymPoly {
    fn from(value: Rational) -> Self {
        SymPoly::constant(value)
    }
}

impl From<i64> for SymPoly {
    fn from(value: i64) -> Self {
        SymPoly::from_integer(i128::from(value))
    }
}

impl Add for &SymPoly {
    type Output = SymPoly;
    fn add(self, rhs: &SymPoly) -> SymPoly {
        self.checked_add(rhs).expect("symbolic addition overflowed")
    }
}

impl Sub for &SymPoly {
    type Output = SymPoly;
    fn sub(self, rhs: &SymPoly) -> SymPoly {
        self.checked_sub(rhs)
            .expect("symbolic subtraction overflowed")
    }
}

impl Mul for &SymPoly {
    type Output = SymPoly;
    fn mul(self, rhs: &SymPoly) -> SymPoly {
        self.checked_mul(rhs)
            .expect("symbolic multiplication overflowed")
    }
}

impl Neg for &SymPoly {
    type Output = SymPoly;
    fn neg(self) -> SymPoly {
        self.checked_neg().expect("symbolic negation overflowed")
    }
}

impl fmt::Display for SymPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|s| s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: u32) -> SymPoly {
        SymPoly::symbol(SymId(n))
    }

    #[test]
    fn constants() {
        let c = SymPoly::from_integer(5);
        assert!(c.is_constant());
        assert_eq!(c.constant_value(), Some(Rational::from_integer(5)));
        assert!(SymPoly::zero().is_zero());
        assert_eq!(SymPoly::zero().constant_value(), Some(Rational::ZERO));
    }

    #[test]
    fn add_cancels() {
        let a = sym(1);
        let b = a.checked_neg().unwrap();
        assert!(a.checked_add(&b).unwrap().is_zero());
    }

    #[test]
    fn mul_expands() {
        // (x + 1)(x - 1) = x^2 - 1
        let x = sym(0);
        let one = SymPoly::from_integer(1);
        let lhs = x.checked_add(&one).unwrap();
        let rhs = x.checked_sub(&one).unwrap();
        let prod = lhs.checked_mul(&rhs).unwrap();
        let x2 = x.checked_mul(&x).unwrap();
        let expected = x2.checked_sub(&one).unwrap();
        assert_eq!(prod, expected);
        assert_eq!(prod.degree(), 2);
    }

    #[test]
    fn eval_total() {
        // 2*x*y + 3 at x=2, y=5 => 23
        let x = sym(0);
        let y = sym(1);
        let p = x
            .checked_mul(&y)
            .unwrap()
            .checked_scale(&Rational::from_integer(2))
            .unwrap()
            .checked_add(&SymPoly::from_integer(3))
            .unwrap();
        let v = p
            .eval(|s| {
                Some(match s.0 {
                    0 => Rational::from_integer(2),
                    1 => Rational::from_integer(5),
                    _ => return None,
                })
            })
            .unwrap();
        assert_eq!(v, Rational::from_integer(23));
    }

    #[test]
    fn eval_missing_symbol_is_none() {
        let p = sym(7);
        assert!(p.eval(|_| None).is_none());
    }

    #[test]
    fn substitute_symbol() {
        // p = x^2; substitute x -> y + 1 gives y^2 + 2y + 1
        let x = sym(0);
        let p = x.checked_mul(&x).unwrap();
        let y1 = sym(1).checked_add(&SymPoly::from_integer(1)).unwrap();
        let subst = p
            .substitute(|s| if s.0 == 0 { Some(y1.clone()) } else { None })
            .unwrap();
        let y = sym(1);
        let expected = y
            .checked_mul(&y)
            .unwrap()
            .checked_add(&y.checked_scale(&Rational::from_integer(2)).unwrap())
            .unwrap()
            .checked_add(&SymPoly::from_integer(1))
            .unwrap();
        assert_eq!(subst, expected);
    }

    #[test]
    fn display_readable() {
        let x = sym(0);
        let p = x
            .checked_scale(&Rational::new(1, 2).unwrap())
            .unwrap()
            .checked_add(&SymPoly::from_integer(-3))
            .unwrap();
        assert_eq!(p.to_string(), "-3 + 1/2*s0");
    }

    #[test]
    fn symbols_listed() {
        let p = sym(3).checked_mul(&sym(1)).unwrap();
        assert_eq!(p.symbols(), vec![SymId(1), SymId(3)]);
    }
}
