//! Multivariate symbolic polynomials with rational coefficients.
//!
//! The classifier carries initial values and steps symbolically: in
//! Figure 1 of the paper the induction variable `i3` is `(L7, n1+c1,
//! c1+k1)` — the init and step are *polynomials over loop-entry symbols*.
//! [`SymPoly`] is that representation.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, Mul, Neg, Sub};
use std::rc::Rc;

use crate::rational::{Rational, RationalError};

/// An opaque symbol identifier. Client crates map these to SSA values (or
/// any other namespace) — this crate only needs equality and ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(pub u32);

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A monomial: a sorted product of symbols raised to positive powers.
///
/// The empty monomial is the constant term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    // Sorted by symbol, powers > 0.
    factors: Vec<(SymId, u32)>,
}

impl Monomial {
    /// The constant (empty) monomial.
    pub fn one() -> Monomial {
        Monomial::default()
    }

    /// A single symbol to the first power.
    pub fn symbol(sym: SymId) -> Monomial {
        Monomial {
            factors: vec![(sym, 1)],
        }
    }

    /// Whether this is the constant monomial.
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// Total degree (sum of powers).
    pub fn degree(&self) -> u32 {
        self.factors.iter().map(|&(_, p)| p).sum()
    }

    /// The `(symbol, power)` factors, sorted by symbol.
    pub fn factors(&self) -> &[(SymId, u32)] {
        &self.factors
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out: Vec<(SymId, u32)> =
            Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            let (sa, pa) = self.factors[i];
            let (sb, pb) = other.factors[j];
            match sa.cmp(&sb) {
                std::cmp::Ordering::Less => {
                    out.push((sa, pa));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((sb, pb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((sa, pa + pb));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.factors[i..]);
        out.extend_from_slice(&other.factors[j..]);
        Monomial { factors: out }
    }
}

/// A multivariate polynomial over [`SymId`] symbols with [`Rational`]
/// coefficients.
///
/// Internally a sorted map from [`Monomial`] to nonzero coefficient, so
/// equality and display are canonical.
///
/// ```
/// use biv_algebra::{Rational, SymId, SymPoly};
///
/// // n + 2, evaluated at n = 40.
/// let n = SymPoly::symbol(SymId(0));
/// let p = n.checked_add(&SymPoly::from_integer(2))?;
/// let v = p.eval(|_| Some(Rational::from_integer(40))).unwrap();
/// assert_eq!(v, Rational::from_integer(42));
/// # Ok::<(), biv_algebra::RationalError>(())
/// ```
///
/// The term map lives behind an [`Rc`]: cloning a polynomial is a
/// pointer copy, and small constants and single symbols are hash-consed
/// per thread, so the classifier's pervasive `Class` clones never copy
/// term maps. Zero — the most common value by far — is the `None`
/// variant and costs no allocation, no refcount traffic, and no
/// thread-local access at all. Equality takes a pointer fast path
/// before falling back to structural comparison.
///
/// Invariant: the `Some` variant always holds a non-empty map
/// ([`SymPoly::from_terms`] routes empty results to `None`), so
/// zero-ness is exactly `terms.is_none()`.
#[derive(Debug, Clone)]
pub struct SymPoly {
    terms: Option<Rc<BTreeMap<Monomial, Rational>>>,
}

type Terms = Rc<BTreeMap<Monomial, Rational>>;

thread_local! {
    /// Hash-consed constants, bounded so pathological inputs cannot grow
    /// the cache without limit.
    static CONST_TERMS: RefCell<HashMap<Rational, Terms, BuildConsHasher>> =
        RefCell::new(HashMap::default());
    /// Hash-consed single-symbol polynomials, indexed directly by the
    /// dense [`SymId`] index so the hottest constructor never hashes.
    static SYMBOL_TERMS: RefCell<Vec<Option<Terms>>> = const { RefCell::new(Vec::new()) };
}

/// Upper bound on the constant-consing table. On overflow the table is
/// cleared and refilled rather than frozen: reuse is temporally local (a
/// constant is consulted many times while its loop is analyzed, rarely
/// after), so a recycled cache keeps serving the current region even when
/// a whole run touches far more than `CAP` keys — a frozen one would miss
/// on every key past the first `CAP`.
const CONS_CACHE_CAP: usize = 4096;

/// Upper bound on the symbol-consing vector. Symbols past this index are
/// built uncached; `SymId`s are dense per function, so only pathological
/// inputs get there.
const SYMBOL_CACHE_CAP: usize = 1 << 17;

/// Interns `rc` under `key`, recycling the table when it is full.
fn cache_insert<K: std::hash::Hash + Eq, S: std::hash::BuildHasher>(
    cache: &mut HashMap<K, Terms, S>,
    key: K,
    rc: &Terms,
) {
    if cache.len() >= CONS_CACHE_CAP {
        cache.clear();
    }
    cache.insert(key, Rc::clone(rc));
}

/// A multiply-rotate-xor hasher for the consed-cache tables. The keys are
/// small fixed-size integers (`Rational`'s two `i128`s); SipHash's
/// per-lookup setup dominated these tables in classification profiles,
/// and the tables are thread-local and size-capped, so HashDoS
/// resistance buys nothing here.
#[derive(Default)]
struct ConsHasher {
    hash: u64,
}

type BuildConsHasher = std::hash::BuildHasherDefault<ConsHasher>;

impl ConsHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        // fxhash-style mix: rotate, xor, multiply by a large odd constant.
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for ConsHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_i128(&mut self, n: i128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }
}

impl SymPoly {
    /// The zero polynomial.
    pub fn zero() -> SymPoly {
        SymPoly { terms: None }
    }

    /// The term map, with zero reading as the shared empty map.
    fn terms(&self) -> &BTreeMap<Monomial, Rational> {
        static EMPTY: BTreeMap<Monomial, Rational> = BTreeMap::new();
        match &self.terms {
            Some(rc) => rc,
            None => &EMPTY,
        }
    }

    /// A constant polynomial.
    pub fn constant(value: Rational) -> SymPoly {
        if value.is_zero() {
            return SymPoly::zero();
        }
        CONST_TERMS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(rc) = cache.get(&value) {
                return SymPoly {
                    terms: Some(Rc::clone(rc)),
                };
            }
            let mut terms = BTreeMap::new();
            terms.insert(Monomial::one(), value);
            let rc = Rc::new(terms);
            cache_insert(&mut cache, value, &rc);
            SymPoly { terms: Some(rc) }
        })
    }

    /// A constant polynomial from an integer.
    pub fn from_integer(value: i128) -> SymPoly {
        SymPoly::constant(Rational::from_integer(value))
    }

    /// The polynomial consisting of a single symbol.
    pub fn symbol(sym: SymId) -> SymPoly {
        let idx = sym.0 as usize;
        SYMBOL_TERMS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(Some(rc)) = cache.get(idx) {
                return SymPoly {
                    terms: Some(Rc::clone(rc)),
                };
            }
            let mut terms = BTreeMap::new();
            terms.insert(Monomial::symbol(sym), Rational::ONE);
            let rc = Rc::new(terms);
            if idx < SYMBOL_CACHE_CAP {
                if cache.len() <= idx {
                    cache.resize(idx + 1, None);
                }
                cache[idx] = Some(Rc::clone(&rc));
            }
            SymPoly { terms: Some(rc) }
        })
    }

    /// Wraps a freshly built term map, routing empty and constant results
    /// back through the consed caches so arithmetic that collapses to a
    /// constant still shares its allocation.
    fn from_terms(terms: BTreeMap<Monomial, Rational>) -> SymPoly {
        if terms.is_empty() {
            return SymPoly::zero();
        }
        if terms.len() == 1 {
            let (m, c) = terms.iter().next().expect("len checked");
            if m.is_one() {
                return SymPoly::constant(*c);
            }
        }
        SymPoly {
            terms: Some(Rc::new(terms)),
        }
    }

    /// Whether both polynomials share one interned allocation (zero
    /// counts as a shared allocation). Implies equality; the converse
    /// only holds for consed constructors.
    pub fn shares_allocation(&self, other: &SymPoly) -> bool {
        match (&self.terms, &other.terms) {
            (Some(a), Some(b)) => Rc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Whether this polynomial is the constant one.
    fn is_one(&self) -> bool {
        let terms = self.terms();
        terms.len() == 1
            && terms
                .iter()
                .next()
                .is_some_and(|(m, c)| m.is_one() && *c == Rational::ONE)
    }

    /// Whether this polynomial is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_none()
    }

    /// Whether this polynomial is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        let terms = self.terms();
        terms.is_empty() || (terms.len() == 1 && terms.keys().next().unwrap().is_one())
    }

    /// Returns the constant value when [`SymPoly::is_constant`] holds.
    pub fn constant_value(&self) -> Option<Rational> {
        let terms = self.terms();
        if terms.is_empty() {
            Some(Rational::ZERO)
        } else if terms.len() == 1 {
            let (m, c) = terms.iter().next().unwrap();
            if m.is_one() {
                Some(*c)
            } else {
                None
            }
        } else {
            None
        }
    }

    /// The constant term (zero when absent).
    pub fn constant_term(&self) -> Rational {
        self.terms()
            .get(&Monomial::one())
            .copied()
            .unwrap_or(Rational::ZERO)
    }

    /// Total degree of the polynomial; zero for constants (including zero).
    pub fn degree(&self) -> u32 {
        self.terms().keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Number of terms.
    pub fn term_count(&self) -> usize {
        self.terms().len()
    }

    /// Iterates over `(monomial, coefficient)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &Rational)> {
        self.terms().iter()
    }

    /// All symbols mentioned by the polynomial, deduplicated and sorted.
    pub fn symbols(&self) -> Vec<SymId> {
        let mut syms: Vec<SymId> = self
            .terms()
            .keys()
            .flat_map(|m| m.factors().iter().map(|&(s, _)| s))
            .collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`] from coefficient arithmetic.
    pub fn checked_add(&self, other: &SymPoly) -> Result<SymPoly, RationalError> {
        if self.is_zero() {
            return Ok(other.clone());
        }
        if other.is_zero() {
            return Ok(self.clone());
        }
        // Constant ± constant goes through the consing cache instead of
        // materializing a fresh one-node map.
        if let (Some(a), Some(b)) = (self.constant_value(), other.constant_value()) {
            return Ok(SymPoly::constant(a.checked_add(&b)?));
        }
        let mut terms = BTreeMap::clone(self.terms());
        for (m, c) in other.terms().iter() {
            match terms.get_mut(m) {
                Some(existing) => {
                    *existing = existing.checked_add(c)?;
                    if existing.is_zero() {
                        terms.remove(m);
                    }
                }
                None => {
                    terms.insert(m.clone(), *c);
                }
            }
        }
        Ok(SymPoly::from_terms(terms))
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    pub fn checked_sub(&self, other: &SymPoly) -> Result<SymPoly, RationalError> {
        if other.is_zero() {
            return Ok(self.clone());
        }
        self.checked_add(&other.checked_neg()?)
    }

    /// Checked negation.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    pub fn checked_neg(&self) -> Result<SymPoly, RationalError> {
        if self.is_zero() {
            return Ok(self.clone());
        }
        let mut terms = BTreeMap::new();
        for (m, c) in self.terms().iter() {
            terms.insert(m.clone(), c.checked_neg()?);
        }
        Ok(SymPoly::from_terms(terms))
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    pub fn checked_mul(&self, other: &SymPoly) -> Result<SymPoly, RationalError> {
        if self.is_zero() || other.is_zero() {
            return Ok(SymPoly::zero());
        }
        if self.is_one() {
            return Ok(other.clone());
        }
        if other.is_one() {
            return Ok(self.clone());
        }
        // Constant × constant goes through the consing cache.
        if let (Some(a), Some(b)) = (self.constant_value(), other.constant_value()) {
            return Ok(SymPoly::constant(a.checked_mul(&b)?));
        }
        let mut terms: BTreeMap<Monomial, Rational> = BTreeMap::new();
        for (ma, ca) in self.terms().iter() {
            for (mb, cb) in other.terms().iter() {
                let m = ma.mul(mb);
                let c = ca.checked_mul(cb)?;
                match terms.get_mut(&m) {
                    Some(existing) => {
                        *existing = existing.checked_add(&c)?;
                        if existing.is_zero() {
                            terms.remove(&m);
                        }
                    }
                    None => {
                        if !c.is_zero() {
                            terms.insert(m, c);
                        }
                    }
                }
            }
        }
        Ok(SymPoly::from_terms(terms))
    }

    /// Checked scaling by a rational.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    pub fn checked_scale(&self, factor: &Rational) -> Result<SymPoly, RationalError> {
        if factor.is_zero() || self.is_zero() {
            return Ok(SymPoly::zero());
        }
        if *factor == Rational::ONE {
            return Ok(self.clone());
        }
        // Scaled constants go through the consing cache.
        if let Some(c) = self.constant_value() {
            return Ok(SymPoly::constant(c.checked_mul(factor)?));
        }
        let mut terms = BTreeMap::new();
        for (m, c) in self.terms().iter() {
            terms.insert(m.clone(), c.checked_mul(factor)?);
        }
        Ok(SymPoly::from_terms(terms))
    }

    /// Evaluates the polynomial with a (total) assignment of symbols to
    /// rationals.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic errors; missing symbols yield an error via
    /// the `lookup` closure returning `None`, reported as overflow-free
    /// `Err(RationalError::DivisionByZero)`? No — missing symbols are the
    /// caller's bug, so this returns `None` instead.
    pub fn eval<F>(&self, lookup: F) -> Option<Rational>
    where
        F: Fn(SymId) -> Option<Rational>,
    {
        let mut total = Rational::ZERO;
        for (m, c) in self.terms().iter() {
            let mut term = *c;
            for &(sym, pow) in m.factors() {
                let v = lookup(sym)?;
                let p = v.checked_pow(pow as i32).ok()?;
                term = term.checked_mul(&p).ok()?;
            }
            total = total.checked_add(&term).ok()?;
        }
        Some(total)
    }

    /// Substitutes each symbol with a polynomial.
    ///
    /// Symbols for which `lookup` returns `None` are left in place.
    ///
    /// # Errors
    ///
    /// Propagates [`RationalError::Overflow`].
    pub fn substitute<F>(&self, lookup: F) -> Result<SymPoly, RationalError>
    where
        F: Fn(SymId) -> Option<SymPoly>,
    {
        if self.is_constant() {
            return Ok(self.clone());
        }
        let mut total = SymPoly::zero();
        for (m, c) in self.terms().iter() {
            let mut term = SymPoly::constant(*c);
            for &(sym, pow) in m.factors() {
                let replacement = lookup(sym).unwrap_or_else(|| SymPoly::symbol(sym));
                for _ in 0..pow {
                    term = term.checked_mul(&replacement)?;
                }
            }
            total = total.checked_add(&term)?;
        }
        Ok(total)
    }

    /// Renders with a custom symbol naming function.
    pub fn display_with<F>(&self, name: F) -> String
    where
        F: Fn(SymId) -> String,
    {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut out = String::new();
        for (idx, (m, c)) in self.terms().iter().enumerate() {
            let coeff_abs = c.abs();
            let negative = c.signum() < 0;
            if idx == 0 {
                if negative {
                    out.push('-');
                }
            } else if negative {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            let show_coeff = m.is_one() || coeff_abs != Rational::ONE;
            if show_coeff {
                out.push_str(&coeff_abs.to_string());
            }
            for (fidx, &(sym, pow)) in m.factors().iter().enumerate() {
                if show_coeff || fidx > 0 {
                    out.push('*');
                }
                out.push_str(&name(sym));
                if pow > 1 {
                    out.push('^');
                    out.push_str(&pow.to_string());
                }
            }
        }
        out
    }
}

impl Default for SymPoly {
    fn default() -> SymPoly {
        SymPoly::zero()
    }
}

impl PartialEq for SymPoly {
    fn eq(&self, other: &SymPoly) -> bool {
        match (&self.terms, &other.terms) {
            (None, None) => true,
            (Some(a), Some(b)) => Rc::ptr_eq(a, b) || a == b,
            // `Some` is never empty, so zero only equals zero.
            _ => false,
        }
    }
}

impl Eq for SymPoly {}

impl Hash for SymPoly {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Contents only, never the pointer: `a == b` must imply equal
        // hashes even for polynomials in distinct allocations.
        self.terms().hash(state);
    }
}

impl From<Rational> for SymPoly {
    fn from(value: Rational) -> Self {
        SymPoly::constant(value)
    }
}

impl From<i64> for SymPoly {
    fn from(value: i64) -> Self {
        SymPoly::from_integer(i128::from(value))
    }
}

impl Add for &SymPoly {
    type Output = SymPoly;
    fn add(self, rhs: &SymPoly) -> SymPoly {
        self.checked_add(rhs).expect("symbolic addition overflowed")
    }
}

impl Sub for &SymPoly {
    type Output = SymPoly;
    fn sub(self, rhs: &SymPoly) -> SymPoly {
        self.checked_sub(rhs)
            .expect("symbolic subtraction overflowed")
    }
}

impl Mul for &SymPoly {
    type Output = SymPoly;
    fn mul(self, rhs: &SymPoly) -> SymPoly {
        self.checked_mul(rhs)
            .expect("symbolic multiplication overflowed")
    }
}

impl Neg for &SymPoly {
    type Output = SymPoly;
    fn neg(self) -> SymPoly {
        self.checked_neg().expect("symbolic negation overflowed")
    }
}

impl fmt::Display for SymPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|s| s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: u32) -> SymPoly {
        SymPoly::symbol(SymId(n))
    }

    #[test]
    fn constants() {
        let c = SymPoly::from_integer(5);
        assert!(c.is_constant());
        assert_eq!(c.constant_value(), Some(Rational::from_integer(5)));
        assert!(SymPoly::zero().is_zero());
        assert_eq!(SymPoly::zero().constant_value(), Some(Rational::ZERO));
    }

    #[test]
    fn add_cancels() {
        let a = sym(1);
        let b = a.checked_neg().unwrap();
        assert!(a.checked_add(&b).unwrap().is_zero());
    }

    #[test]
    fn mul_expands() {
        // (x + 1)(x - 1) = x^2 - 1
        let x = sym(0);
        let one = SymPoly::from_integer(1);
        let lhs = x.checked_add(&one).unwrap();
        let rhs = x.checked_sub(&one).unwrap();
        let prod = lhs.checked_mul(&rhs).unwrap();
        let x2 = x.checked_mul(&x).unwrap();
        let expected = x2.checked_sub(&one).unwrap();
        assert_eq!(prod, expected);
        assert_eq!(prod.degree(), 2);
    }

    #[test]
    fn eval_total() {
        // 2*x*y + 3 at x=2, y=5 => 23
        let x = sym(0);
        let y = sym(1);
        let p = x
            .checked_mul(&y)
            .unwrap()
            .checked_scale(&Rational::from_integer(2))
            .unwrap()
            .checked_add(&SymPoly::from_integer(3))
            .unwrap();
        let v = p
            .eval(|s| {
                Some(match s.0 {
                    0 => Rational::from_integer(2),
                    1 => Rational::from_integer(5),
                    _ => return None,
                })
            })
            .unwrap();
        assert_eq!(v, Rational::from_integer(23));
    }

    #[test]
    fn eval_missing_symbol_is_none() {
        let p = sym(7);
        assert!(p.eval(|_| None).is_none());
    }

    #[test]
    fn substitute_symbol() {
        // p = x^2; substitute x -> y + 1 gives y^2 + 2y + 1
        let x = sym(0);
        let p = x.checked_mul(&x).unwrap();
        let y1 = sym(1).checked_add(&SymPoly::from_integer(1)).unwrap();
        let subst = p
            .substitute(|s| if s.0 == 0 { Some(y1.clone()) } else { None })
            .unwrap();
        let y = sym(1);
        let expected = y
            .checked_mul(&y)
            .unwrap()
            .checked_add(&y.checked_scale(&Rational::from_integer(2)).unwrap())
            .unwrap()
            .checked_add(&SymPoly::from_integer(1))
            .unwrap();
        assert_eq!(subst, expected);
    }

    #[test]
    fn display_readable() {
        let x = sym(0);
        let p = x
            .checked_scale(&Rational::new(1, 2).unwrap())
            .unwrap()
            .checked_add(&SymPoly::from_integer(-3))
            .unwrap();
        assert_eq!(p.to_string(), "-3 + 1/2*s0");
    }

    #[test]
    fn interned_zero_and_constants_share_allocations() {
        assert!(SymPoly::zero().shares_allocation(&SymPoly::zero()));
        assert!(SymPoly::from_integer(5).shares_allocation(&SymPoly::from_integer(5)));
        assert!(sym(3).shares_allocation(&sym(3)));
        // Arithmetic that collapses to a consed value re-enters the cache.
        let x = sym(0);
        let diff = x.checked_sub(&x).unwrap();
        assert!(diff.shares_allocation(&SymPoly::zero()));
        let five = SymPoly::from_integer(2)
            .checked_add(&SymPoly::from_integer(3))
            .unwrap();
        assert!(five.shares_allocation(&SymPoly::from_integer(5)));
    }

    #[test]
    fn clone_is_a_pointer_copy() {
        let p = sym(0).checked_add(&SymPoly::from_integer(7)).unwrap();
        assert!(p.clone().shares_allocation(&p));
    }

    #[test]
    fn hash_consistent_with_eq_across_allocations() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash_of = |p: &SymPoly| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        // Same value built two different ways: distinct allocations,
        // equal, and therefore equal hashes.
        let a = sym(0).checked_add(&SymPoly::from_integer(1)).unwrap();
        let b = SymPoly::from_integer(3)
            .checked_add(&sym(0))
            .unwrap()
            .checked_sub(&SymPoly::from_integer(2))
            .unwrap();
        assert!(!a.shares_allocation(&b));
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        // And a pointer-shared pair trivially agrees.
        assert_eq!(hash_of(&a), hash_of(&a.clone()));
    }

    #[test]
    fn arithmetic_identity_fast_paths() {
        let x = sym(0);
        let zero = SymPoly::zero();
        let one = SymPoly::from_integer(1);
        assert!(x.checked_add(&zero).unwrap().shares_allocation(&x));
        assert!(zero.checked_add(&x).unwrap().shares_allocation(&x));
        assert!(x.checked_sub(&zero).unwrap().shares_allocation(&x));
        assert!(x.checked_mul(&one).unwrap().shares_allocation(&x));
        assert!(one.checked_mul(&x).unwrap().shares_allocation(&x));
        assert!(x.checked_mul(&zero).unwrap().is_zero());
        assert!(x
            .checked_scale(&Rational::ONE)
            .unwrap()
            .shares_allocation(&x));
    }

    #[test]
    fn symbols_listed() {
        let p = sym(3).checked_mul(&sym(1)).unwrap();
        assert_eq!(p.symbols(), vec![SymId(1), SymId(3)]);
    }
}
