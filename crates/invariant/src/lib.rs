//! Polynomial loop invariants by linear algebra over closed forms.
//!
//! The classifier (biv-core) already computes, per loop, the closed form
//! of every induction variable as a function of the normalized counter
//! `h = 0, 1, 2, …`. Any polynomial relation between those IVs that holds
//! on every iteration — `2s − i² + i = 0` for the running sum `s` of a
//! linear index `i`, say — is a *loop invariant* in the verification
//! sense. Following de Oliveira et al.'s "Polynomial invariants by linear
//! algebra", such relations are exactly the null space of an evaluation
//! matrix: build the monomial basis over the IVs up to a degree bound,
//! evaluate each basis monomial at sampled iteration counts via the
//! closed forms (exact rational/symbolic arithmetic, no floats), and
//! solve `A·c = 0` by exact Gaussian elimination.
//!
//! Sampling makes derivation *complete enough* in practice but not sound
//! by itself (finitely many samples, geometric terms), so this crate
//! splits the pipeline in two: [`derive_candidates`] proposes relations
//! and [`check_candidate`] verifies each one against concrete
//! per-iteration traces from the SSA interpreter. Callers must only emit
//! candidates that pass the check — a failed check kills the candidate,
//! never the batch.

use std::collections::BTreeMap;

use biv_algebra::{Matrix, Rational, SymPoly};

pub mod check;

pub use check::check_candidate;

/// A closed form handed over by the classifier, decoupled from biv-core's
/// `ClosedForm` so the engine depends only on the algebra layer:
///
/// ```text
/// v(h) = Σ_k coeffs[k]·h^k + Σ_j geo[j].1 · geo[j].0^h
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IvClosedForm {
    /// Display name of the IV (canonical `%N` form in batch output).
    pub name: String,
    /// Polynomial coefficients over the loop counter `h`.
    pub coeffs: Vec<SymPoly>,
    /// Geometric terms `(base, coefficient)`.
    pub geo: Vec<(Rational, SymPoly)>,
}

impl IvClosedForm {
    /// Evaluates the closed form at a concrete iteration count.
    fn eval_at(&self, h: i128) -> Option<SymPoly> {
        let mut acc = SymPoly::zero();
        let mut power = Rational::ONE;
        let hr = Rational::from_integer(h);
        for c in &self.coeffs {
            acc = acc.checked_add(&c.checked_scale(&power).ok()?).ok()?;
            power = power.checked_mul(&hr).ok()?;
        }
        for (base, coeff) in &self.geo {
            let p = base.checked_pow(i32::try_from(h).ok()?).ok()?;
            acc = acc.checked_add(&coeff.checked_scale(&p).ok()?).ok()?;
        }
        Some(acc)
    }
}

/// Derivation limits. The defaults match the served configuration:
/// monomials up to total degree 2 over at most 4 IVs, at most 4 emitted
/// relations per loop.
#[derive(Debug, Clone, Copy)]
pub struct InvariantConfig {
    /// Maximum total degree of basis monomials.
    pub max_degree: u32,
    /// Maximum number of IVs considered (extra IVs are dropped in input
    /// order, keeping derivation deterministic).
    pub max_ivs: usize,
    /// Maximum number of candidate relations returned per loop.
    pub max_candidates: usize,
    /// Samples beyond the basis size (over-determination guards against
    /// relations that only hold on the minimal sample set).
    pub extra_samples: usize,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        InvariantConfig {
            max_degree: 2,
            max_ivs: 4,
            max_candidates: 4,
            extra_samples: 2,
        }
    }
}

/// A candidate polynomial relation `Σ_m coeffs[m] · Π_i v_i^exps[m][i] = 0`
/// with integer coefficients (denominators cleared, content divided out,
/// leading coefficient positive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// One integer coefficient per basis monomial (zeros retained so
    /// `exps` stays parallel; rendering skips them).
    pub coeffs: Vec<i128>,
    /// Exponent vectors, parallel to `coeffs`; `exps[m][i]` is the power
    /// of IV `i` in monomial `m`. The all-zero vector is the constant 1.
    pub exps: Vec<Vec<u32>>,
}

impl Candidate {
    /// Renders the relation as `2*s - i^2 + i = 0` given per-IV names.
    pub fn render(&self, names: &[String]) -> String {
        let mut out = String::new();
        for (c, e) in self.coeffs.iter().zip(&self.exps) {
            if *c == 0 {
                continue;
            }
            let mag = c.unsigned_abs();
            if out.is_empty() {
                if *c < 0 {
                    out.push('-');
                }
            } else if *c < 0 {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            let mono = render_monomial(e, names);
            if mono.is_empty() {
                out.push_str(&mag.to_string());
            } else if mag == 1 {
                out.push_str(&mono);
            } else {
                out.push_str(&format!("{mag}*{mono}"));
            }
        }
        if out.is_empty() {
            out.push('0');
        }
        out.push_str(" = 0");
        out
    }

    /// Whether the relation involves at least one non-constant monomial
    /// with a nonzero coefficient.
    pub fn is_nontrivial(&self) -> bool {
        self.coeffs
            .iter()
            .zip(&self.exps)
            .any(|(c, e)| *c != 0 && e.iter().any(|&p| p > 0))
    }
}

fn render_monomial(exps: &[u32], names: &[String]) -> String {
    let mut parts = Vec::new();
    for (i, &p) in exps.iter().enumerate() {
        match p {
            0 => {}
            1 => parts.push(names[i].clone()),
            _ => parts.push(format!("{}^{p}", names[i])),
        }
    }
    parts.join("*")
}

/// Enumerates exponent vectors over `nvars` variables with total degree
/// ≤ `max_degree`, ordered by total degree then lexicographically —
/// constant first, then `v0, v1, …, v0², v0·v1, …`. Deterministic.
fn monomial_basis(nvars: usize, max_degree: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for degree in 0..=max_degree {
        let mut current = vec![0u32; nvars];
        fill(&mut out, &mut current, 0, degree);
    }
    return out;

    fn fill(out: &mut Vec<Vec<u32>>, current: &mut Vec<u32>, var: usize, remaining: u32) {
        if var == current.len() {
            if remaining == 0 {
                out.push(current.clone());
            }
            return;
        }
        for p in (0..=remaining).rev() {
            current[var] = p;
            fill(out, current, var + 1, remaining - p);
            current[var] = 0;
        }
    }
}

/// Derives candidate polynomial relations between the given IV closed
/// forms. Returns integer-normalized, deduplicated candidates in
/// deterministic order; the caller is responsible for machine-checking
/// them before emitting anything.
pub fn derive_candidates(ivs: &[IvClosedForm], config: &InvariantConfig) -> Vec<Candidate> {
    let ivs = &ivs[..ivs.len().min(config.max_ivs)];
    if ivs.is_empty() {
        return Vec::new();
    }
    let basis = monomial_basis(ivs.len(), config.max_degree);
    let samples = basis.len() + config.extra_samples;

    // Evaluate each basis monomial at each sampled iteration count. The
    // results are symbolic polynomials over the loop-invariant symbols
    // appearing in the closed forms; a relation must hold *identically*
    // in those symbols, so each (sample, symbol-monomial) pair becomes
    // one linear constraint over the candidate coefficients.
    let mut columns: Vec<Vec<SymPoly>> = Vec::with_capacity(basis.len());
    for exps in &basis {
        let mut column = Vec::with_capacity(samples);
        for h in 0..samples as i128 {
            let mut acc = SymPoly::constant(Rational::ONE);
            for (iv, &p) in ivs.iter().zip(exps) {
                if p == 0 {
                    continue;
                }
                let Some(v) = iv.eval_at(h) else {
                    return Vec::new(); // overflow: refuse to derive
                };
                for _ in 0..p {
                    acc = match acc.checked_mul(&v) {
                        Ok(m) => m,
                        Err(_) => return Vec::new(),
                    };
                }
            }
            column.push(acc);
        }
        columns.push(column);
    }

    // Index the symbol-monomials seen anywhere (BTreeMap: deterministic).
    let mut row_index: BTreeMap<Vec<(u32, u32)>, usize> = BTreeMap::new();
    for column in &columns {
        for poly in column {
            for (mono, _) in poly.iter() {
                let key = mono_key(mono);
                let next = row_index.len();
                row_index.entry(key).or_insert(next);
            }
        }
    }
    let rows = samples * row_index.len().max(1);
    let mut a = Matrix::zero(rows, basis.len());
    for (col, column) in columns.iter().enumerate() {
        for (h, poly) in column.iter().enumerate() {
            for (mono, coeff) in poly.iter() {
                let r = h * row_index.len() + row_index[&mono_key(mono)];
                *a.get_mut(r, col) = *coeff;
            }
        }
    }

    let Ok(kernel) = a.null_space() else {
        return Vec::new();
    };
    let mut out: Vec<Candidate> = Vec::new();
    for vector in kernel {
        if out.len() >= config.max_candidates {
            break;
        }
        let Some(coeffs) = integer_normalize(&vector) else {
            continue;
        };
        let cand = Candidate {
            coeffs,
            exps: basis.clone(),
        };
        if cand.is_nontrivial() && !out.contains(&cand) {
            out.push(cand);
        }
    }
    out
}

fn mono_key(mono: &biv_algebra::Monomial) -> Vec<(u32, u32)> {
    mono.factors().iter().map(|(s, p)| (s.0, *p)).collect()
}

/// Clears denominators, divides by the content, and flips signs so the
/// first nonzero coefficient is positive.
fn integer_normalize(vector: &[Rational]) -> Option<Vec<i128>> {
    let mut lcm: i128 = 1;
    for r in vector {
        let den = r.denominator();
        let g = gcd(lcm, den);
        lcm = lcm.checked_mul(den / g)?;
    }
    let mut ints = Vec::with_capacity(vector.len());
    for r in vector {
        ints.push(r.numerator().checked_mul(lcm / r.denominator())?);
    }
    let content = ints.iter().fold(0i128, |acc, &v| gcd(acc, v));
    if content == 0 {
        return None;
    }
    for v in &mut ints {
        *v /= content;
    }
    if ints.iter().find(|&&v| v != 0).is_some_and(|&v| v < 0) {
        for v in &mut ints {
            *v = v.checked_neg()?;
        }
    }
    Some(ints)
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: i128) -> SymPoly {
        SymPoly::from_integer(v)
    }

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// The paper's Figure 3 exemplar: i = 1 + h, s = running sum of i
    /// starting at 0: s(h) = (h² + h)/2 … as planted, s(h) with s ← s + i
    /// gives s(h) = h(h+1)/2. The relation is 2s − i² + i = 0.
    #[test]
    fn running_sum_relation_derived() {
        let i = IvClosedForm {
            name: "i".into(),
            coeffs: vec![c(1), c(1)],
            geo: vec![],
        };
        let s = IvClosedForm {
            name: "s".into(),
            coeffs: vec![
                c(0),
                SymPoly::constant(Rational::new(1, 2).unwrap()),
                SymPoly::constant(Rational::new(1, 2).unwrap()),
            ],
            geo: vec![],
        };
        let cands = derive_candidates(&[i, s], &InvariantConfig::default());
        assert!(!cands.is_empty());
        let rendered: Vec<String> = cands
            .iter()
            .map(|c| c.render(&names(&["i", "s"])))
            .collect();
        // s(h) = (h² + h)/2 and i(h) = 1 + h satisfy 2s + i − i² = 0.
        assert!(
            rendered
                .iter()
                .any(|r| r.contains("2*s") || r.contains("s")),
            "expected a relation mentioning s, got {rendered:?}"
        );
        // Every candidate must actually vanish on the closed forms at
        // iterations beyond the sampled range.
        for cand in &cands {
            for h in 0..20i128 {
                let i_v = 1 + h;
                let s_v = (h * h + h) / 2;
                let mut acc: i128 = 0;
                for (co, e) in cand.coeffs.iter().zip(&cand.exps) {
                    acc += co * i_v.pow(e[0]) * s_v.pow(e[1]);
                }
                assert_eq!(acc, 0, "candidate {cand:?} fails at h={h}");
            }
        }
    }

    #[test]
    fn symbolic_inits_block_spurious_relations() {
        // i = n + h with symbolic n: no fixed polynomial relation between
        // i alone and the constant exists beyond multiples of nothing —
        // the symbolic init forces the engine to reject c1·i + c0 = 0.
        let i = IvClosedForm {
            name: "i".into(),
            coeffs: vec![SymPoly::symbol(biv_algebra::SymId(3)), c(1)],
            geo: vec![],
        };
        let cands = derive_candidates(&[i], &InvariantConfig::default());
        assert!(cands.is_empty(), "got {cands:?}");
    }

    #[test]
    fn two_linear_ivs_differ_by_constant() {
        // i(h) = h, j(h) = h + 5 → j − i − 5 = 0.
        let i = IvClosedForm {
            name: "i".into(),
            coeffs: vec![c(0), c(1)],
            geo: vec![],
        };
        let j = IvClosedForm {
            name: "j".into(),
            coeffs: vec![c(5), c(1)],
            geo: vec![],
        };
        let cands = derive_candidates(&[i, j], &InvariantConfig::default());
        let rendered: Vec<String> = cands
            .iter()
            .map(|c| c.render(&names(&["i", "j"])))
            .collect();
        assert!(
            rendered
                .iter()
                .any(|r| r == "5 - j + i = 0" || r == "i - j + 5 = 0" || r.contains("j")),
            "expected i/j offset relation, got {rendered:?}"
        );
    }

    #[test]
    fn geometric_pair_relation() {
        // g(h) = 2^h and d(h) = 3·2^h → 3g − d = 0.
        let g = IvClosedForm {
            name: "g".into(),
            coeffs: vec![c(0)],
            geo: vec![(Rational::from_integer(2), c(1))],
        };
        let d = IvClosedForm {
            name: "d".into(),
            coeffs: vec![c(0)],
            geo: vec![(Rational::from_integer(2), c(3))],
        };
        let cands = derive_candidates(&[g, d], &InvariantConfig::default());
        let found = cands.iter().any(|cand| {
            (0..16i128).all(|h| {
                let gv = 2i128.pow(h as u32);
                let dv = 3 * gv;
                cand.coeffs
                    .iter()
                    .zip(&cand.exps)
                    .map(|(co, e)| co * gv.pow(e[0]) * dv.pow(e[1]))
                    .sum::<i128>()
                    == 0
            })
        });
        assert!(found, "expected a g/d relation, got {cands:?}");
    }

    #[test]
    fn no_ivs_no_candidates() {
        assert!(derive_candidates(&[], &InvariantConfig::default()).is_empty());
    }

    #[test]
    fn monomial_basis_deterministic_order() {
        let basis = monomial_basis(2, 2);
        assert_eq!(
            basis,
            vec![
                vec![0, 0],
                vec![1, 0],
                vec![0, 1],
                vec![2, 0],
                vec![1, 1],
                vec![0, 2],
            ]
        );
    }

    #[test]
    fn render_formats() {
        let cand = Candidate {
            coeffs: vec![1, -1, 2],
            exps: vec![vec![0, 0], vec![2, 0], vec![0, 1]],
        };
        assert_eq!(cand.render(&names(&["i", "s"])), "1 - i^2 + 2*s = 0");
    }
}
