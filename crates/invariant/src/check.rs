//! Machine-checking of candidate invariants against concrete traces.
//!
//! Derivation samples the *closed forms*; checking replays the *program*.
//! The SSA interpreter (biv-ssa) executes the original function on seeded
//! inputs and records the per-iteration history of every loop-header φ —
//! the candidate must vanish at every observed iteration of every seed.
//! Overflowing iterations are skipped (the check is over exact i128
//! arithmetic widened from the interpreter's i64 values, so only extreme
//! monomials overflow); a candidate with *no* checkable iteration at all
//! is rejected, never emitted unverified.

use crate::Candidate;

/// Per-seed, per-IV iteration histories: `histories[iv][h]` is the value
/// IV `iv` took entering iteration `h`. Histories of different IVs may
/// have different lengths (a φ later in the header list misses the final
/// partial iteration); checking stops at the shortest.
pub type SeedHistories = Vec<Vec<i64>>;

/// Checks a candidate against every seed trace. Returns `true` only when
/// the relation holds at every checkable iteration of every seed *and*
/// at least `min_iterations` iterations were actually checked in total.
pub fn check_candidate(cand: &Candidate, seeds: &[SeedHistories], min_iterations: usize) -> bool {
    let mut checked = 0usize;
    for histories in seeds {
        if histories.len() != cand.exps.first().map(Vec::len).unwrap_or(0) {
            return false; // IV count mismatch: caller wiring error
        }
        let len = histories.iter().map(Vec::len).min().unwrap_or(0);
        for h in 0..len {
            match eval_at(cand, histories, h) {
                Some(0) => checked += 1,
                Some(_) => return false,
                None => {} // overflow: skip this iteration
            }
        }
    }
    checked >= min_iterations.max(1)
}

/// Evaluates the candidate at iteration `h`; `None` on i128 overflow.
fn eval_at(cand: &Candidate, histories: &[Vec<i64>], h: usize) -> Option<i128> {
    let mut acc: i128 = 0;
    for (coeff, exps) in cand.coeffs.iter().zip(&cand.exps) {
        if *coeff == 0 {
            continue;
        }
        let mut term: i128 = *coeff;
        for (iv, &p) in exps.iter().enumerate() {
            for _ in 0..p {
                term = term.checked_mul(i128::from(histories[iv][h]))?;
            }
        }
        acc = acc.checked_add(term)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_sum_candidate() -> Candidate {
        // 2s − i² + i = 0 over (i, s), basis order [1, i, s, i², is, s²].
        Candidate {
            coeffs: vec![0, 1, 2, -1, 0, 0],
            exps: vec![
                vec![0, 0],
                vec![1, 0],
                vec![0, 1],
                vec![2, 0],
                vec![1, 1],
                vec![0, 2],
            ],
        }
    }

    fn running_sum_trace(n: i64) -> SeedHistories {
        // i = 1, 2, …; s enters iteration h as sum of 0..h terms.
        let mut i_hist = Vec::new();
        let mut s_hist = Vec::new();
        let mut s = 0i64;
        for h in 0..n {
            i_hist.push(1 + h);
            s_hist.push(s);
            s += 1 + h;
        }
        vec![i_hist, s_hist]
    }

    #[test]
    fn true_invariant_passes() {
        let cand = running_sum_candidate();
        assert!(check_candidate(&cand, &[running_sum_trace(10)], 1));
    }

    #[test]
    fn off_by_one_coefficient_rejected() {
        // The tripwire: 3s − i² + i ≠ 0.
        let mut broken = running_sum_candidate();
        broken.coeffs[2] = 3;
        assert!(!check_candidate(&broken, &[running_sum_trace(10)], 1));
    }

    #[test]
    fn zero_observed_iterations_rejected() {
        let cand = running_sum_candidate();
        assert!(!check_candidate(&cand, &[running_sum_trace(0)], 1));
    }

    #[test]
    fn any_failing_seed_rejects() {
        let cand = running_sum_candidate();
        let mut bad = running_sum_trace(6);
        bad[1][3] += 1; // corrupt one iteration of s
        assert!(!check_candidate(&cand, &[running_sum_trace(10), bad], 1));
    }
}
