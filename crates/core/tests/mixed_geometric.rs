//! Boundary pinning for the `MixedGeometric` class: the promotion
//! `v ← r·v + c  ⇒  base·r^h + offset` must fire exactly when
//! `r ∉ {−1, 0, 1}` and `c ≠ 0`, and *never* leak into the degenerate
//! boundaries — `r == 1` is linear, `c == 0` is pure geometric, and
//! `r == −1` alternates (plain closed form; flip-flop pairs stay
//! `Periodic`). Each case pins the full class, not just "not mixed".

use biv_algebra::Rational;
use biv_core::{analyze_source, Class};

/// The class of the loop-header φ for the variable updated in `L1`.
fn header_phi_class(src: &str) -> Class {
    let analysis = analyze_source(src).unwrap();
    let l = analysis.loop_by_label("L1").unwrap();
    let header = analysis.forest().data(l).header;
    let info = analysis.info(l);
    let phis = &analysis.ssa().block(header).phis;
    // The probe sources name the planted variable `v`; its φ is the one
    // whose name starts with `v`.
    let phi = *phis
        .iter()
        .find(|&&p| analysis.ssa().value_name(p).starts_with('v'))
        .expect("v's header φ");
    info.classes.get(phi).expect("classified").clone()
}

#[test]
fn ratio_one_is_linear_not_mixed() {
    let class =
        header_phi_class("func f() { v = 4 L1: for i = 1 to 10 { v = v * 1 + 3 ARR[v] = i } }");
    let Class::Induction(cf) = class else {
        panic!("r == 1 must stay a polynomial induction, got {class:?}");
    };
    assert!(cf.geo.is_empty(), "no geometric term at r == 1");
    assert_eq!(cf.degree(), 1, "4 + 3h is linear");
    assert_eq!(
        cf.coeffs[1].constant_value().unwrap(),
        Rational::from_integer(3)
    );
}

#[test]
fn zero_step_stays_pure_geometric() {
    let class = header_phi_class("func f() { v = 4 L1: for i = 1 to 10 { v = v * 2 ARR[v] = i } }");
    let Class::Induction(cf) = class else {
        panic!("c == 0 must stay a plain geometric closed form, got {class:?}");
    };
    assert_eq!(cf.geo.len(), 1, "one geometric term");
    assert_eq!(cf.geo[0].0, Rational::from_integer(2));
    assert!(
        cf.coeffs.iter().all(|c| c.is_zero()),
        "no additive part: 4·2^h exactly"
    );
}

#[test]
fn ratio_minus_one_alternates_without_promotion() {
    // v ← −v + 5 oscillates between 4 and 1: base·(−1)^h + 5/2 is a
    // valid closed form, but promoting it would put an alternating
    // recurrence in a class whose offset reads as a fixed point the
    // values never approach. It stays a plain closed form.
    for src in [
        "func f() { v = 4 L1: for i = 1 to 10 { v = 5 - v ARR[v] = i } }",
        "func f() { v = 4 L1: for i = 1 to 10 { v = v * -1 + 5 ARR[v] = i } }",
    ] {
        let class = header_phi_class(src);
        let Class::Induction(cf) = class else {
            panic!("r == −1 must stay a plain closed form, got {class:?}");
        };
        assert_eq!(cf.geo.len(), 1);
        assert_eq!(cf.geo[0].0, Rational::from_integer(-1), "alternating base");
        assert_eq!(
            cf.coeffs[0].constant_value().unwrap(),
            Rational::new(5, 2).unwrap(),
            "midpoint 5/2, not a mixed-geometric offset"
        );
    }
}

#[test]
fn flip_flop_pair_stays_periodic() {
    // The classic two-variable swap is period-2 `Periodic`, and the
    // mixed-geometric promotion must not disturb it.
    let analysis = analyze_source(
        "func f() { a = 7 b = 9 L1: for i = 1 to 10 { ARR[a] = i t = a a = b b = t } }",
    )
    .unwrap();
    let l = analysis.loop_by_label("L1").unwrap();
    let info = analysis.info(l);
    let periodic = info
        .classes
        .values()
        .filter(|c| matches!(c, Class::Periodic(_)))
        .count();
    assert!(periodic >= 2, "both swapped φs stay periodic");
    assert!(
        !info
            .classes
            .values()
            .any(|c| matches!(c, Class::MixedGeometric(_))),
        "no mixed-geometric leakage into the swap"
    );
}

#[test]
fn true_mixed_recurrence_is_promoted_with_exact_parameters() {
    // The positive case alongside the boundaries: v ← 2v + 1 from 4 is
    // 5·2^h − 1 (offset = 1/(1−2) = −1, base = 4 − (−1) = 5).
    let class =
        header_phi_class("func f() { v = 4 L1: for i = 1 to 10 { v = v * 2 + 1 ARR[v] = i } }");
    let Class::MixedGeometric(mg) = class else {
        panic!("v ← 2v + 1 must promote, got {class:?}");
    };
    assert_eq!(mg.ratio, Rational::from_integer(2));
    assert_eq!(mg.base.constant_value().unwrap(), Rational::from_integer(5));
    assert_eq!(
        mg.offset.constant_value().unwrap(),
        Rational::from_integer(-1)
    );
    assert_eq!(mg.step().unwrap().constant_value().unwrap(), Rational::ONE);
}
