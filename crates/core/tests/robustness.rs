//! Robustness: resource budgets degrade gracefully to `Unknown` with a
//! recorded reason, pathological inputs never panic, and non-cacheable
//! (nondeterministically budget-limited) results stay out of the
//! structural cache.

use biv_core::{
    analyze_batch, analyze_protected, analyze_source, analyze_with, AnalysisConfig, BatchOptions,
    Budget, BudgetBreach, Class, TripCount,
};
use biv_ir::parser::parse_program;

/// Figure-14-style quadratic: `j` accumulates the linear `i`, so its
/// closed form has polynomial order 2.
const QUADRATIC: &str = "func f(n) { j = 1 L14: for i = 1 to n { j = j + i A[j] = i } }\n";

fn config_with(budget: Budget) -> AnalysisConfig {
    AnalysisConfig {
        budget,
        ..AnalysisConfig::default()
    }
}

fn analyze_quadratic(budget: Budget) -> biv_core::Analysis {
    let program = parse_program(QUADRATIC).expect("parses");
    analyze_with(&program.functions[0], config_with(budget))
}

fn class_of<'a>(analysis: &'a biv_core::Analysis, name: &str) -> &'a Class {
    let value = analysis
        .ssa()
        .value_by_name(name)
        .unwrap_or_else(|| panic!("no value named {name}"));
    let (_, class) = analysis
        .class_of(value)
        .unwrap_or_else(|| panic!("{name} has no class"));
    class
}

#[test]
fn unlimited_budget_records_no_breaches() {
    let analysis = analyze_quadratic(Budget::UNLIMITED);
    assert!(analysis.budget_breaches().is_empty());
    let Class::Induction(cf) = class_of(&analysis, "j3") else {
        panic!("expected a quadratic induction variable");
    };
    assert_eq!(cf.degree(), 2);
}

#[test]
fn order_cap_degrades_to_unknown_with_recorded_breach() {
    let analysis = analyze_quadratic(Budget {
        max_order: Some(1),
        ..Budget::UNLIMITED
    });
    assert_eq!(class_of(&analysis, "j3"), &Class::Unknown);
    assert_eq!(
        analysis.budget_breaches(),
        &[BudgetBreach::PolyOrder { order: 2, limit: 1 }]
    );
    assert!(analysis.budget_breaches()[0].is_deterministic());
    // The linear `i` is below the cap and keeps its classification.
    assert!(matches!(class_of(&analysis, "i2"), Class::Induction(_)));
}

#[test]
fn region_node_cap_degrades_the_whole_loop() {
    let analysis = analyze_quadratic(Budget {
        max_region_nodes: Some(1),
        ..Budget::UNLIMITED
    });
    assert_eq!(class_of(&analysis, "j3"), &Class::Unknown);
    assert_eq!(class_of(&analysis, "i2"), &Class::Unknown);
    assert!(matches!(
        analysis.budget_breaches(),
        [BudgetBreach::RegionNodes { limit: 1, .. }]
    ));
}

#[test]
fn scc_cap_degrades_cyclic_regions_only() {
    // Both `i` and `j` live in 2-member cyclic SCRs; a cap of 1 forces
    // them to Unknown but leaves acyclic values (the invariant `n`)
    // alone.
    let analysis = analyze_quadratic(Budget {
        max_scc: Some(1),
        ..Budget::UNLIMITED
    });
    assert_eq!(class_of(&analysis, "j3"), &Class::Unknown);
    assert_eq!(class_of(&analysis, "i2"), &Class::Unknown);
    assert!(analysis
        .budget_breaches()
        .iter()
        .all(|b| matches!(b, BudgetBreach::SccSize { limit: 1, .. })));
    assert!(!analysis.budget_breaches().is_empty());
}

#[test]
fn zero_deadline_degrades_and_is_marked_nondeterministic() {
    let analysis = analyze_quadratic(Budget {
        time_ms: Some(0),
        ..Budget::UNLIMITED
    });
    assert_eq!(class_of(&analysis, "j3"), &Class::Unknown);
    let breaches = analysis.budget_breaches();
    assert!(breaches.contains(&BudgetBreach::Deadline), "{breaches:?}");
    assert!(breaches.iter().any(|b| !b.is_deterministic()));
    for (_, info) in analysis.loops() {
        assert_eq!(info.trip_count, TripCount::Unknown);
    }
}

#[test]
fn budget_parse_roundtrips_and_rejects_garbage() {
    let budget = Budget::parse("time=5, nodes=100, scc=10, order=3").unwrap();
    assert_eq!(budget.time_ms, Some(5));
    assert_eq!(budget.max_region_nodes, Some(100));
    assert_eq!(budget.max_scc, Some(10));
    assert_eq!(budget.max_order, Some(3));
    assert_eq!(Budget::parse("").unwrap(), Budget::UNLIMITED);
    assert!(Budget::parse("order=-1").is_err());
    assert!(Budget::parse("speed=9").is_err());
    assert!(Budget::parse("order").is_err());
}

#[test]
fn deterministic_breaches_are_cacheable_deadline_is_not() {
    use biv_core::{analyze_batch_with_cache, StructuralCache};
    let program = parse_program(QUADRATIC).expect("parses");
    let funcs = &program.functions[..1];

    // An order-capped summary is a pure function of the input, so a
    // second batch over the same structure is served from the cache.
    let capped = BatchOptions {
        jobs: 1,
        config: config_with(Budget {
            max_order: Some(1),
            ..Budget::UNLIMITED
        }),
        ..BatchOptions::default()
    };
    let mut cache = StructuralCache::new(BatchOptions::default().cache_capacity);
    analyze_batch_with_cache(funcs, &capped, &mut cache);
    let report = analyze_batch_with_cache(funcs, &capped, &mut cache);
    assert_eq!((report.stats.misses, report.stats.hits), (0, 1));

    // A deadline-limited summary might differ on a faster machine, so
    // it is never retained: the second batch recomputes.
    let deadline = BatchOptions {
        jobs: 1,
        config: config_with(Budget {
            time_ms: Some(0),
            ..Budget::UNLIMITED
        }),
        ..BatchOptions::default()
    };
    let mut cache = StructuralCache::new(BatchOptions::default().cache_capacity);
    analyze_batch_with_cache(funcs, &deadline, &mut cache);
    let report = analyze_batch_with_cache(funcs, &deadline, &mut cache);
    assert_eq!((report.stats.misses, report.stats.hits), (1, 0));
}

#[test]
fn budget_breaches_render_in_batch_summaries() {
    let program = parse_program(QUADRATIC).expect("parses");
    let opts = BatchOptions {
        jobs: 1,
        config: config_with(Budget {
            max_order: Some(1),
            ..Budget::UNLIMITED
        }),
        ..BatchOptions::default()
    };
    let report = analyze_batch(&program.functions, &opts);
    let rendered = report.functions[0].render();
    assert!(
        rendered.contains("budget: polynomial order 2 (limit 1)"),
        "breach line missing from:\n{rendered}"
    );
}

#[test]
fn extreme_constants_do_not_panic() {
    // Near-i64 bounds and steps: trip counts either come out exact in
    // i128 or degrade to Unknown — never a checked-arithmetic panic.
    let sources = [
        "func a() { j = 0 L1: for i = 1 to 9000000000000000000 { j = j + 1 } }\n",
        "func b() { j = 9000000000000000000 L1: for i = 1 to 10 { j = j + 9000000000000000000 } }\n",
        "func c(n) { j = 1 L1: loop { j = j * 3 if j > 9000000000000000000 { break } } }\n",
        "func d() { j = -9000000000000000000 L1: for i = -9000000000000000000 to 9000000000000000000 { j = j + 3 } }\n",
    ];
    for src in sources {
        let analysis =
            analyze_source(src).unwrap_or_else(|e| panic!("analysis failed on {src:?}: {e}"));
        for (_, info) in analysis.loops() {
            // Force the lazy display paths too — they walk closed forms.
            let _ = format!("{}", info.trip_count);
        }
    }
}

#[test]
fn checked_rational_ceil_handles_the_i128_edge() {
    use biv_algebra::Rational;
    let r = |n, d| Rational::new(n, d).unwrap();
    assert_eq!(r(7, 2).checked_ceil(), Some(4));
    assert_eq!(r(-7, 2).checked_ceil(), Some(-3));
    assert_eq!(r(6, 3).checked_ceil(), Some(2));
    // `ceil` would negate i128::MIN and abort; the checked variant
    // reports the edge instead.
    assert_eq!(Rational::from_integer(i128::MIN).checked_ceil(), None);
}

#[test]
fn analyze_protected_matches_plain_analysis_when_nothing_panics() {
    let program = parse_program(QUADRATIC).expect("parses");
    let protected = analyze_protected(&program.functions[0], AnalysisConfig::default())
        .expect("no panic, no error");
    let plain = analyze_with(&program.functions[0], AnalysisConfig::default());
    assert_eq!(
        protected.describe_by_name("j3"),
        plain.describe_by_name("j3")
    );
    assert!(protected.budget_breaches().is_empty());
}
