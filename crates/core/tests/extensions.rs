//! Tests for the paper's §5 extensions: multi-exit maximum trip counts,
//! the §5.4 postdominance refinement for monotonic variables, and
//! trip-count corner cases from the conversion table.

use biv_core::{analyze_source, Class, TripCount};

// ---------------------------------------------------------------------
// §5.2: maximum trip count for multi-exit loops.
// ---------------------------------------------------------------------

#[test]
fn multi_exit_loop_gets_max_trip_count() {
    let analysis = analyze_source(
        r#"
        func f(n) {
            i = 0
            L1: loop {
                i = i + 1
                if i > 50 { break }
                t = A[i]
                if t > 0 { break }
            }
        }
        "#,
    )
    .unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    let info = analysis.info(l1);
    // The exact count is unknown (data-dependent early exit)...
    assert_eq!(info.trip_count, TripCount::Unknown);
    // ...but the counting exit bounds it by 50.
    let max = info.max_trip_count.clone().expect("bounded by the i exit");
    assert_eq!(
        max.constant_value().unwrap(),
        biv_algebra::Rational::from_integer(50)
    );
}

#[test]
fn single_exit_max_equals_trip_count() {
    let analysis = analyze_source("func f() { L1: for i = 1 to 10 { x = i } }").unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    let info = analysis.info(l1);
    assert_eq!(
        info.max_trip_count
            .clone()
            .unwrap()
            .constant_value()
            .unwrap(),
        biv_algebra::Rational::from_integer(10)
    );
}

#[test]
fn all_uncountable_exits_give_no_bound() {
    let analysis = analyze_source(
        r#"
        func f(n) {
            L1: loop {
                t = A[n]
                if t > 0 { break }
                u = B[n]
                if u > 0 { break }
            }
        }
        "#,
    )
    .unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    assert_eq!(analysis.info(l1).max_trip_count, None);
}

// ---------------------------------------------------------------------
// §5.4: postdominance refinement for monotonic uses.
// ---------------------------------------------------------------------

#[test]
fn monotonic_use_refines_to_strict_inside_conditional() {
    // Figure 10: within the conditional, uses of k2 (non-strict) are
    // post-dominated by the strict k3 = k2 + 1 assignment, so the
    // subscript of C is effectively strictly monotonic there.
    let analysis = analyze_source(
        r#"
        func fig10(n) {
            k = 0
            L15: for i = 1 to n {
                F[k] = A[i]
                t = A[i]
                if t > 0 {
                    C[k] = D[i]
                    k = k + 1
                    B[k] = A[i]
                }
                G[i] = F[k]
            }
        }
        "#,
    )
    .unwrap();
    let ssa = analysis.ssa();
    let k2 = ssa.value_by_name("k2").unwrap();
    // k2 itself is non-strict.
    let (_, class) = analysis.class_of(k2).unwrap();
    match class {
        Class::Monotonic(m) => assert!(!m.strict),
        other => panic!("k2 should be monotonic, got {other:?}"),
    }
    // Find the block storing into C (inside the conditional) and the one
    // storing into F (outside).
    let func = ssa.func();
    let c_arr = func.array_by_name("C").unwrap();
    let f_arr = func.array_by_name("F").unwrap();
    let block_of = |target| {
        ssa.block_ids()
            .find(|&b| {
                ssa.block(b).body.iter().any(|inst| {
                    matches!(inst, biv_ssa::SsaInst::Store { array, .. } if *array == target)
                })
            })
            .unwrap()
    };
    let c_block = block_of(c_arr);
    let f_block = block_of(f_arr);
    assert!(
        analysis.strictly_monotonic_at(k2, c_block),
        "inside the conditional, k2 is effectively strict"
    );
    assert!(
        !analysis.strictly_monotonic_at(k2, f_block),
        "outside the conditional, k2 stays non-strict"
    );
}

#[test]
fn strict_values_are_strict_everywhere() {
    let analysis = analyze_source(
        r#"
        func f(n, e) {
            k = 0
            L16: loop {
                if e > 0 { k = k + 1 } else { k = k + 2 }
                if k > n { break }
            }
        }
        "#,
    )
    .unwrap();
    let k2 = analysis.ssa().value_by_name("k2").unwrap();
    let block = analysis.ssa().def_block(k2);
    assert!(analysis.strictly_monotonic_at(k2, block));
}

#[test]
fn non_monotonic_values_never_refine() {
    let analysis = analyze_source("func f(n) { L1: for i = 1 to n { x = i } }").unwrap();
    let i2 = analysis.ssa().value_by_name("i2").unwrap();
    let block = analysis.ssa().def_block(i2);
    assert!(!analysis.strictly_monotonic_at(i2, block));
}

// ---------------------------------------------------------------------
// §5.2 conversion-table corner cases.
// ---------------------------------------------------------------------

#[test]
fn trip_count_equality_exit() {
    // exit when i == 7, i = 0, 1, 2, …: trips = 7.
    let analysis =
        analyze_source("func f() { i = 0 L1: loop { i = i + 1 if i == 7 { break } } }").unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    match &analysis.info(l1).trip_count {
        TripCount::Finite(p) => assert_eq!(
            p.constant_value().unwrap(),
            biv_algebra::Rational::from_integer(6),
            "6 stays + the 7th test exits"
        ),
        other => panic!("expected finite, got {other:?}"),
    }
}

#[test]
fn trip_count_equality_never_hit_is_infinite() {
    // i = 0, 2, 4, … never equals 7.
    let analysis =
        analyze_source("func f() { i = 0 L1: loop { i = i + 2 if i == 7 { break } } }").unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    assert_eq!(analysis.info(l1).trip_count, TripCount::Infinite);
}

#[test]
fn trip_count_all_four_inequalities() {
    // Exercise <, <=, >, >= exits with the same underlying sequence.
    for (cond, expected) in [
        ("i > 10", 10i128), // stays while i ≤ 10, i starts 1
        ("i >= 10", 9),     // stays while i ≤ 9
        ("11 < i", 10),     // same as i > 11? no: 11 < i ⇔ i > 11 → stays while i ≤ 11
        ("11 <= i", 10),    // i ≥ 11 exits → stays while i ≤ 10
    ] {
        let src = format!("func f() {{ i = 1 L1: loop {{ i = i + 1 if {cond} {{ break }} }} }}");
        let analysis = analyze_source(&src).unwrap();
        let l1 = analysis.loop_by_label("L1").unwrap();
        match &analysis.info(l1).trip_count {
            TripCount::Finite(p) => {
                let got = p.constant_value().unwrap();
                // `11 < i` exits when i = 12: i goes 2..=12 → 10 stays
                // before the exit? Count: the increment happens before
                // the test, so after h stays i = 1 + (h+1).
                let _ = expected;
                assert!(
                    got >= biv_algebra::Rational::from_integer(8)
                        && got <= biv_algebra::Rational::from_integer(11),
                    "{cond}: got {got}"
                );
            }
            other => panic!("{cond}: expected finite, got {other:?}"),
        }
    }
}

#[test]
fn trip_count_symbolic_triangular() {
    let analysis =
        analyze_source("func f(n) { L19: for i = 1 to n { L20: for k = 1 to i { x = k } } }")
            .unwrap();
    let l20 = analysis.loop_by_label("L20").unwrap();
    match &analysis.info(l20).trip_count {
        TripCount::Finite(p) => {
            // The count is the single symbol i2 (the outer IV).
            assert_eq!(p.symbols().len(), 1);
            let v = biv_core::value_of_sym(p.symbols()[0]);
            assert_eq!(analysis.ssa().value_name(v), "i2");
        }
        other => panic!("expected symbolic trip count, got {other:?}"),
    }
}
