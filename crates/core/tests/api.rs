//! API surface tests: `Analysis` queries, display rendering, config
//! gating, and error paths.

use biv_core::{analyze_source, analyze_with, AnalysisConfig, AnalyzeError, Class};
use biv_ir::parser::parse_program;

#[test]
fn analyze_source_rejects_bad_input() {
    match analyze_source("func f( {") {
        Err(AnalyzeError::Parse(_)) => {}
        other => panic!("expected parse error, got {other:?}"),
    }
    match analyze_source("func a() { x = 1 } func b() { y = 2 }") {
        Err(AnalyzeError::NotOneFunction(2)) => {}
        other => panic!("expected NotOneFunction, got {other:?}"),
    }
}

#[test]
fn describe_by_name_unknown_is_none() {
    let analysis = analyze_source("func f(n) { L1: for i = 1 to n { x = i } }").unwrap();
    assert!(analysis.describe_by_name("zzz9").is_none());
}

#[test]
fn loop_by_label_and_info() {
    let analysis =
        analyze_source("func f(n) { L1: for i = 1 to n { L2: for j = 1 to n { x = i + j } } }")
            .unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    let l2 = analysis.loop_by_label("L2").unwrap();
    assert_ne!(l1, l2);
    assert_eq!(analysis.info(l1).name, "L1");
    assert_eq!(analysis.info(l2).name, "L2");
    assert!(analysis.loop_by_label("L99").is_none());
    // Inner-to-outer iteration order.
    let order: Vec<String> = analysis.loops().map(|(_, i)| i.name.clone()).collect();
    assert_eq!(order, vec!["L2", "L1"]);
}

#[test]
fn values_outside_loops_have_no_class() {
    let analysis = analyze_source("func f(n) { x = n + 1 }").unwrap();
    let x1 = analysis.ssa().value_by_name("x1").unwrap();
    assert!(analysis.class_of(x1).is_none());
    assert!(analysis.describe(x1).is_none());
}

#[test]
fn display_renders_all_class_shapes() {
    let analysis = analyze_source(
        r#"
        func zoo(n, e, w0) {
            lin = 0
            geo = 1
            poly = 0
            wrap = w0
            mono = 0
            pa = 1
            pb = 2
            inv = n
            L1: for i = 1 to n {
                lin = lin + 3
                A[lin] = i
                poly = poly + i
                A[poly] = i
                geo = geo * 2
                A[geo] = i
                A[wrap] = i
                wrap = i
                t = A[i]
                if t > 0 { mono = mono + 1 B[mono] = t }
                A[pa] = i
                pt = pa
                pa = pb
                pb = pt
                x = inv + 1
                A[x] = i
            }
        }
        "#,
    )
    .unwrap();
    let descr = |name: &str| analysis.describe_by_name(name).unwrap();
    assert!(descr("lin2").starts_with("(L1,"), "{}", descr("lin2"));
    assert!(
        descr("poly2").matches(", ").count() >= 2,
        "{}",
        descr("poly2")
    );
    assert!(descr("geo2").contains("2^h"), "{}", descr("geo2"));
    assert!(
        descr("wrap2").starts_with("wrap-around"),
        "{}",
        descr("wrap2")
    );
    assert!(
        descr("mono2").starts_with("monotonic"),
        "{}",
        descr("mono2")
    );
    assert!(descr("pa2").starts_with("periodic"), "{}", descr("pa2"));
    assert!(descr("x1").starts_with("invariant"), "{}", descr("x1"));
}

#[test]
fn config_gates_disable_classes() {
    let program = parse_program(
        r#"
        func f(n, e, w0) {
            poly = 0
            wrap = w0
            mono = 0
            pa = 1
            pb = 2
            L1: for i = 1 to n {
                poly = poly + i
                A[poly] = i
                A[wrap] = i
                wrap = i
                t = A[i]
                if t > 0 { mono = mono + 1 B[mono] = t }
                A[pa] = i
                pt = pa
                pa = pb
                pb = pt
            }
        }
        "#,
    )
    .unwrap();
    let func = &program.functions[0];
    let count = |config: AnalysisConfig, pred: fn(&Class) -> bool| -> usize {
        let analysis = analyze_with(func, config);
        analysis
            .loops()
            .flat_map(|(_, info)| info.classes.values())
            .filter(|c| pred(c))
            .count()
    };
    let is_poly =
        |c: &Class| matches!(c, Class::Induction(cf) if cf.degree() >= 2 || !cf.geo.is_empty());
    let is_wrap = |c: &Class| matches!(c, Class::WrapAround { .. });
    let is_periodic = |c: &Class| matches!(c, Class::Periodic(_));
    let is_mono = |c: &Class| matches!(c, Class::Monotonic(_));

    assert!(count(AnalysisConfig::full(), is_poly) > 0);
    assert_eq!(
        count(
            AnalysisConfig {
                nonlinear: false,
                ..AnalysisConfig::full()
            },
            is_poly
        ),
        0
    );
    assert!(count(AnalysisConfig::full(), is_wrap) > 0);
    assert_eq!(
        count(
            AnalysisConfig {
                wraparound: false,
                ..AnalysisConfig::full()
            },
            is_wrap
        ),
        0
    );
    assert!(count(AnalysisConfig::full(), is_periodic) > 0);
    assert_eq!(
        count(
            AnalysisConfig {
                periodic: false,
                ..AnalysisConfig::full()
            },
            is_periodic
        ),
        0
    );
    assert!(count(AnalysisConfig::full(), is_mono) > 0);
    assert_eq!(
        count(
            AnalysisConfig {
                monotonic: false,
                ..AnalysisConfig::full()
            },
            is_mono
        ),
        0
    );
}

#[test]
fn exit_values_materialized_and_queryable() {
    let analysis = analyze_source(
        r#"
        func f(n) {
            s = 0
            L1: for i = 1 to 10 {
                s = s + 2
            }
            y = s + 1
        }
        "#,
    )
    .unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    let info = analysis.info(l1);
    // s's exit value (20) was materialized because y uses s after the
    // loop.
    let found = info
        .exit_values
        .values()
        .any(|p| p.constant_value() == Some(biv_algebra::Rational::from_integer(20)));
    assert!(found, "exit value 20 recorded: {:?}", info.exit_values);
    assert_eq!(info.synthetics.len(), info.exit_values.len());
}

#[test]
fn unknown_classes_for_data_dependent_values() {
    let analysis =
        analyze_source("func f(n) { s = 0 L1: for i = 1 to n { s = s + A[i] } }").unwrap();
    // s accumulates array loads: unknown.
    let l1 = analysis.loop_by_label("L1").unwrap();
    let info = analysis.info(l1);
    let s_var = analysis.ssa().func().var_by_name("s").unwrap();
    let all_unknown = info
        .classes
        .iter()
        .filter(|(v, _)| analysis.ssa().values[*v].var == Some(s_var))
        .all(|(_, c)| matches!(c, Class::Unknown));
    assert!(all_unknown);
}

#[test]
fn division_and_exponent_edge_cases() {
    // x = i / 2 (integer division): unknown. y = 2 ^ i: geometric.
    let analysis = analyze_source(
        r#"
        func f(n) {
            L1: for i = 1 to n {
                x = i / 2
                A[x] = i
                y = 2 ^ i
                A[y] = i
            }
        }
        "#,
    )
    .unwrap();
    let x1 = analysis.ssa().value_by_name("x1").unwrap();
    assert!(matches!(analysis.class_of(x1).unwrap().1, Class::Unknown));
    let y1 = analysis.ssa().value_by_name("y1").unwrap();
    match analysis.class_of(y1).unwrap().1 {
        Class::Induction(cf) => {
            assert_eq!(cf.geo.len(), 1);
            assert_eq!(cf.geo[0].0, biv_algebra::Rational::from_integer(2));
            // 2^i with i = 1 + h: coefficient 2.
            assert_eq!(
                cf.geo[0].1.constant_value().unwrap(),
                biv_algebra::Rational::from_integer(2)
            );
        }
        other => panic!("2^i should be geometric, got {other:?}"),
    }
}

#[test]
fn negation_classifies() {
    let analysis = analyze_source("func f(n) { L1: for i = 1 to n { x = -i A[x] = i } }").unwrap();
    let x1 = analysis.ssa().value_by_name("x1").unwrap();
    match analysis.class_of(x1).unwrap().1 {
        Class::Induction(cf) => {
            assert!(cf.is_linear());
            assert_eq!(
                cf.coeffs[1].constant_value().unwrap(),
                biv_algebra::Rational::from_integer(-1)
            );
        }
        other => panic!("-i should be linear, got {other:?}"),
    }
}

#[test]
fn mul_of_two_ivs_is_quadratic() {
    let analysis =
        analyze_source("func f(n) { L1: for i = 1 to n { x = i * i A[x] = i } }").unwrap();
    let x1 = analysis.ssa().value_by_name("x1").unwrap();
    match analysis.class_of(x1).unwrap().1 {
        Class::Induction(cf) => assert_eq!(cf.degree(), 2),
        other => panic!("i*i should be quadratic, got {other:?}"),
    }
}

#[test]
fn symbolic_step_stays_linear() {
    // The paper's L3/L4: step varies in the outer context but is
    // invariant in the loop — still a linear IV.
    let analysis =
        analyze_source("func f(n, s) { x = 0 L1: loop { x = x + s A[x] = x if x > n { break } } }")
            .unwrap();
    let x2 = analysis.ssa().value_by_name("x2").unwrap();
    match analysis.class_of(x2).unwrap().1 {
        Class::Induction(cf) => {
            assert!(cf.is_linear());
            assert!(!cf.coeffs[1].is_constant());
        }
        other => panic!("x should be linear with symbolic step, got {other:?}"),
    }
}
