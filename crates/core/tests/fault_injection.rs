//! Panic isolation under deterministic fault injection: an injected
//! panic inside analysis becomes a structured error, never poisons the
//! structural cache or thread-local scratch, and disappears entirely
//! once the plan is uninstalled.
//!
//! Lives in its own integration-test binary because the fault plan is
//! process-global: these tests must not share a process with tests that
//! assume injection is off.

#![cfg(feature = "fault-injection")]

use biv_core::{
    analyze_batch_with_cache, analyze_protected, AnalysisConfig, BatchOptions, StructuralCache,
};
use biv_ir::parser::parse_program;

use std::sync::Mutex;

/// Serializes tests: the fault plan is one per process.
static GATE: Mutex<()> = Mutex::new(());

const SRC: &str = "func f(n) { j = 1 L14: for i = 1 to n { j = j + i A[j] = i } }\n";

/// Finds a seed whose very first `analyze.panic` draw fires (rate is
/// 256/1024, so one is always nearby).
fn arming_seed() -> u64 {
    for seed in 0..64 {
        biv_faults::install(seed, biv_faults::Profile::Analyze);
        let fires = biv_faults::fire("analyze.panic");
        biv_faults::uninstall();
        if fires {
            return seed;
        }
    }
    panic!("no arming seed in 0..64 at a 1/4 fire rate");
}

#[test]
fn injected_panic_becomes_structured_error_and_analysis_recovers() {
    let _gate = GATE.lock().unwrap();
    let program = parse_program(SRC).expect("parses");
    let func = &program.functions[0];
    let baseline = analyze_protected(func, AnalysisConfig::default()).expect("clean run succeeds");

    let seed = arming_seed();
    biv_faults::install(seed, biv_faults::Profile::Analyze);
    let err = analyze_protected(func, AnalysisConfig::default())
        .expect_err("the armed first draw must panic");
    assert!(
        err.to_string().contains("injected fault: analyze.panic"),
        "panic payload should surface in the error: {err}"
    );
    biv_faults::uninstall();

    // The catch path reset the thread-local scratch: the same thread
    // immediately produces the exact clean-run result again.
    let recovered = analyze_protected(func, AnalysisConfig::default()).expect("recovers");
    assert_eq!(
        recovered.describe_by_name("j3"),
        baseline.describe_by_name("j3")
    );
}

#[test]
fn panicked_summaries_render_an_error_line_and_stay_out_of_the_cache() {
    let _gate = GATE.lock().unwrap();
    let program = parse_program(SRC).expect("parses");
    let funcs = &program.functions[..1];
    let opts = BatchOptions {
        jobs: 1,
        ..BatchOptions::default()
    };

    let seed = arming_seed();
    biv_faults::install(seed, biv_faults::Profile::Analyze);
    let mut cache = StructuralCache::new(opts.cache_capacity);
    let report = analyze_batch_with_cache(funcs, &opts, &mut cache);
    biv_faults::uninstall();

    let rendered = report.functions[0].render();
    assert!(
        rendered.contains("error: internal:"),
        "panicked summary should carry an error line:\n{rendered}"
    );
    assert_eq!(cache.len(), 0, "a panicked summary must not be retained");

    // With the plan gone, the same cache serves a clean run: the poison
    // never happened.
    let report = analyze_batch_with_cache(funcs, &opts, &mut cache);
    let rendered = report.functions[0].render();
    assert!(
        !rendered.contains("error:"),
        "clean rerun should carry no error:\n{rendered}"
    );
    assert_eq!((report.stats.misses, report.stats.hits), (1, 0));
    assert_eq!(cache.len(), 1);
}
