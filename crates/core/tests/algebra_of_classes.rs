//! Direct tests of the §5.1 operator algebra over classes
//! (`combine_classes`, `negate_class`, `class_of_sympoly`), independent of
//! any particular program.

use biv_algebra::{Rational, SymPoly};
use biv_core::{combine_classes, negate_class, Class, ClosedForm, Direction, Monotonic};
use biv_ir::loops::Loop;
use biv_ir::{BinOp, EntityId};

fn lp() -> Loop {
    Loop::from_index(0)
}

fn c(v: i128) -> SymPoly {
    SymPoly::from_integer(v)
}

fn linear(init: i128, step: i128) -> Class {
    Class::Induction(ClosedForm::linear(lp(), c(init), c(step)))
}

fn inv(v: i128) -> Class {
    Class::Invariant(c(v))
}

fn mono(dir: Direction, strict: bool) -> Class {
    Class::Monotonic(Monotonic {
        loop_id: lp(),
        direction: dir,
        strict,
        family: None,
    })
}

#[test]
fn invariant_arithmetic_folds() {
    assert_eq!(combine_classes(lp(), BinOp::Add, &inv(2), &inv(3)), inv(5));
    assert_eq!(combine_classes(lp(), BinOp::Sub, &inv(2), &inv(3)), inv(-1));
    assert_eq!(combine_classes(lp(), BinOp::Mul, &inv(2), &inv(3)), inv(6));
    assert_eq!(combine_classes(lp(), BinOp::Div, &inv(6), &inv(3)), inv(2));
    // Inexact integer division does not fold.
    assert_eq!(
        combine_classes(lp(), BinOp::Div, &inv(7), &inv(3)),
        Class::Unknown
    );
    assert_eq!(combine_classes(lp(), BinOp::Exp, &inv(2), &inv(5)), inv(32));
    assert_eq!(
        combine_classes(lp(), BinOp::Exp, &inv(2), &inv(-1)),
        Class::Unknown
    );
}

#[test]
fn linear_plus_linear_adds_componentwise() {
    let out = combine_classes(lp(), BinOp::Add, &linear(1, 2), &linear(3, 4));
    assert_eq!(out, linear(4, 6));
}

#[test]
fn linear_times_linear_is_quadratic() {
    // (1 + 2h)(3 + 4h) = 3 + 10h + 8h²
    let out = combine_classes(lp(), BinOp::Mul, &linear(1, 2), &linear(3, 4));
    match out {
        Class::Induction(cf) => {
            assert_eq!(cf.degree(), 2);
            assert_eq!(cf.coeffs[0], c(3));
            assert_eq!(cf.coeffs[1], c(10));
            assert_eq!(cf.coeffs[2], c(8));
        }
        other => panic!("expected quadratic, got {other:?}"),
    }
}

#[test]
fn linear_times_zero_collapses_to_invariant() {
    let out = combine_classes(lp(), BinOp::Mul, &linear(1, 2), &inv(0));
    assert_eq!(out, inv(0));
}

#[test]
fn geometric_exponent_rule() {
    // 2^(1 + 3h) = 2 · 8^h
    let out = combine_classes(lp(), BinOp::Exp, &inv(2), &linear(1, 3));
    match out {
        Class::Induction(cf) => {
            assert_eq!(cf.geo.len(), 1);
            assert_eq!(cf.geo[0].0, Rational::from_integer(8));
            assert_eq!(cf.geo[0].1, c(2));
        }
        other => panic!("expected geometric, got {other:?}"),
    }
}

#[test]
fn monotonic_rules() {
    use Direction::*;
    // monotonic + invariant keeps monotonic.
    assert_eq!(
        combine_classes(lp(), BinOp::Add, &mono(Increasing, true), &inv(7)),
        mono(Increasing, true)
    );
    // same-direction monotonics combine, strictness is sticky.
    assert_eq!(
        combine_classes(
            lp(),
            BinOp::Add,
            &mono(Increasing, false),
            &mono(Increasing, true)
        ),
        mono(Increasing, true)
    );
    // opposite directions are unknown.
    assert_eq!(
        combine_classes(
            lp(),
            BinOp::Add,
            &mono(Increasing, false),
            &mono(Decreasing, false)
        ),
        Class::Unknown
    );
    // monotonic + nondecreasing IV stays monotonic.
    assert_eq!(
        combine_classes(lp(), BinOp::Add, &mono(Increasing, true), &linear(0, 3)),
        mono(Increasing, true)
    );
    // monotonic + decreasing IV is unknown.
    assert_eq!(
        combine_classes(lp(), BinOp::Add, &mono(Increasing, true), &linear(0, -3)),
        Class::Unknown
    );
    // scaling by a negative constant flips direction.
    assert_eq!(
        combine_classes(lp(), BinOp::Mul, &mono(Increasing, true), &inv(-2)),
        mono(Decreasing, true)
    );
}

#[test]
fn negation_rules() {
    assert_eq!(negate_class(lp(), &inv(5)), inv(-5));
    assert_eq!(negate_class(lp(), &linear(1, 2)), linear(-1, -2));
    assert_eq!(
        negate_class(lp(), &mono(Direction::Increasing, true)),
        mono(Direction::Decreasing, true)
    );
    assert_eq!(negate_class(lp(), &Class::Unknown), Class::Unknown);
}

#[test]
fn subtraction_via_negation() {
    let out = combine_classes(lp(), BinOp::Sub, &linear(5, 3), &linear(1, 1));
    assert_eq!(out, linear(4, 2));
    // Equal forms cancel to an invariant.
    let out = combine_classes(lp(), BinOp::Sub, &linear(5, 3), &linear(2, 3));
    assert_eq!(out, inv(3));
}

#[test]
fn unknown_is_absorbing() {
    for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Exp] {
        assert_eq!(
            combine_classes(lp(), op, &Class::Unknown, &linear(0, 1)),
            Class::Unknown,
            "{op:?}"
        );
    }
}

#[test]
fn geo_plus_geo_merges_bases() {
    let g = |base: i128, coeff: i128| {
        Class::Induction(ClosedForm::from_parts(
            lp(),
            vec![SymPoly::zero()],
            vec![(Rational::from_integer(base), c(coeff))],
        ))
    };
    // 3·2^h + 4·2^h = 7·2^h
    match combine_classes(lp(), BinOp::Add, &g(2, 3), &g(2, 4)) {
        Class::Induction(cf) => {
            assert_eq!(cf.geo.len(), 1);
            assert_eq!(cf.geo[0].1, c(7));
        }
        other => panic!("{other:?}"),
    }
    // 3·2^h · 4·3^h = 12·6^h
    match combine_classes(lp(), BinOp::Mul, &g(2, 3), &g(3, 4)) {
        Class::Induction(cf) => {
            assert_eq!(cf.geo.len(), 1);
            assert_eq!(cf.geo[0].0, Rational::from_integer(6));
            assert_eq!(cf.geo[0].1, c(12));
        }
        other => panic!("{other:?}"),
    }
}
