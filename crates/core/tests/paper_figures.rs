//! End-to-end classification of the paper's worked examples (Figures
//! 1–10, loops L7–L24). Each test parses the example loop, runs the full
//! analysis, and checks the classification tuples the paper prints.

use biv_core::{analyze_source, Analysis, Class, Direction, TripCount};

fn class_by_name(analysis: &Analysis, name: &str) -> Class {
    let value = analysis
        .ssa()
        .value_by_name(name)
        .unwrap_or_else(|| panic!("no SSA value named `{name}`"));
    analysis
        .class_of(value)
        .unwrap_or_else(|| panic!("`{name}` not classified"))
        .1
        .clone()
}

fn assert_linear(analysis: &Analysis, name: &str, init: &str, step: &str) {
    match class_by_name(analysis, name) {
        Class::Induction(cf) => {
            assert!(cf.is_linear(), "`{name}` should be linear, got {cf:?}");
            let rendered = analysis.describe_by_name(name).unwrap();
            let expected_suffix = format!(", {init}, {step})");
            assert!(
                rendered.ends_with(&expected_suffix),
                "`{name}`: expected `(L, {init}, {step})`, got `{rendered}`"
            );
        }
        other => panic!("`{name}` should be a linear IV, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Figure 1 / loop L7: mutually-defined basic linear induction variables.
// ---------------------------------------------------------------------

#[test]
fn fig1_l7_linear_family() {
    let analysis = analyze_source(
        r#"
        func fig1(n, c, k) {
            j = n
            L7: loop {
                i = j + c
                j = i + k
                if j > 1000 { break }
            }
        }
        "#,
    )
    .unwrap();
    // Paper: i3 = (L7, n1+c1, c1+k1); j2 = (L7, n1, c1+k1);
    //        j3 = (L7, n1+c1+k1, c1+k1).
    assert_linear(&analysis, "j2", "n1", "c1 + k1");
    assert_linear(&analysis, "i1", "n1 + c1", "c1 + k1");
    assert_linear(&analysis, "j3", "n1 + c1 + k1", "c1 + k1");
}

// ---------------------------------------------------------------------
// Figure 3 / loop L8: same increment on both paths of a conditional.
// ---------------------------------------------------------------------

#[test]
fn fig3_l8_branch_same_offset() {
    let analysis = analyze_source(
        r#"
        func fig3(exp, n) {
            i = 1
            L8: loop {
                if exp > 0 { i = i + 2 } else { i = i + 2 }
                if i > n { break }
            }
        }
        "#,
    )
    .unwrap();
    // Paper: i2 = (L8, 1, 2); i3 = i4 = i5 = (L8, 3, 2).
    assert_linear(&analysis, "i2", "1", "2");
    assert_linear(&analysis, "i3", "3", "2");
    assert_linear(&analysis, "i4", "3", "2");
    assert_linear(&analysis, "i5", "3", "2");
}

// ---------------------------------------------------------------------
// Figure 4 / loop L10: first- and second-order wrap-around variables.
// ---------------------------------------------------------------------

#[test]
fn fig4_l10_wraparound_orders() {
    let analysis = analyze_source(
        r#"
        func fig4(n, k0, j0) {
            k = k0
            j = j0
            i = 1
            L10: loop {
                A[k] = i
                A[j] = i
                k = j
                j = i
                i = i + 1
                if i > n { break }
            }
        }
        "#,
    )
    .unwrap();
    // i2 is the linear IV (L10, 1, 1).
    assert_linear(&analysis, "i2", "1", "1");
    // j2 (the header phi for j) is a first-order wrap-around of i's IV.
    match class_by_name(&analysis, "j2") {
        Class::WrapAround { order, steady, .. } => {
            assert_eq!(order, 1);
            assert!(matches!(*steady, Class::Induction(_)));
        }
        other => panic!("j2 should be wrap-around, got {other:?}"),
    }
    // k2 is a second-order wrap-around.
    match class_by_name(&analysis, "k2") {
        Class::WrapAround { order, .. } => assert_eq!(order, 2),
        other => panic!("k2 should be 2nd-order wrap-around, got {other:?}"),
    }
}

#[test]
fn fig4_wraparound_refines_to_iv_when_init_fits() {
    // Paper: "if the initial value of j1 in loop L10 had been 0, then j2
    // could have been identified as the induction variable (L10, 0, 1)".
    let analysis = analyze_source(
        r#"
        func fig4b(n) {
            j = 0
            i = 1
            L10: loop {
                A[j] = i
                j = i
                i = i + 1
                if i > n { break }
            }
        }
        "#,
    )
    .unwrap();
    assert_linear(&analysis, "j2", "0", "1");
}

// ---------------------------------------------------------------------
// Figure 5 / loop L13: periodic family with period 3 (plus the wrapped
// copy t2).
// ---------------------------------------------------------------------

#[test]
fn fig5_l13_periodic_family() {
    let analysis = analyze_source(
        r#"
        func fig5(n, j0, k0, l0, t0) {
            t = t0
            j = j0
            k = k0
            l = l0
            L13: loop {
                A[t] = j
                t = j
                j = k
                k = l
                l = t
                if j > n { break }
            }
        }
        "#,
    )
    .unwrap();
    for name in ["j2", "k2", "l2"] {
        match class_by_name(&analysis, name) {
            Class::Periodic(p) => {
                assert_eq!(p.period(), 3, "`{name}` period");
            }
            other => panic!("`{name}` should be periodic, got {other:?}"),
        }
    }
    // t2 wraps the periodic family around the loop.
    match class_by_name(&analysis, "t2") {
        Class::WrapAround { order, steady, .. } => {
            assert_eq!(order, 1);
            assert!(matches!(*steady, Class::Periodic(_)));
        }
        other => panic!("t2 should wrap a periodic, got {other:?}"),
    }
}

#[test]
fn l11_swap_is_periodic_two() {
    // The relaxation-code flip-flop via explicit swap.
    let analysis = analyze_source(
        r#"
        func l11(n) {
            j = 1
            jold = 2
            L11: for iter = 1 to n {
                jtemp = jold
                jold = j
                j = jtemp
            }
        }
        "#,
    )
    .unwrap();
    match class_by_name(&analysis, "j2") {
        Class::Periodic(p) => {
            assert_eq!(p.period(), 2);
        }
        other => panic!("j2 should be periodic(2), got {other:?}"),
    }
}

#[test]
fn l12_flip_flop_arithmetic() {
    // j = 3 - j: the arithmetic flip-flop, a geometric IV with base -1.
    let analysis = analyze_source(
        r#"
        func l12(n) {
            j = 1
            L12: for iter = 1 to n {
                j = 3 - j
            }
        }
        "#,
    )
    .unwrap();
    match class_by_name(&analysis, "j2") {
        Class::Induction(cf) => {
            // j2(h) = 3/2 + (-1/2)·(-1)^h: values 1, 2, 1, 2, …
            for (h, expected) in [(0, 1), (1, 2), (2, 1), (3, 2)] {
                let v = cf.eval_at(h).unwrap().constant_value().unwrap();
                assert_eq!(v, biv_algebra::Rational::from_integer(expected), "j2({h})");
            }
        }
        other => panic!("j2 should be a base -1 geometric, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// L14: polynomial and geometric induction variables, the paper's table.
// ---------------------------------------------------------------------

#[test]
fn l14_polynomial_and_geometric_closed_forms() {
    let analysis = analyze_source(
        r#"
        func l14(n) {
            j = 1
            k = 1
            l = 1
            L14: for i = 1 to n {
                j = j + i
                k = k + j + 1
                l = l * 2 + 1
            }
        }
        "#,
    )
    .unwrap();
    let rat = biv_algebra::Rational::from_integer;
    // The header phis carry the value at iteration entry: j2 follows
    // 1, 2, 4, 7, 11, …; paper's closed form (h² + 3h + 4)/2 describes
    // the value *after* each iteration, i.e. j3 at h.
    match class_by_name(&analysis, "j3") {
        Class::Induction(cf) => {
            assert_eq!(cf.degree(), 2);
            assert_eq!(cf.coeffs[0].constant_value().unwrap(), rat(2));
            assert_eq!(
                cf.coeffs[1].constant_value().unwrap(),
                biv_algebra::Rational::new(3, 2).unwrap()
            );
            assert_eq!(
                cf.coeffs[2].constant_value().unwrap(),
                biv_algebra::Rational::new(1, 2).unwrap()
            );
        }
        other => panic!("j3 should be quadratic, got {other:?}"),
    }
    // k3 follows (h³ + 6h² + 23h + 24)/6: 4, 9, 17, 29, …
    match class_by_name(&analysis, "k3") {
        Class::Induction(cf) => {
            assert_eq!(cf.degree(), 3);
            for (h, expected) in [(0, 4), (1, 9), (2, 17), (3, 29), (4, 46)] {
                assert_eq!(
                    cf.eval_at(h).unwrap().constant_value().unwrap(),
                    rat(expected),
                    "k3({h})"
                );
            }
        }
        other => panic!("k3 should be cubic, got {other:?}"),
    }
    // l3 follows 2^(h+2) - 1 = 4·2^h − 1: 3, 7, 15, 31, … — a geometric
    // with a constant offset, which classifies as mixed-geometric.
    match class_by_name(&analysis, "l3") {
        Class::MixedGeometric(mg) => {
            assert_eq!(mg.ratio, rat(2));
            assert_eq!(mg.base.constant_value().unwrap(), rat(4));
            assert_eq!(mg.offset.constant_value().unwrap(), rat(-1));
            let cf = mg.to_closed_form();
            for (h, expected) in [(0, 3), (1, 7), (2, 15), (3, 31)] {
                assert_eq!(
                    cf.eval_at(h).unwrap().constant_value().unwrap(),
                    rat(expected),
                    "l3({h})"
                );
            }
        }
        other => panic!("l3 should be mixed-geometric, got {other:?}"),
    }
}

#[test]
fn l14_geometric_with_linear_addend() {
    // The paper's m = 3*m + 2*i + 1 example: m = 2·3^h − h − 2 (with
    // m(0) = 0 and i = h+1 at the point of use).
    let analysis = analyze_source(
        r#"
        func l14m(n) {
            m = 0
            L14: for i = 1 to n {
                m = 3 * m + 2 * i + 1
            }
        }
        "#,
    )
    .unwrap();
    let rat = biv_algebra::Rational::from_integer;
    match class_by_name(&analysis, "m2") {
        Class::Induction(cf) => {
            for (h, expected) in [(0, 0), (1, 3), (2, 14), (3, 49)] {
                assert_eq!(
                    cf.eval_at(h).unwrap().constant_value().unwrap(),
                    rat(expected),
                    "m2({h})"
                );
            }
            assert_eq!(cf.geo.len(), 1);
            assert_eq!(cf.geo[0].0, rat(3));
            assert_eq!(cf.geo[0].1.constant_value().unwrap(), rat(2));
        }
        other => panic!("m2 should be geometric, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Figure 6 / L16: monotonic variables.
// ---------------------------------------------------------------------

#[test]
fn fig6_l16_strictly_monotonic() {
    let analysis = analyze_source(
        r#"
        func fig6(n, exp) {
            k = 0
            L16: loop {
                if exp > 0 { k = k + 1 } else { k = k + 2 }
                if k > n { break }
            }
        }
        "#,
    )
    .unwrap();
    match class_by_name(&analysis, "k2") {
        Class::Monotonic(m) => {
            assert_eq!(m.direction, Direction::Increasing);
            assert!(m.strict, "incremented on every path: strictly monotonic");
        }
        other => panic!("k2 should be monotonic, got {other:?}"),
    }
}

#[test]
fn l15_conditional_pack_is_monotonic_nonstrict() {
    let analysis = analyze_source(
        r#"
        func l15(n) {
            k = 0
            L15: for i = 1 to n {
                t = A[i]
                if t > 0 {
                    k = k + 1
                    B[k] = t
                }
            }
        }
        "#,
    )
    .unwrap();
    // The header phi merges +1 and +0 paths: increasing, not strict.
    match class_by_name(&analysis, "k2") {
        Class::Monotonic(m) => {
            assert_eq!(m.direction, Direction::Increasing);
            assert!(!m.strict);
        }
        other => panic!("k2 should be monotonic, got {other:?}"),
    }
    // k3 = k2 + 1 executes only when it increments: strictly monotonic
    // (the paper's §5.4 refinement).
    match class_by_name(&analysis, "k3") {
        Class::Monotonic(m) => {
            assert_eq!(m.direction, Direction::Increasing);
            assert!(m.strict);
        }
        other => panic!("k3 should be strictly monotonic, got {other:?}"),
    }
}

#[test]
fn monotonic_decreasing_detected() {
    let analysis = analyze_source(
        r#"
        func dec(n, exp) {
            k = 1000
            L1: loop {
                if exp > 0 { k = k - 1 } else { k = k - 3 }
                if k < n { break }
            }
        }
        "#,
    )
    .unwrap();
    match class_by_name(&analysis, "k2") {
        Class::Monotonic(m) => {
            assert_eq!(m.direction, Direction::Decreasing);
            assert!(m.strict);
        }
        other => panic!("k2 should be decreasing, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Figures 7–8 / L17–L18: nested loops, trip counts, exit values.
// ---------------------------------------------------------------------

#[test]
fn fig7_8_nested_exit_values() {
    let analysis = analyze_source(
        r#"
        func fig7(n) {
            k = 0
            L17: loop {
                i = 1
                L18: loop {
                    k = k + 2
                    if i > 100 { break }
                    i = i + 1
                }
                k = k + 2
                if k > n { break }
            }
        }
        "#,
    )
    .unwrap();
    // Inner loop trip count is 100 (the exit tuple (L18, 100, -1)).
    let l18 = analysis.loop_by_label("L18").unwrap();
    match &analysis.info(l18).trip_count {
        TripCount::Finite(p) => {
            assert_eq!(
                p.constant_value().unwrap(),
                biv_algebra::Rational::from_integer(100)
            );
        }
        other => panic!("L18 trip count should be 100, got {other:?}"),
    }
    // The outer loop sees k as a linear IV with step 204:
    // paper: k2 = (L17, 0, 204), k5 = (L17, 204, 204).
    let outer_k_phi = analysis.ssa().value_by_name("k2").unwrap();
    let l17 = analysis.loop_by_label("L17").unwrap();
    match analysis.class_in(l17, outer_k_phi) {
        Some(Class::Induction(cf)) => {
            assert!(cf.is_linear());
            assert_eq!(
                cf.coeffs[0].constant_value().unwrap(),
                biv_algebra::Rational::ZERO
            );
            assert_eq!(
                cf.coeffs[1].constant_value().unwrap(),
                biv_algebra::Rational::from_integer(204)
            );
        }
        other => panic!("k2 should be (L17, 0, 204), got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Figure 9 / L19–L20: the triangular loop — quadratic outer IV.
// ---------------------------------------------------------------------

#[test]
fn fig9_triangular_quadratic() {
    let analysis = analyze_source(
        r#"
        func fig9(n) {
            j = 0
            L19: for i = 1 to n {
                j = j + i
                L20: for k = 1 to i {
                    j = j + 1
                }
            }
        }
        "#,
    )
    .unwrap();
    // Paper: j2 = (L19, 0, 1/2, 1/2)? — with both the `j = j + i` and the
    // inner loop (trip count i) contributing, j2 follows 0, 2, 6, 12, …
    // i.e. j2(h) = h² + h. The exact tuple depends on the source
    // variant; the key property is that j2 is a *quadratic* IV of L19.
    let j2 = analysis.ssa().value_by_name("j2").unwrap();
    let l19 = analysis.loop_by_label("L19").unwrap();
    match analysis.class_in(l19, j2) {
        Some(Class::Induction(cf)) => {
            assert_eq!(cf.degree(), 2, "triangular loop gives a quadratic");
            // j2(h): before iteration h of L19: sum of 2t for t=1..h = h(h+1)
            let rat = biv_algebra::Rational::from_integer;
            for (h, expected) in [(0, 0), (1, 2), (2, 6), (3, 12)] {
                assert_eq!(
                    cf.eval_at(h).unwrap().constant_value().unwrap(),
                    rat(expected),
                    "j2({h})"
                );
            }
        }
        other => panic!("j2 should be quadratic in L19, got {other:?}"),
    }
    // Inside L20, j is linear: (L20, <outer expr>, 1).
    let l20 = analysis.loop_by_label("L20").unwrap();
    let j4 = analysis.ssa().value_by_name("j4").unwrap();
    match analysis.class_in(l20, j4) {
        Some(Class::Induction(cf)) => {
            assert!(cf.is_linear(), "j4 linear in inner loop: {cf:?}");
        }
        other => panic!("j4 should be linear in L20, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Trip counts (§5.2).
// ---------------------------------------------------------------------

#[test]
fn trip_count_constant() {
    let analysis = analyze_source("func f() { L1: for i = 1 to 10 { x = i } }").unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    match &analysis.info(l1).trip_count {
        TripCount::Finite(p) => assert_eq!(
            p.constant_value().unwrap(),
            biv_algebra::Rational::from_integer(10)
        ),
        other => panic!("expected 10, got {other:?}"),
    }
}

#[test]
fn trip_count_symbolic() {
    let analysis = analyze_source("func f(n) { L1: for i = 1 to n { x = i } }").unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    match &analysis.info(l1).trip_count {
        TripCount::Finite(p) => {
            assert!(!p.is_constant(), "trip count is symbolic n: {p}");
        }
        other => panic!("expected symbolic, got {other:?}"),
    }
}

#[test]
fn trip_count_zero_and_infinite() {
    let analysis = analyze_source("func f() { L1: for i = 10 to 5 { x = i } }").unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    assert_eq!(analysis.info(l1).trip_count, TripCount::Zero);

    let analysis =
        analyze_source("func f() { x = 0 L1: loop { x = x + 0 if x > 5 { break } } }").unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    assert_eq!(analysis.info(l1).trip_count, TripCount::Infinite);
}

#[test]
fn trip_count_step_two_rounds_up() {
    // i = 1, 3, 5, 7, 9, 11 → exits when i > 10, i.e. 5 full iterations.
    let analysis = analyze_source("func f() { L1: for i = 1 to 10 by 2 { x = i } }").unwrap();
    let l1 = analysis.loop_by_label("L1").unwrap();
    match &analysis.info(l1).trip_count {
        TripCount::Finite(p) => assert_eq!(
            p.constant_value().unwrap(),
            biv_algebra::Rational::from_integer(5)
        ),
        other => panic!("expected 5, got {other:?}"),
    }
}
