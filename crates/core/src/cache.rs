//! Pluggable cache backends for the batch driver.
//!
//! The batch driver's memoization was originally hard-wired to the
//! in-memory [`StructuralCache`]. Persistent serving (PR 5) needs a
//! second tier — a durable content-addressed store that survives
//! restarts — without the driver knowing which tier answered. This
//! module defines the seam: [`CacheBackend`] is what the plan and
//! commit phases of `analyze_batch_*` talk to, and anything that can
//! answer "have we classified this structure before?" can implement it.
//!
//! Two backends exist today:
//!
//! - [`StructuralCache`] itself — the memory-only tier, byte-for-byte
//!   the pre-trait behavior;
//! - `biv_store::TieredCache` — memory in front of a durable
//!   append-only record log, write-through on commit.
//!
//! # Versioning
//!
//! A durable cache outlives the binary that wrote it, so every entry is
//! keyed by `(FORMAT_VERSION, structural_hash)` — in practice the
//! version is stamped once per store, not per record, and a mismatch
//! invalidates the whole store wholesale. **Any change to the analyzer
//! that can alter a [`StructuralSummary`]'s bytes — classification
//! rules, closed-form rendering, trip-count logic, the summary format
//! itself — must bump [`FORMAT_VERSION`].** The structural hash alone
//! is not enough: it fingerprints the *input*, not the analysis.
//!
//! Budget configuration also changes summaries (deterministic breaches
//! degrade values to `unknown`), so persistent stores additionally key
//! on [`analysis_fingerprint`], which folds the budget caps in.

use std::sync::Arc;

use crate::batch::{StructuralCache, StructuralSummary};
use crate::budget::Budget;

/// The analysis format version stamped into persistent stores.
///
/// Bump this whenever the analyzer's observable output for any input
/// can change; stale stores are then invalidated wholesale on open
/// (every record becomes garbage and is compacted away).
///
/// History: 1 — original summary format; 2 — mixed-geometric
/// classification plus per-loop verified invariants in every summary.
pub const FORMAT_VERSION: u32 = 2;

/// The configuration fingerprint a persistent store is keyed on,
/// alongside [`FORMAT_VERSION`].
///
/// Two processes whose fingerprints differ must not share records:
/// deterministic budget caps (nodes / SCC / order) change summaries
/// reproducibly, so a store written under one budget is stale under
/// another. The wall-clock deadline is deliberately *excluded* —
/// deadline-degraded summaries are never cacheable in the first place
/// (see [`StructuralSummary::cacheable`]), so the deadline cannot leak
/// into persisted bytes.
pub fn analysis_fingerprint(budget: &Budget) -> String {
    fn cap(v: Option<usize>) -> String {
        v.map_or_else(|| "-".to_string(), |n| n.to_string())
    }
    format!(
        "nodes={},scc={},order={}",
        cap(budget.max_region_nodes),
        cap(budget.max_scc),
        cap(budget.max_order),
    )
}

/// Point-in-time counters for a backend's durable tier, reported by
/// `bivd`'s `stats` endpoint and `bivc --stats-json` under the `store`
/// key. Memory-only backends report `None` and the key is omitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreGauges {
    /// Lookups answered by the durable tier (memory tier missed).
    pub disk_hits: u64,
    /// Lookups that missed both tiers.
    pub disk_misses: u64,
    /// Records currently live (latest record per structural hash).
    pub records_live: u64,
    /// Superseded or invalidated records still occupying log bytes.
    pub records_garbage: u64,
    /// Log rewrites performed (on open, when the garbage ratio crossed
    /// the compaction threshold, or on wholesale invalidation).
    pub compactions: u64,
    /// Records dropped because their checksum or framing failed on
    /// open; the log was truncated to the consistent prefix before
    /// them.
    pub corrupt_records_skipped: u64,
}

/// What the batch driver's plan and commit phases require of a cache.
///
/// Contract (the differential suites pin all of it):
///
/// - [`lookup`](CacheBackend::lookup) records exactly one hit or miss
///   in the backend's cumulative counters per call;
/// - [`note_duplicate_hit`](CacheBackend::note_duplicate_hit) records a
///   hit with no lookup — the driver found a structural twin earlier in
///   the same batch and shares its result;
/// - [`commit`](CacheBackend::commit) is only ever called with
///   summaries whose [`StructuralSummary::cacheable`] is true; durable
///   backends must re-check it anyway (defense in depth — a
///   budget-degraded or panicked summary must never be persisted);
/// - `hits + misses` across the cumulative counters equals the number
///   of functions ever submitted, regardless of tiering.
pub trait CacheBackend: Send {
    /// Looks `hash` up, counting a hit or a miss. A hit from *any* tier
    /// counts as a hit here; tier attribution shows up only in
    /// [`store_gauges`](CacheBackend::store_gauges).
    fn lookup(&mut self, hash: u64) -> Option<Arc<StructuralSummary>>;

    /// Counts a batch-local duplicate as a hit (no lookup performed).
    fn note_duplicate_hit(&mut self);

    /// Commits a cacheable summary; returns how many entries the
    /// memory tier evicted to make room.
    fn commit(&mut self, hash: u64, summary: Arc<StructuralSummary>) -> usize;

    /// The memory tier, for capacity / entry-count gauges.
    fn memory(&self) -> &StructuralCache;

    /// Counters for the durable tier, if the backend has one.
    fn store_gauges(&self) -> Option<StoreGauges> {
        None
    }

    /// Makes the durable tier durable *now* (fsync + index snapshot).
    /// Memory-only backends do nothing.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl CacheBackend for StructuralCache {
    fn lookup(&mut self, hash: u64) -> Option<Arc<StructuralSummary>> {
        StructuralCache::lookup(self, hash)
    }

    fn note_duplicate_hit(&mut self) {
        self.note_hit();
    }

    fn commit(&mut self, hash: u64, summary: Arc<StructuralSummary>) -> usize {
        self.insert(hash, summary)
    }

    fn memory(&self) -> &StructuralCache {
        self
    }
}

impl CacheBackend for Box<dyn CacheBackend + Send> {
    fn lookup(&mut self, hash: u64) -> Option<Arc<StructuralSummary>> {
        (**self).lookup(hash)
    }

    fn note_duplicate_hit(&mut self) {
        (**self).note_duplicate_hit()
    }

    fn commit(&mut self, hash: u64, summary: Arc<StructuralSummary>) -> usize {
        (**self).commit(hash, summary)
    }

    fn memory(&self) -> &StructuralCache {
        (**self).memory()
    }

    fn store_gauges(&self) -> Option<StoreGauges> {
        (**self).store_gauges()
    }

    fn flush(&mut self) -> std::io::Result<()> {
        (**self).flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_cache_implements_the_backend_contract() {
        let mut cache = StructuralCache::new(2);
        let summary = Arc::new(StructuralSummary::from_loops(Vec::new()));
        assert!(CacheBackend::lookup(&mut cache, 7).is_none());
        assert_eq!(cache.commit(7, Arc::clone(&summary)), 0);
        assert!(CacheBackend::lookup(&mut cache, 7).is_some());
        cache.note_duplicate_hit();
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert!(cache.store_gauges().is_none());
        assert!(cache.flush().is_ok());
        assert_eq!(cache.memory().capacity(), 2);
    }

    #[test]
    fn boxed_backends_forward() {
        let mut boxed: Box<dyn CacheBackend + Send> = Box::new(StructuralCache::new(4));
        let summary = Arc::new(StructuralSummary::from_loops(Vec::new()));
        assert!(boxed.lookup(1).is_none());
        boxed.commit(1, summary);
        assert!(boxed.lookup(1).is_some());
        assert_eq!(boxed.memory().len(), 1);
        assert!(boxed.store_gauges().is_none());
    }

    #[test]
    fn fingerprint_tracks_deterministic_caps_only() {
        let unlimited = analysis_fingerprint(&Budget::UNLIMITED);
        assert_eq!(unlimited, "nodes=-,scc=-,order=-");
        let with_time = analysis_fingerprint(&Budget {
            time_ms: Some(5),
            ..Budget::UNLIMITED
        });
        assert_eq!(
            unlimited, with_time,
            "the nondeterministic deadline must not change the fingerprint"
        );
        let capped = analysis_fingerprint(&Budget {
            max_scc: Some(64),
            ..Budget::UNLIMITED
        });
        assert_ne!(unlimited, capped);
        assert_eq!(capped, "nodes=-,scc=64,order=-");
    }
}
