//! Paper-style rendering of classifications: `(L7, n1, c1 + k1)` tuples,
//! nested for multi-loop induction variables.

use biv_algebra::{Rational, SymPoly};

use crate::class::{Class, ClosedForm, Direction};
use crate::driver::Analysis;
use crate::symbols::value_of_sym;

/// Renders a symbolic polynomial with SSA value names, substituting nested
/// induction-variable tuples for symbols classified in outer loops.
fn render_sympoly(analysis: &Analysis, poly: &SymPoly) -> String {
    // If the polynomial is exactly one symbol and that symbol is an outer
    // induction variable, render its tuple (the paper's nested form).
    if poly.term_count() == 1 {
        let (monomial, coeff) = poly.iter().next().expect("one term");
        if *coeff == Rational::ONE && monomial.factors().len() == 1 {
            let (sym, pow) = monomial.factors()[0];
            if pow == 1 {
                let value = value_of_sym(sym);
                if let Some((_, Class::Induction(cf))) = analysis.class_of(value) {
                    if !cf.is_invariant() {
                        return describe_closed_form(analysis, cf);
                    }
                }
            }
        }
    }
    poly.display_with(|s| analysis.ssa().value_name(value_of_sym(s)))
}

/// Renders a closed form as the paper's tuple.
///
/// - linear: `(L, init, step)`
/// - polynomial: `(L, s0, s1, …, sm)` — value at iteration `h` is
///   `Σ s_k·h^k`
/// - geometric: polynomial coefficients followed by `| c·g^h` terms
pub fn describe_closed_form(analysis: &Analysis, cf: &ClosedForm) -> String {
    let loop_name = analysis
        .loops()
        .find(|(l, _)| *l == cf.loop_id)
        .map(|(_, info)| info.name.clone())
        .unwrap_or_else(|| format!("{}", cf.loop_id));
    let mut parts: Vec<String> = cf
        .coeffs
        .iter()
        .map(|c| render_sympoly(analysis, c))
        .collect();
    if cf.coeffs.len() == 1 && cf.geo.is_empty() {
        // Invariant rendered as a bare tuple of one value.
        return format!("({loop_name}, {})", parts[0]);
    }
    let geo: Vec<String> = cf
        .geo
        .iter()
        .map(|(base, coeff)| format!("{}*{}^h", render_sympoly(analysis, coeff), base))
        .collect();
    let mut body = parts.join(", ");
    if !geo.is_empty() {
        if parts.len() == 1 && parts[0] == "0" {
            body = String::new();
        }
        let sep = if body.is_empty() { "" } else { " | " };
        body = format!("{body}{sep}{}", geo.join(" + "));
    }
    let _ = &mut parts;
    format!("({loop_name}, {body})")
}

/// Renders any class in a human-readable, paper-flavored form.
pub fn describe_class(analysis: &Analysis, class: &Class) -> String {
    match class {
        Class::Invariant(p) => format!("invariant {}", render_sympoly(analysis, p)),
        Class::Induction(cf) => describe_closed_form(analysis, cf),
        Class::WrapAround {
            order,
            steady,
            initials,
        } => {
            let inits: Vec<String> = initials
                .iter()
                .map(|p| render_sympoly(analysis, p))
                .collect();
            format!(
                "wrap-around(order {order}, initial [{}]) of {}",
                inits.join(", "),
                describe_class(analysis, steady)
            )
        }
        Class::Periodic(p) => {
            let values: Vec<String> = p
                .values
                .iter()
                .map(|v| render_sympoly(analysis, v))
                .collect();
            let loop_name = analysis
                .loops()
                .find(|(l, _)| *l == p.loop_id)
                .map(|(_, info)| info.name.clone())
                .unwrap_or_default();
            format!(
                "periodic({loop_name}, period {}, phase {}, values [{}])",
                p.period(),
                p.phase,
                values.join(", ")
            )
        }
        Class::Monotonic(m) => {
            let dir = match m.direction {
                Direction::Increasing => "increasing",
                Direction::Decreasing => "decreasing",
            };
            let strict = if m.strict { "strictly " } else { "" };
            format!("monotonic {strict}{dir}")
        }
        Class::Unknown => "unknown".to_string(),
    }
}
