//! Paper-style rendering of classifications: `(L7, n1, c1 + k1)` tuples,
//! nested for multi-loop induction variables.
//!
//! All renderers are parameterized over a *value namer* so the same
//! machinery serves two audiences: the interactive CLI renders SSA values
//! with their source names (`j2`), while the batch driver renders them
//! canonically by value index (`%7`) so structurally identical functions
//! produce byte-identical summaries regardless of variable naming.

use biv_algebra::{Rational, SymPoly};
use biv_ssa::Value;

use crate::class::{Class, ClosedForm, Direction};
use crate::driver::Analysis;
use crate::symbols::value_of_sym;

/// A function rendering an SSA value as display text.
pub type ValueNamer<'a> = &'a dyn Fn(Value) -> String;

/// The canonical namer: pure value index, independent of source naming.
pub fn canonical_value_name(value: Value) -> String {
    use biv_ir::EntityId;
    format!("%{}", value.index())
}

/// Renders a symbolic polynomial with the given namer, substituting
/// nested induction-variable tuples for symbols classified in outer
/// loops.
fn render_sympoly(analysis: &Analysis, poly: &SymPoly, namer: ValueNamer<'_>) -> String {
    // If the polynomial is exactly one symbol and that symbol is an outer
    // induction variable, render its tuple (the paper's nested form).
    if poly.term_count() == 1 {
        let (monomial, coeff) = poly.iter().next().expect("one term");
        if *coeff == Rational::ONE && monomial.factors().len() == 1 {
            let (sym, pow) = monomial.factors()[0];
            if pow == 1 {
                let value = value_of_sym(sym);
                match analysis.class_of(value) {
                    Some((_, Class::Induction(cf))) if !cf.is_invariant() => {
                        return describe_closed_form_with(analysis, cf, namer);
                    }
                    Some((_, Class::MixedGeometric(mg))) => {
                        return describe_closed_form_with(analysis, &mg.to_closed_form(), namer);
                    }
                    _ => {}
                }
            }
        }
    }
    poly.display_with(|s| namer(value_of_sym(s)))
}

/// Renders a closed form as the paper's tuple, with source value names.
///
/// - linear: `(L, init, step)`
/// - polynomial: `(L, s0, s1, …, sm)` — value at iteration `h` is
///   `Σ s_k·h^k`
/// - geometric: polynomial coefficients followed by `| c·g^h` terms
pub fn describe_closed_form(analysis: &Analysis, cf: &ClosedForm) -> String {
    describe_closed_form_with(analysis, cf, &|v| analysis.ssa().value_name(v))
}

/// [`describe_closed_form`] with an explicit value namer.
pub fn describe_closed_form_with(
    analysis: &Analysis,
    cf: &ClosedForm,
    namer: ValueNamer<'_>,
) -> String {
    let loop_name = analysis
        .loops()
        .find(|(l, _)| *l == cf.loop_id)
        .map(|(_, info)| info.name.clone())
        .unwrap_or_else(|| format!("{}", cf.loop_id));
    let parts: Vec<String> = cf
        .coeffs
        .iter()
        .map(|c| render_sympoly(analysis, c, namer))
        .collect();
    if cf.coeffs.len() == 1 && cf.geo.is_empty() {
        // Invariant rendered as a bare tuple of one value.
        return format!("({loop_name}, {})", parts[0]);
    }
    let geo: Vec<String> = cf
        .geo
        .iter()
        .map(|(base, coeff)| format!("{}*{}^h", render_sympoly(analysis, coeff, namer), base))
        .collect();
    let mut body = parts.join(", ");
    if !geo.is_empty() {
        if parts.len() == 1 && parts[0] == "0" {
            body = String::new();
        }
        let sep = if body.is_empty() { "" } else { " | " };
        body = format!("{body}{sep}{}", geo.join(" + "));
    }
    format!("({loop_name}, {body})")
}

/// Renders any class in a human-readable, paper-flavored form, with
/// source value names.
pub fn describe_class(analysis: &Analysis, class: &Class) -> String {
    describe_class_with(analysis, class, &|v| analysis.ssa().value_name(v))
}

/// [`describe_class`] with an explicit value namer.
pub fn describe_class_with(analysis: &Analysis, class: &Class, namer: ValueNamer<'_>) -> String {
    match class {
        Class::Invariant(p) => {
            format!("invariant {}", render_sympoly(analysis, p, namer))
        }
        Class::Induction(cf) => describe_closed_form_with(analysis, cf, namer),
        Class::MixedGeometric(mg) => {
            let loop_name = analysis
                .loops()
                .find(|(l, _)| *l == mg.loop_id)
                .map(|(_, info)| info.name.clone())
                .unwrap_or_else(|| format!("{}", mg.loop_id));
            format!(
                "mixed-geometric({loop_name}, {}*{}^h + {})",
                render_sympoly(analysis, &mg.base, namer),
                mg.ratio,
                render_sympoly(analysis, &mg.offset, namer)
            )
        }
        Class::WrapAround {
            order,
            steady,
            initials,
        } => {
            let inits: Vec<String> = initials
                .iter()
                .map(|p| render_sympoly(analysis, p, namer))
                .collect();
            format!(
                "wrap-around(order {order}, initial [{}]) of {}",
                inits.join(", "),
                describe_class_with(analysis, steady, namer)
            )
        }
        Class::Periodic(p) => {
            let values: Vec<String> = p
                .values
                .iter()
                .map(|v| render_sympoly(analysis, v, namer))
                .collect();
            let loop_name = analysis
                .loops()
                .find(|(l, _)| *l == p.loop_id)
                .map(|(_, info)| info.name.clone())
                .unwrap_or_default();
            format!(
                "periodic({loop_name}, period {}, phase {}, values [{}])",
                p.period(),
                p.phase,
                values.join(", ")
            )
        }
        Class::Monotonic(m) => {
            let dir = match m.direction {
                Direction::Increasing => "increasing",
                Direction::Decreasing => "decreasing",
            };
            let strict = if m.strict { "strictly " } else { "" };
            format!("monotonic {strict}{dir}")
        }
        Class::Unknown => "unknown".to_string(),
    }
}
