//! Analysis configuration (also the ablation surface for the benchmark
//! suite: each extension beyond linear induction variables can be turned
//! off independently).

use crate::budget::Budget;

/// Switches for the classifier's extensions beyond linear induction
/// variables. Everything defaults to on; the ablation benchmarks measure
/// the incremental cost of each extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Recognize polynomial and geometric induction variables (§4.3).
    pub nonlinear: bool,
    /// Recognize periodic families and flip-flops (§4.2).
    pub periodic: bool,
    /// Recognize monotonic variables (§4.4).
    pub monotonic: bool,
    /// Recognize wrap-around variables (§4.1).
    pub wraparound: bool,
    /// Compute trip counts and propagate inner-loop exit values to outer
    /// loops (§5.2–§5.3).
    pub nested_exit_values: bool,
    /// Run SSA constant folding before classification so literal initial
    /// values are substituted (the paper's \[WZ91\] step).
    pub constant_folding: bool,
    /// Resource budget for one analysis; unlimited by default. Breached
    /// dimensions degrade the affected variables to `Unknown` instead of
    /// aborting (see [`crate::budget`]).
    pub budget: Budget,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            nonlinear: true,
            periodic: true,
            monotonic: true,
            wraparound: true,
            nested_exit_values: true,
            constant_folding: true,
            budget: Budget::UNLIMITED,
        }
    }
}

impl AnalysisConfig {
    /// The full algorithm (all extensions on).
    pub fn full() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    /// Linear induction variables only — roughly the classical scope, used
    /// as the ablation baseline.
    pub fn linear_only() -> AnalysisConfig {
        AnalysisConfig {
            nonlinear: false,
            periodic: false,
            monotonic: false,
            wraparound: false,
            nested_exit_values: true,
            constant_folding: true,
            budget: Budget::UNLIMITED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_full() {
        assert_eq!(AnalysisConfig::default(), AnalysisConfig::full());
        assert!(AnalysisConfig::default().nonlinear);
    }

    #[test]
    fn linear_only_disables_extensions() {
        let c = AnalysisConfig::linear_only();
        assert!(!c.nonlinear && !c.periodic && !c.monotonic && !c.wraparound);
        assert!(c.nested_exit_values);
    }
}
