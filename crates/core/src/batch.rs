//! Parallel batch analysis with structural-hash memoization.
//!
//! The paper's classifier is a single linear-time pass per function, so
//! whole-program throughput is bounded only by how many functions can be
//! fed to it. This module turns the one-function [`analyze`] driver into
//! a corpus driver:
//!
//! - **Sharding** — functions are distributed over a
//!   [`std::thread::scope`] worker pool (`jobs` workers; `0` means
//!   auto-detect via `BIV_JOBS` or the machine's available parallelism).
//!   Workers pull work items from a shared atomic cursor, so scheduling
//!   is dynamic, but each result is sent back over an mpsc channel
//!   tagged with its pre-assigned slot and reordered into **input
//!   order**: output is byte-identical for every job count.
//! - **Structural memoization** — before any work is scheduled, each
//!   function is hashed *structurally* (CFG shape, instruction opcodes,
//!   constants, canonically numbered variables and arrays — names and
//!   value numbering excluded). Functions whose hash is already in the
//!   [`StructuralCache`], or that duplicate an earlier function in the
//!   same batch, are served from the cache and never analyzed again.
//!   Generated and machine-translated corpora are full of duplicate
//!   functions; they are classified exactly once.
//! - **Canonical summaries** — cached results must not leak one
//!   function's variable names into another structurally identical
//!   function's report, so summaries render SSA values canonically by
//!   value index (`%7`) via [`describe_class_with`]. Two α-renamed
//!   functions therefore produce byte-identical summaries.
//!
//! Determinism guarantees (pinned by the differential test suite):
//!
//! 1. `analyze_batch(funcs, jobs=N)` output equals `jobs=1` output,
//!    byte for byte, for every `N` — the hit/miss plan is computed
//!    serially before any thread is spawned.
//! 2. Cache statistics are scheduling-independent: `misses` is the
//!    number of distinct structures analyzed, `hits + misses` equals the
//!    number of functions submitted.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use biv_ir::{EntityId, Function, Inst, Operand, Terminator};

use crate::budget::BudgetBreach;
use crate::cache::CacheBackend;
use crate::config::AnalysisConfig;
use crate::display::{canonical_value_name, describe_class_with};
use crate::driver::{analyze_protected, AnalysisError};

/// Options for a batch run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads; `0` resolves via [`resolve_jobs`] (the `BIV_JOBS`
    /// environment variable, then available parallelism).
    pub jobs: usize,
    /// The per-function analysis configuration.
    pub config: AnalysisConfig,
    /// Maximum entries the structural cache retains (FIFO eviction).
    pub cache_capacity: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            jobs: 0,
            config: AnalysisConfig::default(),
            cache_capacity: 4096,
        }
    }
}

/// Resolves a requested job count: explicit request wins, then the
/// `BIV_JOBS` environment variable, then the machine's available
/// parallelism, then 1.
pub fn resolve_jobs(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(var) = std::env::var("BIV_JOBS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Counters for one batch run. All values are scheduling-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Functions submitted.
    pub functions: usize,
    /// Functions served from the cache (including duplicates within the
    /// batch, which are analyzed once and shared).
    pub hits: usize,
    /// Functions actually analyzed (distinct structures not in cache).
    pub misses: usize,
    /// Entries evicted from the cache by this batch's insertions.
    pub evictions: usize,
    /// Worker threads used.
    pub jobs: usize,
}

impl BatchStats {
    /// Renders the scheduling-independent counters (everything except
    /// `jobs`, which varies by invocation and must not affect
    /// byte-identical output comparisons).
    pub fn render(&self) -> String {
        format!(
            "batch: {} functions, {} analyzed, {} cache hits, {} evictions",
            self.functions, self.misses, self.hits, self.evictions
        )
    }
}

/// One loop's classification summary, rendered canonically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSummary {
    /// Loop name (source label when present).
    pub name: String,
    /// Rendered trip count.
    pub trip_count: String,
    /// Rendered trip-count upper bound, when known.
    pub max_trip_count: Option<String>,
    /// `(canonical value name, class description)` per classified value,
    /// in value-numbering order.
    pub classes: Vec<(String, String)>,
    /// Verified polynomial relations between this loop's induction
    /// variables (`2*%3 - %2^2 + %2 = 0` style), in derivation order.
    /// Every entry passed the interpreter check; empty when no relation
    /// was derived or none survived checking. Always computed, so cached
    /// and stored summaries serve invariants warm; rendering is gated by
    /// the `--invariants` flag instead.
    pub invariants: Vec<String>,
}

/// The cache-shareable portion of a function's analysis: everything
/// except the function's own name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralSummary {
    /// Per-loop summaries in inner-to-outer order.
    pub loops: Vec<LoopSummary>,
    /// Budget breaches hit while analyzing (empty with the default
    /// unlimited budget).
    pub breaches: Vec<BudgetBreach>,
    /// Set when the analysis panicked: the caught payload. `loops` is
    /// empty in that case — the function degraded to an error line, the
    /// rest of the batch is unaffected.
    pub error: Option<String>,
}

impl StructuralSummary {
    /// A summary holding only the analyzed loops — no breaches, no
    /// error. What every analysis produced before budgets existed.
    pub fn from_loops(loops: Vec<LoopSummary>) -> StructuralSummary {
        StructuralSummary {
            loops,
            breaches: Vec::new(),
            error: None,
        }
    }

    /// Whether this summary may be retained in a structure-keyed cache.
    /// Panicked analyses must not poison the cache, and deadline-
    /// degraded results are nondeterministic on identical input (the
    /// deterministic caps — nodes/SCC/order — breach identically every
    /// time, so they are safe to share).
    pub fn cacheable(&self) -> bool {
        self.error.is_none() && self.breaches.iter().all(BudgetBreach::is_deterministic)
    }
}

/// One function's batch result.
#[derive(Debug, Clone)]
pub struct FunctionSummary {
    /// The function's name (never cached — two structurally identical
    /// functions keep their own names).
    pub name: String,
    /// The structural hash used as the cache key.
    pub hash: u64,
    /// Whether this result was served from the cache (a pre-existing
    /// entry or an earlier duplicate in the same batch).
    pub cached: bool,
    /// The shared summary body.
    pub summary: Arc<StructuralSummary>,
}

impl FunctionSummary {
    /// Renders the per-function report block. Deterministic: identical
    /// for every job count and for cached vs freshly analyzed results.
    pub fn render(&self) -> String {
        self.render_with(false)
    }

    /// [`FunctionSummary::render`] with verified invariant lines included
    /// when `show_invariants` is set. The invariants always live in the
    /// summary (cached and stored either way); the flag only gates
    /// printing, so warm and cold output stay byte-identical for either
    /// flag state.
    pub fn render_with(&self, show_invariants: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!("func {} [{:016x}]\n", self.name, self.hash));
        render_summary_body_with(&mut out, &self.summary, show_invariants);
        out
    }
}

/// Renders a summary's loop blocks, budget lines, and error line — the
/// part shared between the batch report and the incremental per-nest
/// report, so both print classifications in the same shape.
pub(crate) fn render_summary_body(out: &mut String, summary: &StructuralSummary) {
    render_summary_body_with(out, summary, false);
}

/// [`render_summary_body`], optionally printing each loop's verified
/// invariant relations after its class lines.
pub(crate) fn render_summary_body_with(
    out: &mut String,
    summary: &StructuralSummary,
    show_invariants: bool,
) {
    use std::fmt::Write as _;
    if let Some(error) = &summary.error {
        let _ = writeln!(out, "  error: internal: {error}");
    }
    for l in &summary.loops {
        let _ = writeln!(out, "  loop {}: trip count {}", l.name, l.trip_count);
        if let Some(max) = &l.max_trip_count {
            let _ = writeln!(out, "    max trip count: {max}");
        }
        for (value, class) in &l.classes {
            let _ = writeln!(out, "    {value:<8} => {class}");
        }
        if show_invariants {
            for relation in &l.invariants {
                let _ = writeln!(out, "    invariant: {relation}");
            }
        }
    }
    for breach in &summary.breaches {
        let _ = writeln!(out, "  budget: {breach}");
    }
}

/// A bounded structural-hash → summary cache with FIFO eviction,
/// reusable across batches (e.g. successive files fed to `bivc`).
#[derive(Debug, Default)]
pub struct StructuralCache {
    map: HashMap<u64, Arc<StructuralSummary>>,
    order: VecDeque<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl StructuralCache {
    /// Creates a cache bounded to `capacity` entries (0 disables
    /// retention entirely: every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> StructuralCache {
        StructuralCache {
            capacity,
            ..StructuralCache::default()
        }
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// The configured retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cumulative hits across all batches served by this cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative misses across all batches served by this cache.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cumulative evictions across all batches served by this cache.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks `hash` up without touching the counters.
    pub fn peek(&self, hash: u64) -> Option<Arc<StructuralSummary>> {
        self.map.get(&hash).map(Arc::clone)
    }

    /// Looks `hash` up, recording a hit or a miss in the cumulative
    /// counters — the counted form backends route through.
    pub fn lookup(&mut self, hash: u64) -> Option<Arc<StructuralSummary>> {
        let found = self.peek(hash);
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Records a hit that bypassed [`lookup`](StructuralCache::lookup)
    /// (a batch-local structural twin served from its representative).
    pub fn note_hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss that bypassed [`lookup`](StructuralCache::lookup)
    /// (a tiered backend checked every tier via `peek` and found
    /// nothing; the miss is still charged to the front tier's counters
    /// so `hits + misses` tracks functions submitted).
    pub fn note_miss(&mut self) {
        self.misses += 1;
    }

    /// Inserts a summary, evicting FIFO past capacity; returns how many
    /// entries were evicted.
    pub fn insert(&mut self, hash: u64, summary: Arc<StructuralSummary>) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut evicted = 0;
        if self.map.insert(hash, summary).is_none() {
            self.order.push_back(hash);
        }
        while self.map.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if self.map.remove(&oldest).is_some() {
                self.evictions += 1;
                evicted += 1;
            }
        }
        evicted
    }
}

/// The result of a batch run: per-function summaries in input order plus
/// scheduling-independent statistics.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One summary per submitted function, in input order.
    pub functions: Vec<FunctionSummary>,
    /// Counters for this run.
    pub stats: BatchStats,
}

impl BatchReport {
    /// Renders every function block plus the stats line. Byte-identical
    /// across job counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.functions {
            out.push_str(&f.render());
        }
        out.push_str(&self.stats.render());
        out.push('\n');
        out
    }
}

/// Analyzes a batch of functions with a fresh cache.
pub fn analyze_batch(funcs: &[Function], opts: &BatchOptions) -> BatchReport {
    let mut cache = StructuralCache::new(opts.cache_capacity);
    analyze_batch_with_cache(funcs, opts, &mut cache)
}

/// Analyzes a batch of functions, consulting and updating `cache`.
///
/// The hit/miss plan is computed serially before any worker starts, so
/// results, summaries, and statistics do not depend on scheduling.
pub fn analyze_batch_with_cache(
    funcs: &[Function],
    opts: &BatchOptions,
    cache: &mut StructuralCache,
) -> BatchReport {
    analyze_batch_with_backend(funcs, opts, cache)
}

/// Analyzes a batch of functions against any [`CacheBackend`] — the
/// in-memory [`StructuralCache`], or a memory+disk write-through tier
/// such as `biv_store::TieredCache`.
///
/// The hit/miss plan is computed serially before any worker starts, so
/// results, summaries, and statistics do not depend on scheduling. Which
/// tier answered a lookup never changes the summary bytes — only the
/// backend's own counters.
pub fn analyze_batch_with_backend<B: CacheBackend + ?Sized>(
    funcs: &[Function],
    opts: &BatchOptions,
    cache: &mut B,
) -> BatchReport {
    let hashes: Vec<u64> = funcs.iter().map(structural_hash).collect();
    let mut stats = BatchStats {
        functions: funcs.len(),
        ..BatchStats::default()
    };
    let (plans, representatives) = plan_batch(&hashes, cache, &mut stats);

    // Parallel analysis of the representatives.
    let jobs = resolve_jobs(opts.jobs).min(representatives.len()).max(1);
    stats.jobs = jobs;
    let computed = compute_representatives(funcs, &representatives, jobs, &opts.config);

    commit_batch(&hashes, &representatives, &computed, cache, &mut stats);
    assemble_report(plans, funcs, &hashes, &computed, stats)
}

/// Per-function decision from the serial plan phase.
enum Plan {
    /// Served from the backend (any tier).
    Cached(Arc<StructuralSummary>),
    /// Analyzed this batch, as representative `slot` (or sharing it).
    Computed {
        /// Index into the representative/computed arrays.
        slot: usize,
    },
}

/// Serial planning: decide, per function, whether it is served from the
/// backend, aliases an earlier function in this batch, or is the
/// representative that will actually be analyzed. Counts hits and
/// misses in `stats` and in the backend's cumulative counters.
///
/// The batch-local duplicate check runs first and never consults the
/// backend: the two cases are mutually exclusive (a hash lands in
/// `slot_of_hash` only after the backend missed on its first
/// occurrence, and planning never inserts), so counter totals are
/// identical to checking the backend first.
fn plan_batch<B: CacheBackend + ?Sized>(
    hashes: &[u64],
    cache: &mut B,
    stats: &mut BatchStats,
) -> (Vec<(Plan, bool)>, Vec<usize>) {
    let mut slot_of_hash: HashMap<u64, usize> = HashMap::new();
    let mut representatives: Vec<usize> = Vec::new();
    let mut plans: Vec<(Plan, bool)> = Vec::with_capacity(hashes.len());
    for (i, &hash) in hashes.iter().enumerate() {
        if let Some(&slot) = slot_of_hash.get(&hash) {
            // Duplicate within this batch: share the representative's
            // result. Counts as a hit — it is not analyzed again.
            stats.hits += 1;
            cache.note_duplicate_hit();
            plans.push((Plan::Computed { slot }, true));
        } else if let Some(summary) = cache.lookup(hash) {
            stats.hits += 1;
            plans.push((Plan::Cached(summary), true));
        } else {
            stats.misses += 1;
            let slot = representatives.len();
            slot_of_hash.insert(hash, slot);
            representatives.push(i);
            plans.push((Plan::Computed { slot }, false));
        }
    }
    (plans, representatives)
}

/// Deterministic cache insertion, in representative (= input) order.
/// Uncacheable summaries (panicked or deadline-degraded) are skipped so
/// they cannot poison later lookups; an injected commit fault has the
/// same effect — the result is still returned, just not retained.
fn commit_batch<B: CacheBackend + ?Sized>(
    hashes: &[u64],
    representatives: &[usize],
    computed: &[Arc<StructuralSummary>],
    cache: &mut B,
    stats: &mut BatchStats,
) {
    for (slot, &i) in representatives.iter().enumerate() {
        if !computed[slot].cacheable() || crate::faults::fire("cache.commit") {
            continue;
        }
        stats.evictions += cache.commit(hashes[i], Arc::clone(&computed[slot]));
    }
}

/// Resolves every plan into input-order [`FunctionSummary`] blocks.
fn assemble_report(
    plans: Vec<(Plan, bool)>,
    funcs: &[Function],
    hashes: &[u64],
    computed: &[Arc<StructuralSummary>],
    stats: BatchStats,
) -> BatchReport {
    let functions = plans
        .into_iter()
        .zip(funcs.iter().zip(hashes))
        .map(|((plan, cached), (func, &hash))| {
            let summary = match plan {
                Plan::Cached(s) => s,
                Plan::Computed { slot } => Arc::clone(&computed[slot]),
            };
            FunctionSummary {
                name: func.name().to_string(),
                hash,
                cached,
                summary,
            }
        })
        .collect();
    BatchReport { functions, stats }
}

/// Renders a batch report grouped by input file, exactly as `bivc`
/// prints it: a `══ path ══` header per file, that file's function
/// blocks, then the stats line. `ranges` pairs each display path with
/// its function count; counts must sum to `functions.len()`.
///
/// This is the single definition of the batch output format — the
/// local CLI and the analysis server both render through it, which is
/// what makes their outputs byte-identical by construction.
pub fn render_grouped(
    ranges: &[(String, usize)],
    functions: &[FunctionSummary],
    stats: &BatchStats,
) -> String {
    render_grouped_with(ranges, functions, stats, false)
}

/// [`render_grouped`] with per-loop invariant lines when
/// `show_invariants` is set — the format behind `bivc --invariants`,
/// local and remote alike.
pub fn render_grouped_with(
    ranges: &[(String, usize)],
    functions: &[FunctionSummary],
    stats: &BatchStats,
    show_invariants: bool,
) -> String {
    let mut out = String::new();
    let mut next = 0usize;
    for (path, count) in ranges {
        out.push_str(&format!("══ {path} ══\n"));
        for summary in &functions[next..next + count] {
            out.push_str(&summary.render_with(show_invariants));
        }
        next += count;
    }
    debug_assert_eq!(next, functions.len(), "ranges cover every function");
    out.push_str(&stats.render());
    out.push('\n');
    out
}

/// Computes the statistics a *cold* run over `hashes` would report: a
/// fresh cache of `capacity` entries, batch-local deduplication, FIFO
/// eviction. Pure arithmetic — no analysis is performed.
///
/// This is the determinism anchor for remote serving: a long-running
/// server answers from a warm shared cache, but its rendered stats line
/// must not depend on which requests happened to come first, so it
/// reports what a fresh `bivc` run over the same inputs would have said.
/// The warm cache's real cumulative counters stay observable through the
/// server's `stats` endpoint instead.
pub fn cold_batch_stats(hashes: &[u64], capacity: usize) -> BatchStats {
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut distinct = 0usize;
    for &h in hashes {
        if seen.insert(h) {
            distinct += 1;
        }
    }
    // A fresh FIFO cache only ever evicts once more distinct structures
    // have been inserted than it can hold.
    let evictions = if capacity == 0 {
        0
    } else {
        distinct.saturating_sub(capacity)
    };
    BatchStats {
        functions: hashes.len(),
        hits: hashes.len() - distinct,
        misses: distinct,
        evictions,
        jobs: 0,
    }
}

/// Analyzes a batch against a mutex-shared cache, as used by concurrent
/// servers: the lock is held only for the serial plan phase (lookups)
/// and the commit phase (insertions), never while a function is being
/// analyzed, so requests on different worker threads overlap their
/// actual classification work.
///
/// Two racing batches that both miss on the same structure each analyze
/// it once — wasted work, never wrong output, because summaries are
/// canonical and insertion is idempotent. Counter invariants are
/// preserved under contention: every submitted function increments
/// exactly one of the cache's cumulative `hits`/`misses` counters.
pub fn analyze_batch_shared(
    funcs: &[Function],
    opts: &BatchOptions,
    cache: &Mutex<StructuralCache>,
) -> BatchReport {
    analyze_batch_shared_backend(funcs, opts, cache)
}

/// [`analyze_batch_shared`] over any [`CacheBackend`] — what `bivd`
/// runs when a durable store is configured. The lock is held only for
/// the serial plan phase (lookups) and the commit phase (insertions and
/// write-through appends), never while a function is being analyzed.
pub fn analyze_batch_shared_backend<B: CacheBackend>(
    funcs: &[Function],
    opts: &BatchOptions,
    cache: &Mutex<B>,
) -> BatchReport {
    let hashes: Vec<u64> = funcs.iter().map(structural_hash).collect();
    let mut stats = BatchStats {
        functions: funcs.len(),
        ..BatchStats::default()
    };
    let (plans, representatives) = {
        let mut cache = cache.lock().expect("structural cache poisoned");
        plan_batch(&hashes, &mut *cache, &mut stats)
    };

    // Analysis runs with the lock released. Server workers call this
    // with `jobs: 1` — request-level parallelism comes from the pool.
    let jobs = resolve_jobs(opts.jobs).min(representatives.len()).max(1);
    stats.jobs = jobs;
    let computed = compute_representatives(funcs, &representatives, jobs, &opts.config);

    {
        // Same commit gate as the unshared path: never retain panicked
        // or deadline-degraded summaries, and let the injected commit
        // fault drop retention without affecting the returned report.
        let mut cache = cache.lock().expect("structural cache poisoned");
        commit_batch(
            &hashes,
            &representatives,
            &computed,
            &mut *cache,
            &mut stats,
        );
    }

    assemble_report(plans, funcs, &hashes, &computed, stats)
}

/// Analyzes the representative functions, sharded over `jobs` workers.
///
/// Workers pull indices from a shared cursor and send each result back
/// tagged with its slot; the receive loop reorders into input order, so
/// no lock is held while a summary is produced.
fn compute_representatives(
    funcs: &[Function],
    representatives: &[usize],
    jobs: usize,
    config: &AnalysisConfig,
) -> Vec<Arc<StructuralSummary>> {
    if representatives.len() <= 1 || jobs == 1 {
        return representatives
            .iter()
            .map(|&i| Arc::new(summarize(&funcs[i], config)))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let reps = representatives;
    std::thread::scope(|scope| {
        let cursor = &cursor;
        let (tx, rx) = mpsc::channel::<(usize, Arc<StructuralSummary>)>();
        for _ in 0..jobs {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= reps.len() {
                    break;
                }
                let summary = Arc::new(summarize(&funcs[reps[k]], config));
                if tx.send((k, summary)).is_err() {
                    break;
                }
            });
        }
        // The receiver loop ends when every worker has dropped its
        // sender clone; the original must go first.
        drop(tx);
        let mut slots: Vec<Option<Arc<StructuralSummary>>> = vec![None; reps.len()];
        for (k, summary) in rx {
            slots[k] = Some(summary);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    })
}

/// Analyzes one function and renders its canonical summary.
///
/// Runs behind the panic-isolation boundary: a panicking function
/// yields an error summary (rendered as an `error:` line) while the
/// rest of the batch proceeds normally.
pub(crate) fn summarize(func: &Function, config: &AnalysisConfig) -> StructuralSummary {
    summarize_filtered(func, config, None)
}

/// [`summarize`] restricted to the loops whose header lies in `keep`
/// (`None` keeps every loop) — the incremental driver uses this to pull
/// one nest's summary out of a sliced function that also carries its
/// dependency nests.
pub(crate) fn summarize_filtered(
    func: &Function,
    config: &AnalysisConfig,
    keep: Option<&std::collections::HashSet<biv_ir::Block>>,
) -> StructuralSummary {
    let analysis = match analyze_protected(func, *config) {
        Ok(analysis) => analysis,
        Err(AnalysisError::Internal { detail }) => {
            return StructuralSummary {
                loops: Vec::new(),
                breaches: Vec::new(),
                error: Some(detail),
            };
        }
    };
    let namer = canonical_value_name;
    let mut invariants = crate::invariants::function_invariants(func, config, &analysis);
    let mut loops = Vec::new();
    for (l, info) in analysis.loops() {
        if let Some(keep) = keep {
            if !keep.contains(&analysis.forest().data(l).header) {
                continue;
            }
        }
        // `VecMap` iteration is in value-index order.
        let classes = info
            .classes
            .iter()
            .map(|(v, c)| {
                (
                    canonical_value_name(v),
                    describe_class_with(&analysis, c, &namer),
                )
            })
            .collect();
        loops.push(LoopSummary {
            name: info.name.clone(),
            trip_count: info.trip_count.to_string(),
            max_trip_count: info.max_trip_count.as_ref().map(|p| p.to_string()),
            classes,
            invariants: invariants.remove(&l).unwrap_or_default(),
        });
    }
    StructuralSummary {
        loops,
        breaches: analysis.budget_breaches().to_vec(),
        error: None,
    }
}

/// Computes the structural hash of a function: CFG shape, labels,
/// instruction opcodes, constants, and *canonically numbered* variables
/// and arrays. Variable and array names, value numbering, and the
/// function's own name are excluded, so α-renamed functions collide (by
/// design) while any single-instruction change separates.
pub fn structural_hash(func: &Function) -> u64 {
    let mut h = Fnv1a::new();
    let mut canon = Canonicalizer::default();
    h.write_usize(func.params().len());
    for &p in func.params() {
        h.write_u64(canon.var(p));
    }
    h.write_usize(func.blocks.iter().count());
    for (block, data) in func.blocks.iter() {
        // Block identity is its arena index (construction order), which
        // the parser assigns purely from program structure.
        h.write_u64(block.index() as u64);
        match &data.label {
            Some(label) => {
                h.write_u8(1);
                h.write_bytes(label.as_bytes());
            }
            None => h.write_u8(0),
        }
        h.write_usize(data.insts.len());
        for inst in &data.insts {
            hash_inst(&mut h, &mut canon, inst);
        }
        hash_term(&mut h, &mut canon, &data.term);
    }
    h.finish()
}

fn hash_operand(h: &mut Fnv1a, canon: &mut Canonicalizer, op: &Operand) {
    match op {
        Operand::Var(v) => {
            h.write_u8(1);
            h.write_u64(canon.var(*v));
        }
        Operand::Const(c) => {
            h.write_u8(2);
            h.write_u64(*c as u64);
        }
    }
}

fn hash_inst(h: &mut Fnv1a, canon: &mut Canonicalizer, inst: &Inst) {
    match inst {
        Inst::Copy { dst, src } => {
            h.write_u8(10);
            hash_operand(h, canon, src);
            h.write_u64(canon.var(*dst));
        }
        Inst::Neg { dst, src } => {
            h.write_u8(11);
            hash_operand(h, canon, src);
            h.write_u64(canon.var(*dst));
        }
        Inst::Binary { dst, op, lhs, rhs } => {
            h.write_u8(12);
            h.write_u8(*op as u8);
            hash_operand(h, canon, lhs);
            hash_operand(h, canon, rhs);
            h.write_u64(canon.var(*dst));
        }
        Inst::Load { dst, array, index } => {
            h.write_u8(13);
            h.write_u64(canon.array(*array));
            h.write_usize(index.len());
            for op in index {
                hash_operand(h, canon, op);
            }
            h.write_u64(canon.var(*dst));
        }
        Inst::Store {
            array,
            index,
            value,
        } => {
            h.write_u8(14);
            h.write_u64(canon.array(*array));
            h.write_usize(index.len());
            for op in index {
                hash_operand(h, canon, op);
            }
            hash_operand(h, canon, value);
        }
    }
}

fn hash_term(h: &mut Fnv1a, canon: &mut Canonicalizer, term: &Terminator) {
    match term {
        Terminator::Jump(b) => {
            h.write_u8(20);
            h.write_u64(b.index() as u64);
        }
        Terminator::Branch {
            op,
            lhs,
            rhs,
            then_bb,
            else_bb,
        } => {
            h.write_u8(21);
            h.write_u8(*op as u8);
            hash_operand(h, canon, lhs);
            hash_operand(h, canon, rhs);
            h.write_u64(then_bb.index() as u64);
            h.write_u64(else_bb.index() as u64);
        }
        Terminator::Return => h.write_u8(22),
    }
}

/// First-occurrence canonical numbering of variables and arrays.
#[derive(Default)]
struct Canonicalizer {
    vars: HashMap<biv_ir::Var, u64>,
    arrays: HashMap<biv_ir::Array, u64>,
}

impl Canonicalizer {
    fn var(&mut self, v: biv_ir::Var) -> u64 {
        let next = self.vars.len() as u64;
        *self.vars.entry(v).or_insert(next)
    }

    fn array(&mut self, a: biv_ir::Array) -> u64 {
        let next = self.arrays.len() as u64;
        *self.arrays.entry(a).or_insert(next)
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Fnv1a {
        Fnv1a(0xCBF2_9CE4_8422_2325)
    }

    pub(crate) fn write_u8(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        for &b in bytes {
            self.write_u8(b);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_ir::parser::parse_program;

    fn funcs_of(src: &str) -> Vec<Function> {
        parse_program(src).expect("test source parses").functions
    }

    const TWO_LOOPS: &str = r#"
        func first(n) {
            j = 1
            L1: for i = 1 to n { j = j + i A[j] = i }
        }
        func second(n) {
            q = 1
            L1: for r = 1 to n { q = q + r A[q] = r }
        }
        func third(n) {
            j = 2
            L1: for i = 1 to n { j = j + i A[j] = i }
        }
    "#;

    #[test]
    fn alpha_renamed_functions_share_a_hash() {
        let funcs = funcs_of(TWO_LOOPS);
        assert_eq!(structural_hash(&funcs[0]), structural_hash(&funcs[1]));
    }

    #[test]
    fn constant_mutation_changes_the_hash() {
        let funcs = funcs_of(TWO_LOOPS);
        assert_ne!(structural_hash(&funcs[0]), structural_hash(&funcs[2]));
    }

    #[test]
    fn batch_serves_duplicates_from_cache() {
        let funcs = funcs_of(TWO_LOOPS);
        let report = analyze_batch(&funcs, &BatchOptions::default());
        assert_eq!(report.stats.functions, 3);
        assert_eq!(report.stats.misses, 2); // first/second share; third differs
        assert_eq!(report.stats.hits, 1);
        assert!(report.functions[1].cached);
        assert_eq!(
            report.functions[0].summary, report.functions[1].summary,
            "α-renamed twins share the summary"
        );
        // Names are never cached.
        assert_eq!(report.functions[0].name, "first");
        assert_eq!(report.functions[1].name, "second");
    }

    #[test]
    fn cache_persists_across_batches() {
        let funcs = funcs_of(TWO_LOOPS);
        let opts = BatchOptions::default();
        let mut cache = StructuralCache::new(16);
        let first = analyze_batch_with_cache(&funcs, &opts, &mut cache);
        assert_eq!(first.stats.misses, 2);
        let second = analyze_batch_with_cache(&funcs, &opts, &mut cache);
        assert_eq!(second.stats.misses, 0);
        assert_eq!(second.stats.hits, 3);
        // Per-function output is identical whether analyzed or cached;
        // only the stats line records the different hit counts.
        for (a, b) in first.functions.iter().zip(&second.functions) {
            assert_eq!(a.render(), b.render());
        }
    }

    #[test]
    fn eviction_is_counted_and_bounded() {
        let funcs = funcs_of(TWO_LOOPS);
        let opts = BatchOptions {
            cache_capacity: 1,
            ..BatchOptions::default()
        };
        let mut cache = StructuralCache::new(opts.cache_capacity);
        let report = analyze_batch_with_cache(&funcs, &opts, &mut cache);
        assert_eq!(cache.len(), 1);
        assert_eq!(report.stats.evictions, 1);
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn job_counts_do_not_change_output() {
        let funcs = funcs_of(TWO_LOOPS);
        let render_with = |jobs: usize| {
            let opts = BatchOptions {
                jobs,
                ..BatchOptions::default()
            };
            analyze_batch(&funcs, &opts).render()
        };
        let serial = render_with(1);
        assert_eq!(serial, render_with(2));
        assert_eq!(serial, render_with(8));
    }

    #[test]
    fn resolve_jobs_prefers_explicit_request() {
        assert_eq!(resolve_jobs(3), 3);
        assert!(resolve_jobs(0) >= 1);
    }

    #[test]
    fn cold_stats_replay_matches_a_fresh_run() {
        let funcs = funcs_of(TWO_LOOPS);
        let hashes: Vec<u64> = funcs.iter().map(structural_hash).collect();
        for capacity in [0, 1, 2, 4096] {
            let opts = BatchOptions {
                cache_capacity: capacity,
                ..BatchOptions::default()
            };
            let fresh = analyze_batch(&funcs, &opts);
            let mut replay = cold_batch_stats(&hashes, capacity);
            replay.jobs = fresh.stats.jobs;
            assert_eq!(replay, fresh.stats, "capacity {capacity}");
        }
    }

    #[test]
    fn shared_cache_batches_match_exclusive_ones() {
        let funcs = funcs_of(TWO_LOOPS);
        let opts = BatchOptions {
            jobs: 1,
            ..BatchOptions::default()
        };
        let shared = Mutex::new(StructuralCache::new(16));
        let first = analyze_batch_shared(&funcs, &opts, &shared);
        let second = analyze_batch_shared(&funcs, &opts, &shared);
        let mut exclusive = StructuralCache::new(16);
        let expect_first = analyze_batch_with_cache(&funcs, &opts, &mut exclusive);
        let expect_second = analyze_batch_with_cache(&funcs, &opts, &mut exclusive);
        assert_eq!(first.render(), expect_first.render());
        assert_eq!(second.render(), expect_second.render());
        let cache = shared.lock().unwrap();
        assert_eq!(cache.hits(), exclusive.hits());
        assert_eq!(cache.misses(), exclusive.misses());
        assert_eq!(
            cache.hits() + cache.misses(),
            2 * funcs.len() as u64,
            "every submitted function counts exactly once"
        );
    }

    #[test]
    fn shared_cache_is_consistent_under_contention() {
        let funcs = funcs_of(TWO_LOOPS);
        let opts = BatchOptions {
            jobs: 1,
            ..BatchOptions::default()
        };
        let shared = Mutex::new(StructuralCache::new(64));
        let rounds = 8;
        let reference = analyze_batch(&funcs, &opts).render();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..rounds {
                        let report = analyze_batch_shared(&funcs, &opts, &shared);
                        for (f, name) in report.functions.iter().zip(["first", "second", "third"]) {
                            assert_eq!(f.name, name);
                        }
                        assert_eq!(
                            report.stats.hits + report.stats.misses,
                            funcs.len(),
                            "per-request counts are total"
                        );
                    }
                });
            }
        });
        let cache = shared.lock().unwrap();
        assert_eq!(
            cache.hits() + cache.misses(),
            (4 * rounds * funcs.len()) as u64,
            "cumulative hits + misses == functions submitted"
        );
        drop(cache);
        // A warm follow-up run renders the same per-function blocks as a
        // cold exclusive run; only the stats line differs.
        let warm = analyze_batch_shared(&funcs, &opts, &shared);
        let cold = analyze_batch(&funcs, &opts);
        assert!(reference.contains(&cold.functions[0].render()));
        for (w, c) in warm.functions.iter().zip(&cold.functions) {
            assert_eq!(w.render(), c.render());
        }
    }
}
