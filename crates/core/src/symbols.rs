//! The SSA-value ↔ symbol mapping.
//!
//! Symbolic polynomials ([`biv_algebra::SymPoly`]) are written over opaque
//! [`SymId`]s. The classifier uses the identity mapping — symbol `k` *is*
//! SSA value `k` — so a symbolic initial value like `n1 + c1` directly
//! names the SSA values that produced it.

use biv_algebra::{SymId, SymPoly};
use biv_ir::EntityId;
use biv_ssa::{Operand, Value};

/// The symbol standing for an SSA value.
pub fn sym_of_value(value: Value) -> SymId {
    SymId(u32::try_from(value.index()).expect("value index fits in u32"))
}

/// The SSA value a symbol stands for.
pub fn value_of_sym(sym: SymId) -> Value {
    Value::from_index(sym.0 as usize)
}

/// A symbolic polynomial for an operand: constants stay constant, values
/// become their symbol.
pub fn operand_to_sympoly(op: &Operand) -> SymPoly {
    match op {
        Operand::Const(c) => SymPoly::from_integer(i128::from(*c)),
        Operand::Value(v) => SymPoly::symbol(sym_of_value(*v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Value::from_index(42);
        assert_eq!(value_of_sym(sym_of_value(v)), v);
    }

    #[test]
    fn operand_conversion() {
        assert_eq!(
            operand_to_sympoly(&Operand::Const(7)),
            SymPoly::from_integer(7)
        );
        let v = Value::from_index(3);
        assert_eq!(
            operand_to_sympoly(&Operand::Value(v)),
            SymPoly::symbol(sym_of_value(v))
        );
    }
}
