//! The classification lattice: closed forms and variable classes.
//!
//! Internally every basic and non-basic induction variable is carried as a
//! [`ClosedForm`] — a polynomial in the basic loop counter `h` (which
//! starts at zero with step one, exactly the paper's implicit
//! normalization, §6.1) plus optional geometric terms `c·g^h`. Linear,
//! polynomial, and geometric induction variables are all the same
//! representation at different degrees, which is what makes the operator
//! algebra (§5.1) compositional.

use biv_algebra::{Rational, SymPoly};
use biv_ir::loops::Loop;

/// Coefficient storage for [`ClosedForm`]. Nearly every form the
/// classifier manipulates is constant or linear, so up to two
/// coefficients live inline (no heap allocation — a `SymPoly` is a
/// reference-counted pointer); higher-degree forms spill to a `Vec`.
/// Dereferences to a slice, so all read access looks exactly like the
/// `Vec<SymPoly>` it replaces; equality and formatting are slice-based,
/// making the two representations indistinguishable.
#[derive(Clone)]
pub struct Coeffs(CoeffsRepr);

#[derive(Clone)]
enum CoeffsRepr {
    /// Up to two coefficients inline; slots at index ≥ `len` hold the
    /// (shared, allocation-free) zero polynomial.
    Inline { len: u8, items: [SymPoly; 2] },
    /// Degree ≥ 2 forms.
    Spilled(Vec<SymPoly>),
}

impl Coeffs {
    /// An empty coefficient list.
    pub fn new() -> Coeffs {
        Coeffs(CoeffsRepr::Inline {
            len: 0,
            items: [SymPoly::zero(), SymPoly::zero()],
        })
    }

    /// A single coefficient, stored inline.
    pub fn one(c0: SymPoly) -> Coeffs {
        Coeffs(CoeffsRepr::Inline {
            len: 1,
            items: [c0, SymPoly::zero()],
        })
    }

    /// Two coefficients, stored inline.
    pub fn two(c0: SymPoly, c1: SymPoly) -> Coeffs {
        Coeffs(CoeffsRepr::Inline {
            len: 2,
            items: [c0, c1],
        })
    }

    /// Converts from a `Vec`, keeping short lists inline.
    pub fn from_vec(mut v: Vec<SymPoly>) -> Coeffs {
        match v.len() {
            0 => Coeffs::new(),
            1 => Coeffs::one(v.pop().expect("len checked")),
            2 => {
                let c1 = v.pop().expect("len checked");
                let c0 = v.pop().expect("len checked");
                Coeffs::two(c0, c1)
            }
            _ => Coeffs(CoeffsRepr::Spilled(v)),
        }
    }

    /// `n` zero coefficients.
    fn zeros(n: usize) -> Coeffs {
        if n <= 2 {
            Coeffs(CoeffsRepr::Inline {
                len: n as u8,
                items: [SymPoly::zero(), SymPoly::zero()],
            })
        } else {
            Coeffs(CoeffsRepr::Spilled(vec![SymPoly::zero(); n]))
        }
    }

    /// Appends a coefficient, spilling on overflow of the inline space.
    pub fn push(&mut self, c: SymPoly) {
        match &mut self.0 {
            CoeffsRepr::Inline { len, items } => {
                if (*len as usize) < items.len() {
                    items[*len as usize] = c;
                    *len += 1;
                } else {
                    let c0 = std::mem::replace(&mut items[0], SymPoly::zero());
                    let c1 = std::mem::replace(&mut items[1], SymPoly::zero());
                    self.0 = CoeffsRepr::Spilled(vec![c0, c1, c]);
                }
            }
            CoeffsRepr::Spilled(v) => v.push(c),
        }
    }

    /// Removes and returns the last coefficient.
    pub fn pop(&mut self) -> Option<SymPoly> {
        match &mut self.0 {
            CoeffsRepr::Inline { len, items } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(std::mem::replace(
                        &mut items[*len as usize],
                        SymPoly::zero(),
                    ))
                }
            }
            CoeffsRepr::Spilled(v) => v.pop(),
        }
    }
}

impl Default for Coeffs {
    fn default() -> Coeffs {
        Coeffs::new()
    }
}

impl std::ops::Deref for Coeffs {
    type Target = [SymPoly];
    fn deref(&self) -> &[SymPoly] {
        match &self.0 {
            CoeffsRepr::Inline { len, items } => &items[..*len as usize],
            CoeffsRepr::Spilled(v) => v,
        }
    }
}

impl std::ops::DerefMut for Coeffs {
    fn deref_mut(&mut self) -> &mut [SymPoly] {
        match &mut self.0 {
            CoeffsRepr::Inline { len, items } => &mut items[..*len as usize],
            CoeffsRepr::Spilled(v) => v,
        }
    }
}

impl PartialEq for Coeffs {
    fn eq(&self, other: &Coeffs) -> bool {
        **self == **other
    }
}

impl Eq for Coeffs {}

impl std::fmt::Debug for Coeffs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl FromIterator<SymPoly> for Coeffs {
    fn from_iter<I: IntoIterator<Item = SymPoly>>(iter: I) -> Coeffs {
        let mut out = Coeffs::new();
        for c in iter {
            out.push(c);
        }
        out
    }
}

impl<'a> IntoIterator for &'a Coeffs {
    type Item = &'a SymPoly;
    type IntoIter = std::slice::Iter<'a, SymPoly>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A closed form over the basic loop counter `h = 0, 1, 2, …` of one loop:
///
/// ```text
/// v(h) = Σ_k coeffs[k] · h^k  +  Σ_j geo[j].1 · geo[j].0^h
/// ```
///
/// Coefficients are symbolic polynomials over loop-invariant values, so
/// `(L7, n1+c1, c1+k1)` from the paper's Figure 1 is representable with a
/// symbolic initial value and step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedForm {
    /// The loop whose counter `h` this form is over.
    pub loop_id: Loop,
    /// Polynomial coefficients, `coeffs[k]` multiplying `h^k`. Trailing
    /// zeros are trimmed; the list is never empty.
    pub coeffs: Coeffs,
    /// Geometric terms `(base, coefficient)`, sorted by base, bases
    /// distinct and ∉ {0, 1}.
    pub geo: Vec<(Rational, SymPoly)>,
}

impl ClosedForm {
    /// An invariant (degree-0) form.
    pub fn constant(loop_id: Loop, value: SymPoly) -> ClosedForm {
        ClosedForm {
            loop_id,
            coeffs: Coeffs::one(value),
            geo: Vec::new(),
        }
    }

    /// A linear form `init + step·h`.
    pub fn linear(loop_id: Loop, init: SymPoly, step: SymPoly) -> ClosedForm {
        ClosedForm {
            loop_id,
            coeffs: Coeffs::two(init, step),
            geo: Vec::new(),
        }
        .normalized()
    }

    /// Builds a form from raw parts, normalizing.
    pub fn from_parts(
        loop_id: Loop,
        coeffs: Vec<SymPoly>,
        geo: Vec<(Rational, SymPoly)>,
    ) -> ClosedForm {
        ClosedForm::from_coeffs(loop_id, Coeffs::from_vec(coeffs), geo)
    }

    /// Like [`ClosedForm::from_parts`], taking the inline representation
    /// directly.
    fn from_coeffs(loop_id: Loop, coeffs: Coeffs, geo: Vec<(Rational, SymPoly)>) -> ClosedForm {
        ClosedForm {
            loop_id,
            coeffs,
            geo,
        }
        .normalized()
    }

    fn normalized(mut self) -> ClosedForm {
        // The common case — purely polynomial forms — skips straight to
        // the coefficient trim.
        if !self.geo.is_empty() {
            // Fold base-1 "geometric" terms into the constant coefficient
            // and drop zero coefficients.
            let mut folded = SymPoly::zero();
            self.geo.retain(|(base, coeff)| {
                if *base == Rational::ONE {
                    folded = folded
                        .checked_add(coeff)
                        .unwrap_or_else(|_| SymPoly::zero());
                    false
                } else {
                    !coeff.is_zero() && !base.is_zero()
                }
            });
            if !folded.is_zero() {
                if self.coeffs.is_empty() {
                    self.coeffs.push(SymPoly::zero());
                }
                if let Ok(sum) = self.coeffs[0].checked_add(&folded) {
                    self.coeffs[0] = sum;
                }
            }
            // Merge duplicate bases.
            self.geo.sort_by_key(|a| a.0);
            let mut merged: Vec<(Rational, SymPoly)> = Vec::with_capacity(self.geo.len());
            for (base, coeff) in std::mem::take(&mut self.geo) {
                match merged.last_mut() {
                    Some((b, c)) if *b == base => {
                        if let Ok(sum) = c.checked_add(&coeff) {
                            *c = sum;
                        }
                    }
                    _ => merged.push((base, coeff)),
                }
            }
            merged.retain(|(_, c)| !c.is_zero());
            self.geo = merged;
        }
        while self.coeffs.len() > 1 && self.coeffs.last().is_some_and(SymPoly::is_zero) {
            self.coeffs.pop();
        }
        if self.coeffs.is_empty() {
            self.coeffs.push(SymPoly::zero());
        }
        self
    }

    /// Polynomial degree (0 for constants).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The initial value `v(0)`.
    pub fn initial_value(&self) -> SymPoly {
        let mut v = self.coeffs[0].clone();
        for (_, coeff) in &self.geo {
            v = match v.checked_add(coeff) {
                Ok(s) => s,
                Err(_) => return SymPoly::zero(),
            };
        }
        v
    }

    /// Whether the form is invariant in the loop.
    pub fn is_invariant(&self) -> bool {
        self.degree() == 0 && self.geo.is_empty()
    }

    /// Whether this is a *linear* induction variable (degree ≤ 1, no
    /// geometric part, non-invariant).
    pub fn is_linear(&self) -> bool {
        self.degree() == 1 && self.geo.is_empty()
    }

    /// The step of a linear form.
    pub fn linear_step(&self) -> Option<&SymPoly> {
        if self.is_linear() {
            Some(&self.coeffs[1])
        } else {
            None
        }
    }

    /// Checked addition of two forms over the same loop.
    pub fn add(&self, other: &ClosedForm) -> Option<ClosedForm> {
        if self.loop_id != other.loop_id {
            return None;
        }
        // Invariant operands touch only the constant coefficient; skip
        // the full merge-and-normalize pass. This is the overwhelmingly
        // common case on the classification hot path (adding a constant
        // step or offset to a linear form).
        if other.is_invariant() {
            return self.add_invariant(&other.coeffs[0]);
        }
        if self.is_invariant() {
            return other.add_invariant(&self.coeffs[0]);
        }
        let len = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = Coeffs::new();
        for k in 0..len {
            let zero = SymPoly::zero();
            let a = self.coeffs.get(k).unwrap_or(&zero);
            let b = other.coeffs.get(k).unwrap_or(&zero);
            coeffs.push(a.checked_add(b).ok()?);
        }
        let mut geo = self.geo.clone();
        geo.extend(other.geo.iter().cloned());
        Some(ClosedForm::from_coeffs(self.loop_id, coeffs, geo))
    }

    /// Adds a loop-invariant value into the constant coefficient. The
    /// receiver is already normalized, and only `coeffs[0]` changes, so
    /// no re-normalization pass is needed (a trailing zero can only
    /// appear at index ≥ 1).
    fn add_invariant(&self, c: &SymPoly) -> Option<ClosedForm> {
        if c.is_zero() {
            return Some(self.clone());
        }
        let mut coeffs = self.coeffs.clone();
        coeffs[0] = coeffs[0].checked_add(c).ok()?;
        Some(ClosedForm {
            loop_id: self.loop_id,
            coeffs,
            geo: self.geo.clone(),
        })
    }

    /// Checked negation.
    pub fn neg(&self) -> Option<ClosedForm> {
        let mut coeffs = Coeffs::new();
        for c in self.coeffs.iter() {
            coeffs.push(c.checked_neg().ok()?);
        }
        let geo = self
            .geo
            .iter()
            .map(|(b, c)| Some((*b, c.checked_neg().ok()?)))
            .collect::<Option<Vec<_>>>()?;
        Some(ClosedForm::from_coeffs(self.loop_id, coeffs, geo))
    }

    /// Checked subtraction.
    pub fn sub(&self, other: &ClosedForm) -> Option<ClosedForm> {
        self.add(&other.neg()?)
    }

    /// Scales by a loop-invariant symbolic factor.
    pub fn scale(&self, factor: &SymPoly) -> Option<ClosedForm> {
        // Scaling by 1 is the identity and scaling by 0 collapses to the
        // zero form; both show up constantly in affine-SCR analysis.
        if let Some(c) = factor.constant_value() {
            if c == Rational::ONE {
                return Some(self.clone());
            }
            if c.is_zero() {
                return Some(ClosedForm::constant(self.loop_id, SymPoly::zero()));
            }
        }
        let mut coeffs = Coeffs::new();
        for c in self.coeffs.iter() {
            coeffs.push(c.checked_mul(factor).ok()?);
        }
        let geo = self
            .geo
            .iter()
            .map(|(b, c)| Some((*b, c.checked_mul(factor).ok()?)))
            .collect::<Option<Vec<_>>>()?;
        Some(ClosedForm::from_coeffs(self.loop_id, coeffs, geo))
    }

    /// Checked product. Returns `None` when the product leaves the
    /// representable space (an `h^k · g^h` cross term with `k ≥ 1`).
    pub fn mul(&self, other: &ClosedForm) -> Option<ClosedForm> {
        if self.loop_id != other.loop_id {
            return None;
        }
        // Polynomial × polynomial: convolution.
        let mut coeffs = Coeffs::zeros(self.coeffs.len() + other.coeffs.len() - 1);
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in other.coeffs.iter().enumerate() {
                if b.is_zero() {
                    continue;
                }
                let prod = a.checked_mul(b).ok()?;
                coeffs[i + j] = coeffs[i + j].checked_add(&prod).ok()?;
            }
        }
        let mut geo: Vec<(Rational, SymPoly)> = Vec::new();
        // geo × geo: bases multiply.
        for (b1, c1) in &self.geo {
            for (b2, c2) in &other.geo {
                let base = b1.checked_mul(b2).ok()?;
                geo.push((base, c1.checked_mul(c2).ok()?));
            }
        }
        // poly × geo cross terms: only the constant coefficient may meet a
        // geometric term.
        let cross = |poly: &ClosedForm,
                     geo_side: &ClosedForm,
                     geo_out: &mut Vec<(Rational, SymPoly)>|
         -> Option<()> {
            if geo_side.geo.is_empty() {
                return Some(());
            }
            if poly.degree() >= 1 {
                // h^k · g^h with k ≥ 1: unrepresentable (unless the poly
                // side's non-constant coefficients are all zero, which
                // degree() already rules out after normalization).
                return None;
            }
            let scale = &poly.coeffs[0];
            if scale.is_zero() {
                return Some(());
            }
            for (b, c) in &geo_side.geo {
                geo_out.push((*b, c.checked_mul(scale).ok()?));
            }
            Some(())
        };
        cross(self, other, &mut geo)?;
        cross(other, self, &mut geo)?;
        Some(ClosedForm::from_coeffs(self.loop_id, coeffs, geo))
    }

    /// Evaluates at a concrete iteration `h` (may be negative, e.g. for
    /// the wrap-around refinement check).
    pub fn eval_at(&self, h: i128) -> Option<SymPoly> {
        let mut acc = SymPoly::zero();
        let mut power = Rational::ONE;
        let hr = Rational::from_integer(h);
        for c in &self.coeffs {
            acc = acc.checked_add(&c.checked_scale(&power).ok()?).ok()?;
            power = power.checked_mul(&hr).ok()?;
        }
        for (base, coeff) in &self.geo {
            let p = base.checked_pow(i32::try_from(h).ok()?).ok()?;
            acc = acc.checked_add(&coeff.checked_scale(&p).ok()?).ok()?;
        }
        Some(acc)
    }

    /// Evaluates at a symbolic iteration count (used for exit values,
    /// §5.3). Geometric terms require a constant count.
    pub fn eval_at_sym(&self, h: &SymPoly) -> Option<SymPoly> {
        if let Some(c) = h.constant_value() {
            if c.is_integer() {
                return self.eval_at(c.as_integer()?);
            }
        }
        if !self.geo.is_empty() {
            return None; // g^h with symbolic h is not polynomial
        }
        let mut acc = SymPoly::zero();
        let mut power = SymPoly::constant(Rational::ONE);
        for c in &self.coeffs {
            acc = acc.checked_add(&c.checked_mul(&power).ok()?).ok()?;
            power = power.checked_mul(h).ok()?;
        }
        Some(acc)
    }

    /// The form shifted by one iteration: `v'(h) = v(h - 1)`. Used by the
    /// wrap-around refinement (§4.1).
    pub fn shift_back(&self) -> Option<ClosedForm> {
        // Re-fit the polynomial part through shifted samples; geometric
        // terms scale by base^{-1}.
        let d = self.degree();
        let mut samples = Vec::with_capacity(d + 1);
        let poly_only = ClosedForm {
            loop_id: self.loop_id,
            coeffs: self.coeffs.clone(),
            geo: Vec::new(),
        };
        for h in 0..=(d as i128) {
            samples.push(poly_only.eval_at(h - 1)?);
        }
        let coeffs = biv_algebra::vandermonde::fit_polynomial(&samples)?;
        let geo = self
            .geo
            .iter()
            .map(|(b, c)| {
                let inv = Rational::ONE.checked_div(b).ok()?;
                Some((*b, c.checked_scale(&inv).ok()?))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(ClosedForm::from_parts(self.loop_id, coeffs, geo))
    }

    /// Conservative check that `v(h+1) - v(h) ≥ 0` for all `h ≥ 0`:
    /// requires constant coefficients with the difference's coefficients
    /// all non-negative and any geometric terms with base > 1 and
    /// coefficient ≥ 0 (or base in (0,1) with coefficient ≤ 0).
    pub fn is_nondecreasing(&self) -> bool {
        self.step_sign_at_least(Rational::ZERO)
    }

    /// Conservative check that the per-iteration change is ≥ `bound`
    /// everywhere (with `bound` 0 for non-decreasing, >0 for strict).
    fn step_sign_at_least(&self, bound: Rational) -> bool {
        // Difference polynomial Δ(h) = v(h+1) - v(h): check constant
        // coefficients non-negative, constant term ≥ bound.
        let d = self.degree();
        let mut samples = Vec::with_capacity(d.max(1));
        let poly_only = ClosedForm {
            loop_id: self.loop_id,
            coeffs: self.coeffs.clone(),
            geo: Vec::new(),
        };
        for h in 0..d.max(1) as i128 {
            let hi = match (poly_only.eval_at(h + 1), poly_only.eval_at(h)) {
                (Some(a), Some(b)) => match a.checked_sub(&b) {
                    Ok(v) => v,
                    Err(_) => return false,
                },
                _ => return false,
            };
            samples.push(hi);
        }
        let Some(delta) = biv_algebra::vandermonde::fit_polynomial(&samples) else {
            return false;
        };
        for (k, c) in delta.iter().enumerate() {
            let Some(v) = c.constant_value() else {
                return false;
            };
            if k == 0 {
                if v < bound {
                    return false;
                }
            } else if v < Rational::ZERO {
                return false;
            }
        }
        for (base, coeff) in &self.geo {
            let Some(c) = coeff.constant_value() else {
                return false;
            };
            // c·g^h is non-decreasing iff c·(g-1)·g^h ≥ 0 for all h ≥ 0.
            let ok = if *base > Rational::ONE {
                c >= Rational::ZERO
            } else if *base > Rational::ZERO {
                c <= Rational::ZERO
            } else {
                c.is_zero()
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Monotonic direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Values never decrease across iterations.
    Increasing,
    /// Values never increase across iterations.
    Decreasing,
}

/// A monotonic classification (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Monotonic {
    /// The loop the property holds in.
    pub loop_id: Loop,
    /// Direction of change.
    pub direction: Direction,
    /// Whether the value is *strictly* monotonic — it changes on every
    /// execution of its definition.
    pub strict: bool,
    /// The loop-header φ anchoring the SCR family. Two monotonic values
    /// with the same anchor belong to the same family, which dependence
    /// testing exploits (§6, Figure 10).
    pub family: Option<FamilyAnchor>,
}

/// An opaque family anchor (the SCR's header φ value index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FamilyAnchor(pub u32);

/// A periodic classification (§4.2): the value rotates through `values`
/// with the given period; at iteration `h` the value is
/// `values[(phase + h) mod period]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Periodic {
    /// The loop the rotation happens in.
    pub loop_id: Loop,
    /// The rotating values (initial values of the family), in rotation
    /// order.
    pub values: Vec<SymPoly>,
    /// This member's offset into `values` at iteration 0.
    pub phase: usize,
}

impl Periodic {
    /// The period of the family.
    pub fn period(&self) -> usize {
        self.values.len()
    }
}

/// A mixed geometric-linear classification: the general affine recurrence
/// `v ← ratio·v + step` with `ratio ∉ {0, 1}`, whose closed form is
///
/// ```text
/// v(h) = base·ratio^h + offset      where offset = step/(1 − ratio)
/// ```
///
/// `offset` is the recurrence's fixed point and `base = v(0) − offset` the
/// initial displacement from it. The class degenerates cleanly at the
/// boundaries: `ratio == 1` is linear, `step == 0` is pure geometric, and
/// `ratio == −1` alternates (kept as a plain [`ClosedForm`] so the
/// periodic machinery stays authoritative for sign flips) — promotion in
/// [`Class::normalized`] refuses all three, so no mixed form leaks into
/// the existing classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedGeometric {
    /// The loop whose counter `h` this form is over.
    pub loop_id: Loop,
    /// Initial displacement from the fixed point (nonzero).
    pub base: SymPoly,
    /// The multiplicative ratio (∉ {−1, 0, 1}).
    pub ratio: Rational,
    /// The fixed point `step/(1 − ratio)` (nonzero).
    pub offset: SymPoly,
}

impl MixedGeometric {
    /// Reconstructs the equivalent closed form `offset + base·ratio^h`.
    pub fn to_closed_form(&self) -> ClosedForm {
        ClosedForm {
            loop_id: self.loop_id,
            coeffs: Coeffs::one(self.offset.clone()),
            geo: vec![(self.ratio, self.base.clone())],
        }
    }

    /// The additive step of the underlying recurrence `v ← ratio·v + step`,
    /// recovered from the fixed point: `step = offset·(1 − ratio)`.
    pub fn step(&self) -> Option<SymPoly> {
        let one_minus_r = Rational::ONE.checked_sub(&self.ratio).ok()?;
        self.offset.checked_scale(&one_minus_r).ok()
    }

    /// The initial value `v(0) = base + offset`.
    pub fn initial_value(&self) -> SymPoly {
        self.base
            .checked_add(&self.offset)
            .unwrap_or_else(|_| SymPoly::zero())
    }
}

/// The classification of one SSA value with respect to one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Class {
    /// Loop-invariant, with its symbolic value.
    Invariant(SymPoly),
    /// A (linear, polynomial, or geometric) induction variable.
    Induction(ClosedForm),
    /// The general affine recurrence `v ← ratio·v + step` with a genuine
    /// mix of geometric and constant parts (ROADMAP item 2).
    MixedGeometric(MixedGeometric),
    /// A wrap-around variable (§4.1): for the first `order` iterations the
    /// value is off-sequence; afterwards it behaves as `steady`, delayed
    /// by `order` iterations.
    WrapAround {
        /// The wrap-around order (1 = classic `iml` pattern).
        order: u32,
        /// The class the variable settles into, expressed at the *source*
        /// iteration (use `steady(h - order)` after the initial segment).
        steady: Box<Class>,
        /// The initial value(s) observed during the initial segment
        /// (first entry is the iteration-0 value).
        initials: Vec<SymPoly>,
    },
    /// A member of a periodic family (§4.2), including flip-flops
    /// (period 2).
    Periodic(Periodic),
    /// Monotonically increasing or decreasing (§4.4).
    Monotonic(Monotonic),
    /// Not classified.
    Unknown,
}

impl Class {
    /// Whether this is any induction expression (invariant counts as the
    /// degenerate case).
    pub fn is_induction(&self) -> bool {
        matches!(
            self,
            Class::Induction(_) | Class::Invariant(_) | Class::MixedGeometric(_)
        )
    }

    /// The closed form, promoting invariants to degree-0 forms.
    pub fn closed_form(&self, loop_id: Loop) -> Option<ClosedForm> {
        match self {
            Class::Induction(cf) => Some(cf.clone()),
            Class::Invariant(p) => Some(ClosedForm::constant(loop_id, p.clone())),
            Class::MixedGeometric(mg) => Some(mg.to_closed_form()),
            _ => None,
        }
    }

    /// Normalizes `Induction` forms that are actually invariant, and
    /// promotes genuinely mixed geometric-linear forms to
    /// [`Class::MixedGeometric`].
    pub fn normalized(self) -> Class {
        match self {
            Class::Induction(cf) if cf.is_invariant() => Class::Invariant(cf.coeffs[0].clone()),
            Class::Induction(cf)
                if cf.degree() == 0
                    && cf.geo.len() == 1
                    && !cf.coeffs[0].is_zero()
                    && cf.geo[0].0 != Rational::from_integer(-1) =>
            {
                // ClosedForm normalization already guarantees the base is
                // ∉ {0, 1} and the geometric coefficient nonzero; the
                // guard above adds a nonzero fixed point (otherwise pure
                // geometric) and excludes the alternating ratio −1.
                let (ratio, base) = cf.geo[0].clone();
                Class::MixedGeometric(MixedGeometric {
                    loop_id: cf.loop_id,
                    base,
                    ratio,
                    offset: cf.coeffs[0].clone(),
                })
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_algebra::SymId;
    use biv_ir::EntityId;

    fn lp() -> Loop {
        Loop::from_index(0)
    }

    fn c(v: i128) -> SymPoly {
        SymPoly::from_integer(v)
    }

    #[test]
    fn linear_basics() {
        let f = ClosedForm::linear(lp(), c(3), c(2));
        assert!(f.is_linear());
        assert_eq!(f.eval_at(0).unwrap(), c(3));
        assert_eq!(f.eval_at(5).unwrap(), c(13));
        assert_eq!(f.linear_step().unwrap(), &c(2));
    }

    #[test]
    fn normalization_trims_and_folds() {
        let f = ClosedForm::from_parts(
            lp(),
            vec![c(1), c(0), c(0)],
            vec![(Rational::ONE, c(5)), (Rational::from_integer(2), c(0))],
        );
        assert!(f.is_invariant());
        assert_eq!(f.coeffs[0], c(6)); // base-1 geo folded into constant
        assert!(f.geo.is_empty());
    }

    #[test]
    fn add_and_scale() {
        let a = ClosedForm::linear(lp(), c(1), c(2));
        let b = ClosedForm::linear(lp(), c(3), c(4));
        let s = a.add(&b).unwrap();
        assert_eq!(s.eval_at(2).unwrap(), c(1 + 4 + 3 + 8));
        let d = a.scale(&c(3)).unwrap();
        assert_eq!(d.eval_at(1).unwrap(), c(9));
    }

    #[test]
    fn mul_linear_linear_gives_quadratic() {
        // (1 + 2h)(3 + h) = 3 + 7h + 2h^2
        let a = ClosedForm::linear(lp(), c(1), c(2));
        let b = ClosedForm::linear(lp(), c(3), c(1));
        let p = a.mul(&b).unwrap();
        assert_eq!(p.degree(), 2);
        assert_eq!(p.coeffs[0], c(3));
        assert_eq!(p.coeffs[1], c(7));
        assert_eq!(p.coeffs[2], c(2));
    }

    #[test]
    fn mul_geo_by_linear_unrepresentable() {
        let geo = ClosedForm::from_parts(lp(), vec![c(0)], vec![(Rational::from_integer(2), c(1))]);
        let lin = ClosedForm::linear(lp(), c(0), c(1));
        assert!(geo.mul(&lin).is_none());
        // But geo by constant is fine.
        let konst = ClosedForm::constant(lp(), c(5));
        let scaled = geo.mul(&konst).unwrap();
        assert_eq!(scaled.eval_at(3).unwrap(), c(40));
    }

    #[test]
    fn geo_times_geo_multiplies_bases() {
        let g2 = ClosedForm::from_parts(lp(), vec![c(0)], vec![(Rational::from_integer(2), c(1))]);
        let g3 = ClosedForm::from_parts(lp(), vec![c(0)], vec![(Rational::from_integer(3), c(1))]);
        let p = g2.mul(&g3).unwrap();
        assert_eq!(p.eval_at(2).unwrap(), c(36));
    }

    #[test]
    fn eval_sym_polynomial() {
        let f = ClosedForm::from_parts(lp(), vec![c(0), c(0), c(1)], vec![]); // h^2
        let n = SymPoly::symbol(SymId(7));
        let v = f.eval_at_sym(&n).unwrap();
        // n^2
        assert_eq!(v, n.checked_mul(&n).unwrap());
    }

    #[test]
    fn eval_sym_geo_requires_constant() {
        let f = ClosedForm::from_parts(lp(), vec![c(0)], vec![(Rational::from_integer(2), c(1))]);
        assert!(f.eval_at_sym(&SymPoly::symbol(SymId(1))).is_none());
        assert_eq!(f.eval_at_sym(&c(5)).unwrap(), c(32));
    }

    #[test]
    fn shift_back_linear() {
        let f = ClosedForm::linear(lp(), c(10), c(3));
        let s = f.shift_back().unwrap();
        assert_eq!(s.eval_at(1).unwrap(), c(10));
        assert_eq!(s.eval_at(0).unwrap(), c(7));
    }

    #[test]
    fn shift_back_geometric() {
        // 4·2^h shifted back: 2·2^h
        let f = ClosedForm::from_parts(lp(), vec![c(0)], vec![(Rational::from_integer(2), c(4))]);
        let s = f.shift_back().unwrap();
        assert_eq!(s.eval_at(0).unwrap(), c(2));
        assert_eq!(s.eval_at(2).unwrap(), c(8));
    }

    #[test]
    fn nondecreasing_checks() {
        assert!(ClosedForm::linear(lp(), c(0), c(1)).is_nondecreasing());
        assert!(ClosedForm::linear(lp(), c(0), c(0)).is_nondecreasing());
        assert!(!ClosedForm::linear(lp(), c(0), c(-1)).is_nondecreasing());
        // h^2 is non-decreasing for h >= 0.
        assert!(ClosedForm::from_parts(lp(), vec![c(0), c(0), c(1)], vec![]).is_nondecreasing());
        // 2^h increasing.
        assert!(
            ClosedForm::from_parts(lp(), vec![c(0)], vec![(Rational::from_integer(2), c(1))])
                .is_nondecreasing()
        );
        // -2^h decreasing.
        assert!(!ClosedForm::from_parts(
            lp(),
            vec![c(0)],
            vec![(Rational::from_integer(2), c(-1))]
        )
        .is_nondecreasing());
        // Symbolic step: unknown, conservatively false.
        assert!(!ClosedForm::linear(lp(), c(0), SymPoly::symbol(SymId(0))).is_nondecreasing());
    }

    #[test]
    fn class_normalization() {
        let cls = Class::Induction(ClosedForm::constant(lp(), c(5))).normalized();
        assert_eq!(cls, Class::Invariant(c(5)));
    }

    #[test]
    fn mixed_geometric_promotion() {
        // 3 + 2·2^h — the recurrence v ← 2v − 3 from v(0) = 5.
        let cf = ClosedForm::from_parts(lp(), vec![c(3)], vec![(Rational::from_integer(2), c(2))]);
        let cls = Class::Induction(cf.clone()).normalized();
        let Class::MixedGeometric(mg) = &cls else {
            panic!("expected MixedGeometric, got {cls:?}");
        };
        assert_eq!(mg.base, c(2));
        assert_eq!(mg.ratio, Rational::from_integer(2));
        assert_eq!(mg.offset, c(3));
        assert_eq!(mg.initial_value(), c(5));
        // step = offset·(1 − ratio) = 3·(1−2) = −3.
        assert_eq!(mg.step().unwrap(), c(-3));
        assert_eq!(mg.to_closed_form(), cf);
        assert_eq!(cls.closed_form(lp()).unwrap(), cf);
        assert!(cls.is_induction());
    }

    #[test]
    fn pure_geometric_not_promoted() {
        // 2^h with zero fixed point stays a plain Induction form.
        let cf = ClosedForm::from_parts(lp(), vec![c(0)], vec![(Rational::from_integer(2), c(1))]);
        let cls = Class::Induction(cf.clone()).normalized();
        assert_eq!(cls, Class::Induction(cf));
    }

    #[test]
    fn alternating_ratio_not_promoted() {
        // 1 + (−1)^h alternates; promotion refuses ratio −1.
        let cf = ClosedForm::from_parts(lp(), vec![c(1)], vec![(Rational::from_integer(-1), c(1))]);
        let cls = Class::Induction(cf.clone()).normalized();
        assert_eq!(cls, Class::Induction(cf));
    }

    #[test]
    fn nonconstant_poly_part_not_promoted() {
        // h + 2^h has a degree-1 polynomial part: not the mixed shape.
        let cf = ClosedForm::from_parts(
            lp(),
            vec![c(0), c(1)],
            vec![(Rational::from_integer(2), c(1))],
        );
        let cls = Class::Induction(cf.clone()).normalized();
        assert_eq!(cls, Class::Induction(cf));
    }

    #[test]
    fn periodic_period() {
        let p = Periodic {
            loop_id: lp(),
            values: vec![c(1), c(2), c(3)],
            phase: 1,
        };
        assert_eq!(p.period(), 3);
    }
}
