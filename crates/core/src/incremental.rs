//! Incremental per-nest re-analysis.
//!
//! The batch driver memoizes at whole-function granularity: any edit,
//! however local, re-runs SSA construction and classification for the
//! entire function. This module refines the granularity to **top-level
//! loop nests**. A function is partitioned into
//!
//! - a **skeleton** — every block outside any top-level natural loop
//!   (parameter setup, init code between nests, epilogue), and
//! - one **region** per top-level nest — the nest's blocks, including
//!   all inner loops.
//!
//! Each region gets a **region hash** extending the structural-hash
//! machinery of [`crate::batch`]: a position-independent digest of the
//! skeleton, the nest's own blocks, and the blocks of every nest it
//! (transitively) depends on through scalar or array dataflow. Variables
//! are numbered by first occurrence in the skeleton so the binding
//! between init code and nest stays part of the key; blocks are numbered
//! by rank within their region so an edit that grows one nest does not
//! shift the hashes of its neighbors.
//!
//! [`analyze_incremental`] then re-runs SSA construction and
//! classification only for nests whose region hash missed the cache. A
//! changed nest is analyzed on a **compacted slice** of the function:
//! the nest and its dependency nests, plus only the skeleton
//! instructions their classification can observe. Every other nest is
//! elided (its header becomes a jump stub to its unique exit target and
//! is contracted away), skeleton code feeding only elided nests is
//! pruned, and blocks, variables, and arrays are renumbered densely —
//! so re-analysis cost scales with the edited nest, not the function.
//! A **roster** component in every region hash (nest count, headers,
//! exit targets) pins the slice shape, so adding or removing a nest
//! invalidates everything rather than splicing stale summaries.
//! Unchanged nests splice their cached summaries back in, so a
//! one-nest edit on an N-nest function costs one slice analysis instead
//! of N.
//!
//! Correctness invariant (pinned by the property suite): a warm
//! [`IncrementalState`] produces byte-identical
//! [`IncrementalReport::render_nests`] output to a cold one for the same
//! input, for every mutation sequence. Deadline-degraded summaries are
//! never cached (same [`StructuralSummary::cacheable`] gate as the batch
//! driver), so nondeterministic degradation cannot be spliced back in.
//!
//! Functions that defeat slicing — a nest with several distinct exit
//! targets, or no loops at all — degrade to a single whole-function
//! region keyed by [`structural_hash`]: still memoized, just not
//! incremental.

use std::collections::HashSet;
use std::sync::Arc;

use biv_ir::dom::DomTree;
use biv_ir::loops::LoopForest;
use biv_ir::{Array, Block, EntityId, Function, Inst, Operand, Terminator, Var};

use crate::batch::{
    render_summary_body, structural_hash, summarize, summarize_filtered, StructuralCache,
    StructuralSummary,
};
use crate::config::AnalysisConfig;

/// Sentinel for "block is in the skeleton, not in any nest".
const NO_NEST: u32 = u32::MAX;

/// One top-level loop nest of a function, with its region hash.
#[derive(Debug, Clone)]
pub struct NestRegion {
    /// Display name (the header's source label when present).
    pub name: String,
    /// The nest's header block.
    pub header: Block,
    /// The region hash: skeleton + this nest + its dependency nests.
    pub region_hash: u64,
    /// The nest's blocks (including inner loops), sorted by index.
    blocks: Vec<Block>,
    /// Ordinals of nests this one transitively depends on, sorted.
    deps: Vec<usize>,
    /// The single block every exit edge targets; `None` when the nest
    /// has no exit edges at all (code after it is unreachable).
    exit_target: Option<Block>,
}

impl NestRegion {
    /// The nest's blocks (including inner-loop blocks), sorted by index.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Ordinals of the nests this one transitively depends on.
    pub fn deps(&self) -> &[usize] {
        &self.deps
    }
}

/// The per-nest region partition of a function.
#[derive(Debug, Clone)]
pub struct RegionMap {
    /// Top-level nests in header-block order.
    pub nests: Vec<NestRegion>,
    /// Block index → owning nest ordinal ([`NO_NEST`] for skeleton).
    nest_of_block: Vec<u32>,
    /// Whether per-nest slicing is possible; when `false`, callers must
    /// fall back to whole-function analysis.
    sliceable: bool,
}

impl RegionMap {
    /// Partitions `func` into skeleton + top-level nest regions and
    /// computes every region hash. One linear pass over the function
    /// (plus dominator-tree and loop-forest construction).
    pub fn compute(func: &Function) -> RegionMap {
        let cfg = biv_ir::cfg::Cfg::compute(func);
        let dom = DomTree::compute_with(func, &cfg);
        let forest = LoopForest::compute_with(func, &dom, &cfg);
        let nblocks = func.blocks.len();

        // Top-level nests in header-block order.
        let mut tops: Vec<_> = forest.iter().filter(|(_, d)| d.parent.is_none()).collect();
        tops.sort_by_key(|(_, d)| d.header.index());

        let mut nest_of_block = vec![NO_NEST; nblocks];
        for (ordinal, (_, data)) in tops.iter().enumerate() {
            for &b in &data.blocks {
                nest_of_block[b.index()] = ordinal as u32;
            }
        }

        let mut sliceable = true;
        // Slices drop the interior blocks of elided nests, so they are
        // only well formed when control enters a nest through its
        // header and the entry block belongs to the skeleton.
        if nest_of_block[func.entry().index()] != NO_NEST {
            sliceable = false;
        }
        for (b, data) in func.blocks.iter() {
            let from = nest_of_block[b.index()];
            for s in data.term.successors() {
                let to = nest_of_block[s.index()];
                if to != NO_NEST && to != from && s != tops[to as usize].1.header {
                    sliceable = false;
                }
            }
        }
        let mut nests: Vec<NestRegion> = Vec::with_capacity(tops.len());
        for (l, data) in &tops {
            let mut blocks = data.blocks.clone();
            blocks.sort_by_key(|b| b.index());
            // Every exit edge must share one target, or the nest cannot
            // be replaced by a stub jump when another nest is analyzed.
            let mut exit_target = None;
            for (_, to) in forest.exit_edges(func, *l) {
                match exit_target {
                    None => exit_target = Some(to),
                    Some(t) if t == to => {}
                    Some(_) => sliceable = false,
                }
            }
            nests.push(NestRegion {
                name: forest.name(func, *l),
                header: data.header,
                region_hash: 0,
                blocks,
                deps: Vec::new(),
                exit_target,
            });
        }

        let mut regions = RegionMap {
            nests,
            nest_of_block,
            sliceable,
        };
        if regions.sliceable && !regions.nests.is_empty() {
            regions.compute_deps(func);
            regions.compute_hashes(func);
        }
        regions
    }

    /// Whether per-nest slicing applies (at least one nest, unique exit
    /// targets everywhere).
    pub fn is_sliceable(&self) -> bool {
        self.sliceable && !self.nests.is_empty()
    }

    /// The nest ordinal owning `block`, if any.
    pub fn nest_of(&self, block: Block) -> Option<usize> {
        match self.nest_of_block.get(block.index()) {
            Some(&n) if n != NO_NEST => Some(n as usize),
            _ => None,
        }
    }

    /// Scalar- and array-dataflow dependencies between nests, closed
    /// transitively: a nest depends on every nest that writes a variable
    /// or array it reads.
    ///
    /// Dense throughout — (entity, nest) contact pairs deduplicated by
    /// stamp arrays, writer lookup as CSR, closure with a per-nest visit
    /// stamp — because this runs on every [`analyze_incremental`] call
    /// and hash-map traffic here dominated the warm-update budget.
    fn compute_deps(&mut self, func: &Function) {
        let n = self.nests.len();
        let nvars = func.vars.len();
        let narrays = func.arrays.len();
        // Deduplicated (entity, nest) contact pairs. Nests are scanned
        // one at a time, so stamping an entity's mark with the current
        // ordinal dedupes without clearing between nests.
        let mut var_reads: Vec<(u32, u32)> = Vec::new();
        let mut var_writes: Vec<(u32, u32)> = Vec::new();
        let mut arr_reads: Vec<(u32, u32)> = Vec::new();
        let mut arr_writes: Vec<(u32, u32)> = Vec::new();
        let mut read_mark = vec![NO_NEST; nvars];
        let mut write_mark = vec![NO_NEST; nvars];
        let mut aread_mark = vec![NO_NEST; narrays];
        let mut awrite_mark = vec![NO_NEST; narrays];
        let mut scratch = Vec::new();
        for (m, nest) in self.nests.iter().enumerate() {
            let m32 = m as u32;
            let mut note_reads = |scratch: &[Var], read_mark: &mut [u32]| {
                for v in scratch {
                    let i = v.index();
                    if read_mark[i] != m32 {
                        read_mark[i] = m32;
                        var_reads.push((i as u32, m32));
                    }
                }
            };
            for &b in &nest.blocks {
                let data = &func.blocks[b];
                for inst in &data.insts {
                    scratch.clear();
                    inst.uses(&mut scratch);
                    note_reads(&scratch, &mut read_mark);
                    if let Some(v) = inst.def() {
                        let i = v.index();
                        if write_mark[i] != m32 {
                            write_mark[i] = m32;
                            var_writes.push((i as u32, m32));
                        }
                    }
                    match inst {
                        Inst::Load { array, .. } => {
                            let i = array.index();
                            if aread_mark[i] != m32 {
                                aread_mark[i] = m32;
                                arr_reads.push((i as u32, m32));
                            }
                        }
                        Inst::Store { array, .. } => {
                            let i = array.index();
                            if awrite_mark[i] != m32 {
                                awrite_mark[i] = m32;
                                arr_writes.push((i as u32, m32));
                            }
                        }
                        _ => {}
                    }
                }
                scratch.clear();
                data.term.uses(&mut scratch);
                note_reads(&scratch, &mut read_mark);
            }
        }
        // CSR over writers: entity → the nests writing it.
        let build_csr = |pairs: &[(u32, u32)], entities: usize| {
            let mut off = vec![0u32; entities + 1];
            for &(e, _) in pairs {
                off[e as usize + 1] += 1;
            }
            for i in 0..entities {
                off[i + 1] += off[i];
            }
            let mut data = vec![0u32; pairs.len()];
            let mut cursor = off.clone();
            for &(e, m) in pairs {
                data[cursor[e as usize] as usize] = m;
                cursor[e as usize] += 1;
            }
            (off, data)
        };
        let (voff, vdata) = build_csr(&var_writes, nvars);
        let (aoff, adata) = build_csr(&arr_writes, narrays);
        // Direct edges reader → writer. `edge_mark[w]` stamped with the
        // reading nest dedupes within each pass; the rare duplicate that
        // survives across the var/array passes is harmless (the closure
        // below dedupes visits anyway).
        let mut direct: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut edge_mark = vec![NO_NEST; n];
        let mut add_edges = |pairs: &[(u32, u32)], off: &[u32], data: &[u32]| {
            for &(e, m) in pairs {
                let (lo, hi) = (off[e as usize] as usize, off[e as usize + 1] as usize);
                for &w in &data[lo..hi] {
                    if w != m && edge_mark[w as usize] != m {
                        edge_mark[w as usize] = m;
                        direct[m as usize].push(w);
                    }
                }
            }
        };
        add_edges(&var_reads, &voff, &vdata);
        add_edges(&arr_reads, &aoff, &adata);
        // Transitive closure by DFS, one visit stamp per origin nest.
        let mut vis = vec![NO_NEST; n];
        let mut stack: Vec<u32> = Vec::new();
        for m in 0..n {
            let m32 = m as u32;
            stack.clear();
            stack.extend_from_slice(&direct[m]);
            let mut deps: Vec<usize> = Vec::new();
            while let Some(d) = stack.pop() {
                let du = d as usize;
                if du == m || vis[du] == m32 {
                    continue;
                }
                vis[du] = m32;
                deps.push(du);
                stack.extend_from_slice(&direct[du]);
            }
            deps.sort_unstable();
            self.nests[m].deps = deps;
        }
    }

    /// Computes the skeleton hash, every per-nest structural hash, and
    /// from them every region hash.
    fn compute_hashes(&mut self, func: &Function) {
        let nblocks = func.blocks.len();
        // Rank of each block within its region, so hashes survive index
        // shifts caused by edits elsewhere in the function.
        let mut rank = vec![0u32; nblocks];
        let mut skel_next = 0u32;
        let mut nest_next = vec![0u32; self.nests.len()];
        for (b, _) in func.blocks.iter() {
            let i = b.index();
            match self.nest_of_block[i] {
                NO_NEST => {
                    rank[i] = skel_next;
                    skel_next += 1;
                }
                m => {
                    rank[i] = nest_next[m as usize];
                    nest_next[m as usize] += 1;
                }
            }
        }
        // One packed word per target: (nest ordinal | rank) with a
        // skeleton/nest tag in the low bit. Nest ordinals and ranks
        // both fit u32, so the packing is exact.
        let encode_target = |h: &mut Mix64, b: Block| {
            let i = b.index();
            match self.nest_of_block[i] {
                NO_NEST => h.write_u64(u64::from(rank[i]) << 1),
                m => h.write_u64((u64::from(m) << 32 | u64::from(rank[i])) << 1 | 1),
            }
        };

        // Skeleton canonical numbering: parameters first, then first
        // occurrence over skeleton blocks in index order. This binds a
        // nest to the init code feeding it: two structurally identical
        // nests reading different skeleton variables hash differently.
        let mut canon = SkeletonCanon::new(func);
        for &p in func.params() {
            canon.var(p);
        }
        let mut skel = Mix64::new();
        skel.write_usize(func.params().len());
        for (b, data) in func.blocks.iter() {
            if self.nest_of_block[b.index()] != NO_NEST {
                continue;
            }
            skel.write_u64(u64::from(rank[b.index()]));
            hash_label(&mut skel, data.label.as_deref());
            skel.write_usize(data.insts.len());
            for inst in &data.insts {
                hash_inst(&mut skel, &mut canon, inst);
            }
            hash_term(&mut skel, &mut canon, &data.term, &encode_target);
        }
        let skeleton_hash = skel.finish();

        // Per-nest structural hashes over the frozen skeleton numbering;
        // nest-private variables get a local overlay.
        let mut nest_hashes = Vec::with_capacity(self.nests.len());
        let mut local = NestCanon::new(&canon);
        for nest in &self.nests {
            local.next_nest();
            let mut h = Mix64::new();
            for &b in &nest.blocks {
                let data = &func.blocks[b];
                h.write_u64(u64::from(rank[b.index()]));
                hash_label(&mut h, data.label.as_deref());
                h.write_usize(data.insts.len());
                for inst in &data.insts {
                    hash_inst(&mut h, &mut local, inst);
                }
                hash_term(&mut h, &mut local, &data.term, &encode_target);
            }
            nest_hashes.push(h.finish());
        }

        // The nest roster pins the slice shape: how many top-level
        // nests exist, their headers, and where each one exits. Adding
        // or removing a nest rebuilds every slice (stub placement,
        // block numbering), so it must invalidate every region even
        // when skeleton and member hashes are unchanged.
        let mut roster = Mix64::new();
        roster.write_usize(self.nests.len());
        for (m, nest) in self.nests.iter().enumerate() {
            roster.write_usize(m);
            hash_label(&mut roster, func.blocks[nest.header].label.as_deref());
            match nest.exit_target {
                Some(t) => {
                    roster.write_u8(1);
                    encode_target(&mut roster, t);
                }
                None => roster.write_u8(0),
            }
        }
        let roster_hash = roster.finish();

        // Region hash: skeleton + roster + dependency-closure nests +
        // the nest itself (repeated last, marking which member is
        // primary).
        let mut members: Vec<usize> = Vec::new();
        for k in 0..self.nests.len() {
            let mut h = Mix64::new();
            h.write_u64(skeleton_hash);
            h.write_u64(roster_hash);
            h.write_usize(self.nests[k].deps.len() + 1);
            members.clear();
            members.extend_from_slice(&self.nests[k].deps);
            members.push(k);
            members.sort_unstable();
            for &m in &members {
                h.write_u64(nest_hashes[m]);
            }
            h.write_u64(nest_hashes[k]);
            self.nests[k].region_hash = h.finish();
        }
    }

    /// Builds the compacted slice for analyzing nest `primary`: the
    /// function restricted to what the nest's classification can
    /// observe. Nests outside `primary`'s dependency closure are
    /// elided entirely (their headers become jump stubs to their exit
    /// target and are then contracted away); skeleton instructions
    /// whose defs no kept nest or surviving terminator (transitively)
    /// reads are pruned, and skeleton blocks emptied by that pruning
    /// are contracted too. Blocks, variables, and arrays are
    /// renumbered densely, so analysis cost scales with the slice, not
    /// the original function.
    ///
    /// Slice construction is a pure function of the skeleton content,
    /// the closure nests' content, and the nest roster — exactly the
    /// inputs folded into [`NestRegion::region_hash`] — so equal
    /// region hashes yield byte-identical slices and summaries.
    ///
    /// # Panics
    ///
    /// Panics when the map is not sliceable or `primary` is out of range.
    pub fn slice(&self, func: &Function, primary: usize) -> FunctionSlice {
        assert!(self.is_sliceable(), "slice() needs a sliceable region map");
        let n = self.nests.len();
        let nblocks = func.blocks.len();
        let nvars = func.vars.len();
        let entry = func.entry();
        let mut kept_nest = vec![false; n];
        kept_nest[primary] = true;
        for &d in &self.nests[primary].deps {
            kept_nest[d] = true;
        }

        // Which variables must keep their defining skeleton code:
        // seeded from kept-nest uses and every surviving terminator,
        // closed backward through skeleton defs.
        let mut needed = vec![false; nvars];
        let mut scratch: Vec<Var> = Vec::new();
        for (b, data) in func.blocks.iter() {
            let owner = self.nest_of_block[b.index()];
            if owner != NO_NEST && !kept_nest[owner as usize] {
                continue; // elided: the stub reads nothing
            }
            if owner != NO_NEST {
                for inst in &data.insts {
                    scratch.clear();
                    inst.uses(&mut scratch);
                    for v in &scratch {
                        needed[v.index()] = true;
                    }
                }
            }
            scratch.clear();
            data.term.uses(&mut scratch);
            for v in &scratch {
                needed[v.index()] = true;
            }
        }
        loop {
            let mut changed = false;
            for (b, data) in func.blocks.iter() {
                if self.nest_of_block[b.index()] != NO_NEST {
                    continue;
                }
                for inst in &data.insts {
                    let Some(d) = inst.def() else { continue };
                    if !needed[d.index()] {
                        continue;
                    }
                    scratch.clear();
                    inst.uses(&mut scratch);
                    for v in &scratch {
                        if !needed[v.index()] {
                            needed[v.index()] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // A skeleton instruction survives iff its def is needed (stores
        // never are: no kept nest's scalar classification reads memory
        // the skeleton wrote).
        let keep_skel_inst =
            |inst: &Inst| -> bool { inst.def().is_some_and(|d| needed[d.index()]) };

        // Forwarder marking: blocks reduced to a bare unconditional
        // jump get contracted out of the CFG. Covers elided-nest stub
        // headers with a known exit, and skeleton blocks emptied by
        // pruning — but not blocks that were empty jumps to begin
        // with, so a slice that keeps everything stays byte-identical
        // to the original function.
        let mut forward: Vec<Option<Block>> = vec![None; nblocks];
        for (b, data) in func.blocks.iter() {
            let i = b.index();
            match self.nest_of_block[i] {
                NO_NEST => {
                    if b == entry || data.insts.is_empty() {
                        continue;
                    }
                    let Terminator::Jump(t) = data.term else {
                        continue;
                    };
                    if !data.insts.iter().any(keep_skel_inst) {
                        forward[i] = Some(t);
                    }
                }
                m if kept_nest[m as usize] => {}
                m => {
                    let nest = &self.nests[m as usize];
                    if b == nest.header {
                        if let Some(t) = nest.exit_target {
                            forward[i] = Some(t);
                        }
                        // No exit target: the stub stays as a return
                        // sink. Interior blocks are only reachable
                        // through the header, so they simply drop.
                    }
                }
            }
        }
        // Resolve forwarder chains to their final target, memoized,
        // with a cycle guard (a cycle of empty jumps — only possible in
        // unreachable code — keeps one member as a self-loop).
        let mut resolved: Vec<Option<Block>> = vec![None; nblocks];
        let mut on_walk = vec![u32::MAX; nblocks];
        let mut path: Vec<usize> = Vec::new();
        for start in 0..nblocks {
            if forward[start].is_none() || resolved[start].is_some() {
                continue;
            }
            path.clear();
            let mut cur = start;
            let final_target;
            loop {
                on_walk[cur] = start as u32;
                path.push(cur);
                let t = forward[cur].expect("walk only visits forwarders");
                let ti = t.index();
                if let Some(r) = resolved[ti] {
                    final_target = r;
                    break;
                }
                if forward[ti].is_none() {
                    final_target = t;
                    break;
                }
                if on_walk[ti] == start as u32 {
                    forward[ti] = None;
                    final_target = t;
                    break;
                }
                cur = ti;
            }
            for &p in &path {
                if forward[p].is_some() {
                    resolved[p] = Some(final_target);
                }
            }
        }
        let retarget = |b: Block| resolved[b.index()].unwrap_or(b);

        // Reachability from the entry over retargeted edges: forwarder
        // blocks and elided interiors fall out here.
        let mut reach = vec![false; nblocks];
        let mut queue: Vec<Block> = vec![entry];
        reach[entry.index()] = true;
        while let Some(b) = queue.pop() {
            let owner = self.nest_of_block[b.index()];
            if owner != NO_NEST && !kept_nest[owner as usize] {
                continue; // surviving stub headers end in a bare return
            }
            for s in func.blocks[b].term.successors() {
                let r = retarget(s);
                if !reach[r.index()] {
                    reach[r.index()] = true;
                    queue.push(r);
                }
            }
        }

        // Materialize the compacted function: blocks in original index
        // order, parameters first, variables and arrays renumbered by
        // first occurrence.
        let mut out = Function::new(func.name());
        let mut new_block = vec![NO_NEST; nblocks];
        let mut order: Vec<Block> = Vec::new();
        for (b, _) in func.blocks.iter() {
            if !reach[b.index()] {
                continue;
            }
            let nb = if b == entry {
                out.entry()
            } else {
                out.new_block()
            };
            new_block[b.index()] = nb.index() as u32;
            order.push(b);
        }
        let mut var_map = vec![NONE_ID; nvars];
        for &p in func.params() {
            var_map[p.index()] = out.new_param(func.vars[p].name.clone()).index() as u32;
        }
        let mut array_map = vec![NONE_ID; func.arrays.len()];
        for &b in &order {
            let i = b.index();
            let nb = Block::from_index(new_block[i] as usize);
            let data = &func.blocks[b];
            out.blocks[nb].label = data.label.clone();
            let owner = self.nest_of_block[i];
            if owner != NO_NEST && !kept_nest[owner as usize] {
                out.blocks[nb].term = Terminator::Return;
                continue;
            }
            let keep_all = owner != NO_NEST;
            let mut insts = Vec::new();
            for inst in &data.insts {
                if keep_all || keep_skel_inst(inst) {
                    insts.push(remap_inst(
                        inst,
                        func,
                        &mut out,
                        &mut var_map,
                        &mut array_map,
                    ));
                }
            }
            let term = remap_term(&data.term, func, &mut out, &mut var_map, |t| {
                Block::from_index(new_block[retarget(t).index()] as usize)
            });
            out.blocks[nb].insts = insts;
            out.blocks[nb].term = term;
        }
        let keep: HashSet<Block> = self.nests[primary]
            .blocks
            .iter()
            .filter(|b| reach[b.index()])
            .map(|b| Block::from_index(new_block[b.index()] as usize))
            .collect();
        FunctionSlice { func: out, keep }
    }
}

/// A compacted analysis slice for one nest, as built by
/// [`RegionMap::slice`].
#[derive(Debug, Clone)]
pub struct FunctionSlice {
    /// The compacted function.
    pub func: Function,
    /// The primary nest's blocks under `func`'s numbering — the filter
    /// set for [`summarize_filtered`]-style loop selection.
    pub keep: HashSet<Block>,
}

/// Remaps a variable into the slice, allocating on first occurrence.
fn map_var(v: Var, func: &Function, out: &mut Function, var_map: &mut [u32]) -> Var {
    let i = v.index();
    if var_map[i] == NONE_ID {
        var_map[i] = out.new_var(func.vars[v].name.clone()).index() as u32;
    }
    Var::from_index(var_map[i] as usize)
}

/// Remaps an array into the slice, allocating on first occurrence.
fn map_array(a: Array, func: &Function, out: &mut Function, array_map: &mut [u32]) -> Array {
    let i = a.index();
    if array_map[i] == NONE_ID {
        let data = &func.arrays[a];
        array_map[i] = out.new_array(data.name.clone(), data.dims).index() as u32;
    }
    Array::from_index(array_map[i] as usize)
}

fn map_operand(op: &Operand, func: &Function, out: &mut Function, var_map: &mut [u32]) -> Operand {
    match op {
        Operand::Var(v) => Operand::Var(map_var(*v, func, out, var_map)),
        Operand::Const(c) => Operand::Const(*c),
    }
}

fn remap_inst(
    inst: &Inst,
    func: &Function,
    out: &mut Function,
    var_map: &mut [u32],
    array_map: &mut [u32],
) -> Inst {
    match inst {
        Inst::Copy { dst, src } => Inst::Copy {
            src: map_operand(src, func, out, var_map),
            dst: map_var(*dst, func, out, var_map),
        },
        Inst::Neg { dst, src } => Inst::Neg {
            src: map_operand(src, func, out, var_map),
            dst: map_var(*dst, func, out, var_map),
        },
        Inst::Binary { dst, op, lhs, rhs } => Inst::Binary {
            op: *op,
            lhs: map_operand(lhs, func, out, var_map),
            rhs: map_operand(rhs, func, out, var_map),
            dst: map_var(*dst, func, out, var_map),
        },
        Inst::Load { dst, array, index } => Inst::Load {
            array: map_array(*array, func, out, array_map),
            index: index
                .iter()
                .map(|op| map_operand(op, func, out, var_map))
                .collect(),
            dst: map_var(*dst, func, out, var_map),
        },
        Inst::Store {
            array,
            index,
            value,
        } => Inst::Store {
            array: map_array(*array, func, out, array_map),
            index: index
                .iter()
                .map(|op| map_operand(op, func, out, var_map))
                .collect(),
            value: map_operand(value, func, out, var_map),
        },
    }
}

fn remap_term(
    term: &Terminator,
    func: &Function,
    out: &mut Function,
    var_map: &mut [u32],
    map_block: impl Fn(Block) -> Block,
) -> Terminator {
    match term {
        Terminator::Jump(b) => Terminator::Jump(map_block(*b)),
        Terminator::Branch {
            op,
            lhs,
            rhs,
            then_bb,
            else_bb,
        } => Terminator::Branch {
            op: *op,
            lhs: map_operand(lhs, func, out, var_map),
            rhs: map_operand(rhs, func, out, var_map),
            then_bb: map_block(*then_bb),
            else_bb: map_block(*else_bb),
        },
        Terminator::Return => Terminator::Return,
    }
}

/// Canonical ids for operands: variable and array identity by first
/// occurrence, shared between the skeleton pass and the per-nest passes.
trait CanonIds {
    fn var(&mut self, v: Var) -> u64;
    fn array(&mut self, a: Array) -> u64;
}

/// Sentinel for "entity has no canonical id yet" in the dense tables.
const NONE_ID: u32 = u32::MAX;

/// Word-at-a-time structural hasher for region hashing. Region hashes
/// are in-memory cache keys (never persisted, never rendered into
/// golden output), so this trades FNV's byte-serial multiply chain for
/// one xor-multiply-rotate step per word plus a splitmix-style final
/// avalanche — hashing is on the per-edit hot path and dominated
/// [`RegionMap::compute`] under the byte-at-a-time hasher.
///
/// Words alternate between two independent lanes so consecutive
/// multiplies overlap instead of forming one serial dependency chain;
/// `finish` folds the lanes and the word count together before the
/// avalanche, so sequences of different lengths (and the same words
/// split differently across lanes) stay distinct.
struct Mix64 {
    lanes: [u64; 2],
    words: u64,
}

impl Mix64 {
    fn new() -> Mix64 {
        Mix64 {
            lanes: [0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F],
            words: 0,
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let lane = &mut self.lanes[(self.words & 1) as usize];
        *lane = (*lane ^ v)
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .rotate_left(23);
        self.words += 1;
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn finish(&self) -> u64 {
        let mut z = self.lanes[0] ^ self.lanes[1].rotate_left(32) ^ self.words;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// First-occurrence numbering built while hashing the skeleton, backed
/// by dense per-arena tables (entity index → canonical id).
struct SkeletonCanon {
    vars: Vec<u32>,
    arrays: Vec<u32>,
    next_var: u32,
    next_array: u32,
}

impl SkeletonCanon {
    fn new(func: &Function) -> SkeletonCanon {
        SkeletonCanon {
            vars: vec![NONE_ID; func.vars.len()],
            arrays: vec![NONE_ID; func.arrays.len()],
            next_var: 0,
            next_array: 0,
        }
    }
}

impl CanonIds for SkeletonCanon {
    fn var(&mut self, v: Var) -> u64 {
        let slot = &mut self.vars[v.index()];
        if *slot == NONE_ID {
            *slot = self.next_var;
            self.next_var += 1;
        }
        u64::from(*slot)
    }

    fn array(&mut self, a: Array) -> u64 {
        let slot = &mut self.arrays[a.index()];
        if *slot == NONE_ID {
            *slot = self.next_array;
            self.next_array += 1;
        }
        u64::from(*slot)
    }
}

/// The frozen skeleton numbering plus a nest-local overlay, offset so
/// skeleton-bound and nest-private identities can never collide. Epoch
/// stamps reset the overlay between nests without reallocating.
struct NestCanon<'a> {
    skeleton: &'a SkeletonCanon,
    var_epoch: Vec<u32>,
    var_id: Vec<u32>,
    array_epoch: Vec<u32>,
    array_id: Vec<u32>,
    epoch: u32,
    next_var: u32,
    next_array: u32,
}

const LOCAL_CANON_BASE: u64 = 1 << 32;

impl<'a> NestCanon<'a> {
    fn new(skeleton: &'a SkeletonCanon) -> NestCanon<'a> {
        NestCanon {
            skeleton,
            var_epoch: vec![0; skeleton.vars.len()],
            var_id: vec![0; skeleton.vars.len()],
            array_epoch: vec![0; skeleton.arrays.len()],
            array_id: vec![0; skeleton.arrays.len()],
            epoch: 0,
            next_var: 0,
            next_array: 0,
        }
    }

    /// Starts a fresh overlay for the next nest (epoch 0 is never used,
    /// so stale stamps can't match).
    fn next_nest(&mut self) {
        self.epoch += 1;
        self.next_var = 0;
        self.next_array = 0;
    }
}

impl CanonIds for NestCanon<'_> {
    fn var(&mut self, v: Var) -> u64 {
        let i = v.index();
        let skel = self.skeleton.vars[i];
        if skel != NONE_ID {
            return u64::from(skel);
        }
        if self.var_epoch[i] != self.epoch {
            self.var_epoch[i] = self.epoch;
            self.var_id[i] = self.next_var;
            self.next_var += 1;
        }
        LOCAL_CANON_BASE + u64::from(self.var_id[i])
    }

    fn array(&mut self, a: Array) -> u64 {
        let i = a.index();
        let skel = self.skeleton.arrays[i];
        if skel != NONE_ID {
            return u64::from(skel);
        }
        if self.array_epoch[i] != self.epoch {
            self.array_epoch[i] = self.epoch;
            self.array_id[i] = self.next_array;
            self.next_array += 1;
        }
        LOCAL_CANON_BASE + u64::from(self.array_id[i])
    }
}

fn hash_label(h: &mut Mix64, label: Option<&str>) {
    match label {
        Some(label) => {
            h.write_u8(1);
            h.write_bytes(label.as_bytes());
        }
        None => h.write_u8(0),
    }
}

/// Tag bit marking an operand word as a canonical variable id.
/// Canonical ids stay far below 2^63 (the nest-local overlay starts at
/// 2^32), so the bit is free for vars; a constant can only alias a var
/// word for values within 2^34 of `i64::MIN`, which is acceptable for a
/// cache key (collisions are already possible at the hash level).
const OPERAND_VAR_TAG: u64 = 1 << 63;

fn hash_operand<C: CanonIds>(h: &mut Mix64, canon: &mut C, op: &Operand) {
    match op {
        Operand::Var(v) => h.write_u64(OPERAND_VAR_TAG | canon.var(*v)),
        Operand::Const(c) => h.write_u64(*c as u64),
    }
}

fn hash_inst<C: CanonIds>(h: &mut Mix64, canon: &mut C, inst: &Inst) {
    // One packed tag word per instruction (opcode / arity folded in),
    // one word per operand.
    match inst {
        Inst::Copy { dst, src } => {
            h.write_u64(10);
            hash_operand(h, canon, src);
            h.write_u64(canon.var(*dst));
        }
        Inst::Neg { dst, src } => {
            h.write_u64(11);
            hash_operand(h, canon, src);
            h.write_u64(canon.var(*dst));
        }
        Inst::Binary { dst, op, lhs, rhs } => {
            h.write_u64(12 | (*op as u64) << 8);
            hash_operand(h, canon, lhs);
            hash_operand(h, canon, rhs);
            h.write_u64(canon.var(*dst));
        }
        Inst::Load { dst, array, index } => {
            h.write_u64(13 | (index.len() as u64) << 8);
            h.write_u64(canon.array(*array));
            for op in index.iter() {
                hash_operand(h, canon, op);
            }
            h.write_u64(canon.var(*dst));
        }
        Inst::Store {
            array,
            index,
            value,
        } => {
            h.write_u64(14 | (index.len() as u64) << 8);
            h.write_u64(canon.array(*array));
            for op in index.iter() {
                hash_operand(h, canon, op);
            }
            hash_operand(h, canon, value);
        }
    }
}

fn hash_term<C: CanonIds, T: Fn(&mut Mix64, Block)>(
    h: &mut Mix64,
    canon: &mut C,
    term: &Terminator,
    target: &T,
) {
    match term {
        Terminator::Jump(b) => {
            h.write_u64(20);
            target(h, *b);
        }
        Terminator::Branch {
            op,
            lhs,
            rhs,
            then_bb,
            else_bb,
        } => {
            h.write_u64(21 | (*op as u64) << 8);
            hash_operand(h, canon, lhs);
            hash_operand(h, canon, rhs);
            target(h, *then_bb);
            target(h, *else_bb);
        }
        Terminator::Return => h.write_u64(22),
    }
}

/// Reusable state for a sequence of [`analyze_incremental`] calls over
/// successive versions of a function: the per-region summary cache plus
/// the analysis configuration (part of the state because summaries are
/// only valid for the configuration that produced them).
#[derive(Debug)]
pub struct IncrementalState {
    cache: StructuralCache,
    config: AnalysisConfig,
}

impl IncrementalState {
    /// Fresh state with the default cache capacity (4096 regions).
    pub fn new(config: AnalysisConfig) -> IncrementalState {
        IncrementalState::with_capacity(config, 4096)
    }

    /// Fresh state with an explicit region-cache capacity.
    pub fn with_capacity(config: AnalysisConfig, capacity: usize) -> IncrementalState {
        IncrementalState {
            cache: StructuralCache::new(capacity),
            config,
        }
    }

    /// The underlying region cache (cumulative hit/miss counters).
    pub fn cache(&self) -> &StructuralCache {
        &self.cache
    }

    /// The configuration summaries are computed with.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }
}

/// One nest's outcome in an incremental run.
#[derive(Debug, Clone)]
pub struct NestOutcome {
    /// Nest display name (or the function name for the whole-function
    /// fallback region).
    pub name: String,
    /// The region hash used as the cache key.
    pub region_hash: u64,
    /// Whether the summary was spliced from the cache.
    pub reused: bool,
    /// The nest's summary (its loops only, inner-to-outer).
    pub summary: Arc<StructuralSummary>,
}

/// Scheduling-independent counters for one incremental run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalStats {
    /// Regions in the function (1 for the whole-function fallback).
    pub nests: usize,
    /// Regions spliced from the cache.
    pub reused: usize,
    /// Regions re-analyzed this run.
    pub analyzed: usize,
    /// Whether per-nest slicing applied (false = whole-function region).
    pub sliceable: bool,
}

/// The result of one [`analyze_incremental`] call.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// The function's name (never part of any cache key).
    pub name: String,
    /// Per-nest outcomes in header-block order.
    pub nests: Vec<NestOutcome>,
    /// Counters for this run.
    pub stats: IncrementalStats,
}

impl IncrementalReport {
    /// Renders every nest block. Byte-identical between a warm run and a
    /// cold re-analysis of the same function — reuse markers are kept
    /// out of this rendering on purpose (they live in
    /// [`render`](IncrementalReport::render)'s stats line).
    pub fn render_nests(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("func {}\n", self.name));
        for nest in &self.nests {
            out.push_str(&format!(
                "  nest {} [{:016x}]\n",
                nest.name, nest.region_hash
            ));
            let mut body = String::new();
            render_summary_body(&mut body, &nest.summary);
            for line in body.lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// [`render_nests`](IncrementalReport::render_nests) plus the stats
    /// line.
    pub fn render(&self) -> String {
        let mut out = self.render_nests();
        out.push_str(&format!(
            "incremental: {} nests, {} reused, {} analyzed{}\n",
            self.stats.nests,
            self.stats.reused,
            self.stats.analyzed,
            if self.stats.sliceable {
                ""
            } else {
                " (whole-function fallback)"
            }
        ));
        out
    }
}

/// Analyzes `func`, re-running SSA construction and classification only
/// for nests whose region hash is not in `state`'s cache; every other
/// nest splices its cached summary. See the module docs for the region
/// and hashing model.
pub fn analyze_incremental(func: &Function, state: &mut IncrementalState) -> IncrementalReport {
    let regions = RegionMap::compute(func);
    analyze_incremental_with_regions(func, &regions, state)
}

/// [`analyze_incremental`] with a precomputed [`RegionMap`] — for
/// callers (the watch-bench loop, benchmarks) that already partitioned
/// the function.
pub fn analyze_incremental_with_regions(
    func: &Function,
    regions: &RegionMap,
    state: &mut IncrementalState,
) -> IncrementalReport {
    if !regions.is_sliceable() {
        // Whole-function fallback: still memoized, keyed by the batch
        // driver's structural hash, just not nest-granular.
        let hash = structural_hash(func);
        let (summary, reused) = match state.cache.lookup(hash) {
            Some(s) => (s, true),
            None => {
                let s = Arc::new(summarize(func, &state.config));
                if s.cacheable() {
                    state.cache.insert(hash, Arc::clone(&s));
                }
                (s, false)
            }
        };
        return IncrementalReport {
            name: func.name().to_string(),
            nests: vec![NestOutcome {
                name: func.name().to_string(),
                region_hash: hash,
                reused,
                summary,
            }],
            stats: IncrementalStats {
                nests: 1,
                reused: usize::from(reused),
                analyzed: usize::from(!reused),
                sliceable: false,
            },
        };
    }
    let mut outcomes = Vec::with_capacity(regions.nests.len());
    let mut stats = IncrementalStats {
        nests: regions.nests.len(),
        sliceable: true,
        ..IncrementalStats::default()
    };
    for (k, nest) in regions.nests.iter().enumerate() {
        let (summary, reused) = match state.cache.lookup(nest.region_hash) {
            Some(s) => (s, true),
            None => {
                let sliced = regions.slice(func, k);
                let s = Arc::new(summarize_filtered(
                    &sliced.func,
                    &state.config,
                    Some(&sliced.keep),
                ));
                if s.cacheable() {
                    state.cache.insert(nest.region_hash, Arc::clone(&s));
                }
                (s, false)
            }
        };
        if reused {
            stats.reused += 1;
        } else {
            stats.analyzed += 1;
        }
        outcomes.push(NestOutcome {
            name: nest.name.clone(),
            region_hash: nest.region_hash,
            reused,
            summary,
        });
    }
    IncrementalReport {
        name: func.name().to_string(),
        nests: outcomes,
        stats,
    }
}

/// Bumps one constant inside nest `k` of `regions` and returns the
/// mutated function — the canonical "edit one nest" workload for the
/// watch-bench loop, the incremental benchmark, and the property suite.
///
/// `pick` selects the mutation deterministically: which constant site
/// (instruction operands and branch bounds all count) and by how much
/// (`1 + pick % 7`, so repeated picks at the same site keep producing
/// fresh region hashes). Returns `None` when the nest holds no constant.
pub fn perturb_nest_constant(
    func: &Function,
    regions: &RegionMap,
    k: usize,
    pick: u64,
) -> Option<Function> {
    let nest = regions.nests.get(k)?;
    // First pass: count constant sites in the nest.
    let mut sites = 0usize;
    let count_op = |sites: &mut usize, op: &Operand| {
        if matches!(op, Operand::Const(_)) {
            *sites += 1;
        }
    };
    for &b in &nest.blocks {
        let data = &func.blocks[b];
        for inst in &data.insts {
            for_each_operand(inst, |op| count_op(&mut sites, op));
        }
        if let Terminator::Branch { lhs, rhs, .. } = &data.term {
            count_op(&mut sites, lhs);
            count_op(&mut sites, rhs);
        }
    }
    if sites == 0 {
        return None;
    }
    let target = (pick % sites as u64) as usize;
    let delta = 1 + (pick % 7) as i64;
    let mut mutated = func.clone();
    let mut seen = 0usize;
    let mut bump = |op: &mut Operand| {
        if let Operand::Const(c) = op {
            if seen == target {
                *c += delta;
            }
            seen += 1;
        }
    };
    for &b in &nest.blocks {
        let data = &mut mutated.blocks[b];
        for inst in &mut data.insts {
            for_each_operand_mut(inst, &mut bump);
        }
        if let Terminator::Branch { lhs, rhs, .. } = &mut data.term {
            bump(lhs);
            bump(rhs);
        }
    }
    Some(mutated)
}

fn for_each_operand(inst: &Inst, mut f: impl FnMut(&Operand)) {
    match inst {
        Inst::Copy { src, .. } | Inst::Neg { src, .. } => f(src),
        Inst::Binary { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Inst::Load { index, .. } => index.iter().for_each(f),
        Inst::Store { index, value, .. } => {
            index.iter().for_each(&mut f);
            f(value);
        }
    }
}

fn for_each_operand_mut(inst: &mut Inst, f: &mut impl FnMut(&mut Operand)) {
    match inst {
        Inst::Copy { src, .. } | Inst::Neg { src, .. } => f(src),
        Inst::Binary { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Inst::Load { index, .. } => index.iter_mut().for_each(f),
        Inst::Store { index, value, .. } => {
            index.iter_mut().for_each(&mut *f);
            f(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_ir::parser::parse_program;

    fn func_of(src: &str) -> Function {
        parse_program(src)
            .expect("test source parses")
            .functions
            .remove(0)
    }

    const TWO_NESTS: &str = r#"
        func f(n) {
            a = 1
            L1: for i = 1 to n { a = a + i ARR[a] = i }
            b = 2
            L2: for j = 1 to n { b = b + 3 ARR[b] = j }
        }
    "#;

    #[test]
    fn independent_nests_partition_and_hash() {
        let f = func_of(TWO_NESTS);
        let regions = RegionMap::compute(&f);
        assert!(regions.is_sliceable());
        assert_eq!(regions.nests.len(), 2);
        assert_eq!(regions.nests[0].name, "L1");
        assert_eq!(regions.nests[1].name, "L2");
        assert!(regions.nests[0].deps.is_empty());
        assert!(regions.nests[1].deps.is_empty());
        assert_ne!(regions.nests[0].region_hash, regions.nests[1].region_hash);
    }

    #[test]
    fn dataflow_dependency_joins_regions() {
        let f = func_of(
            r#"
            func f(n) {
                a = 0
                L1: for i = 1 to n { a = a + 1 }
                L2: for j = 1 to n { b = a + j ARR[b] = j }
            }
            "#,
        );
        let regions = RegionMap::compute(&f);
        assert!(regions.is_sliceable());
        assert_eq!(regions.nests[1].deps, vec![0], "L2 reads a, written by L1");
        assert!(regions.nests[0].deps.is_empty());
    }

    #[test]
    fn single_nest_summary_matches_batch_summarize() {
        let f = func_of("func f(n) { a = 1 L1: for i = 1 to n { a = a + i ARR[a] = i } }");
        let config = AnalysisConfig::default();
        let mut state = IncrementalState::new(config);
        let report = analyze_incremental(&f, &mut state);
        assert!(report.stats.sliceable);
        assert_eq!(report.nests.len(), 1);
        let full = summarize(&f, &config);
        assert_eq!(
            *report.nests[0].summary, full,
            "one-nest slice is the whole function"
        );
    }

    #[test]
    fn mutation_in_one_nest_reuses_the_other() {
        let f = func_of(TWO_NESTS);
        let mut state = IncrementalState::new(AnalysisConfig::default());
        let first = analyze_incremental(&f, &mut state);
        assert_eq!(first.stats.analyzed, 2);
        let regions = RegionMap::compute(&f);
        let mutated = perturb_nest_constant(&f, &regions, 1, 3).expect("L2 has constants");
        let second = analyze_incremental(&mutated, &mut state);
        assert_eq!(second.stats.reused, 1, "L1 untouched, spliced from cache");
        assert_eq!(second.stats.analyzed, 1, "L2 re-analyzed");
        // The warm result is byte-identical to a cold re-analysis.
        let mut cold = IncrementalState::new(AnalysisConfig::default());
        let fresh = analyze_incremental(&mutated, &mut cold);
        assert_eq!(second.render_nests(), fresh.render_nests());
    }

    #[test]
    fn unchanged_function_is_fully_reused() {
        let f = func_of(TWO_NESTS);
        let mut state = IncrementalState::new(AnalysisConfig::default());
        analyze_incremental(&f, &mut state);
        let again = analyze_incremental(&f, &mut state);
        assert_eq!(again.stats.reused, 2);
        assert_eq!(again.stats.analyzed, 0);
    }

    #[test]
    fn loopless_function_falls_back_to_whole_function_region() {
        let f = func_of("func f(n) { x = n + 1 }");
        let mut state = IncrementalState::new(AnalysisConfig::default());
        let report = analyze_incremental(&f, &mut state);
        assert!(!report.stats.sliceable);
        assert_eq!(report.nests.len(), 1);
        assert!(!report.nests[0].reused);
        let again = analyze_incremental(&f, &mut state);
        assert!(again.nests[0].reused, "fallback region is still memoized");
    }

    #[test]
    fn skeleton_edit_invalidates_every_nest() {
        let f = func_of(TWO_NESTS);
        let g = func_of(&TWO_NESTS.replace("a = 1", "a = 9"));
        let rf = RegionMap::compute(&f);
        let rg = RegionMap::compute(&g);
        assert_ne!(rf.nests[0].region_hash, rg.nests[0].region_hash);
        assert_ne!(rf.nests[1].region_hash, rg.nests[1].region_hash);
    }

    #[test]
    fn nest_edit_leaves_sibling_hash_alone() {
        let f = func_of(TWO_NESTS);
        let g = func_of(&TWO_NESTS.replace("b = b + 3", "b = b + 4"));
        let rf = RegionMap::compute(&f);
        let rg = RegionMap::compute(&g);
        assert_eq!(rf.nests[0].region_hash, rg.nests[0].region_hash);
        assert_ne!(rf.nests[1].region_hash, rg.nests[1].region_hash);
    }

    #[test]
    fn skeleton_binding_separates_identical_nests() {
        // Two nests with identical bodies except for which skeleton
        // variable they read must not share a region hash.
        let f = func_of(
            r#"
            func f(n) {
                p = 1
                q = 2
                L1: for i = 1 to n { x = p + i ARR[x] = i }
                L1: for j = 1 to n { y = q + j ARR[y] = j }
            }
            "#,
        );
        let regions = RegionMap::compute(&f);
        assert!(regions.is_sliceable());
        assert_ne!(regions.nests[0].region_hash, regions.nests[1].region_hash);
    }
}
