//! Compile-time shim over `biv-faults` so injection sites read the same
//! with or without the `fault-injection` feature. Without it every hook
//! is an inlined constant — the optimizer erases the site entirely, so
//! release builds provably carry no injection behavior.

#![allow(dead_code)]

#[cfg(feature = "fault-injection")]
pub(crate) use biv_faults::{fire, maybe_panic};

#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn fire(_site: &str) -> bool {
    false
}

#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn maybe_panic(_site: &str) {}
