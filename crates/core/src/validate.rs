//! Differential-execution validation of transformed functions.
//!
//! A transformation is only trusted after it survives concrete
//! execution: the original and the rewritten function run in the CFG
//! interpreter on a deterministic set of seeded inputs, and their
//! *observable states* — final array contents keyed by array name — must
//! be identical. Scalars are excluded on purpose: at function end every
//! scalar is dead, which is exactly what licenses dead-IV elimination
//! and strength-reduction temporaries.
//!
//! The policy per input:
//!
//! - original faults (overflow, step limit, …) → the input is
//!   *inconclusive* and skipped; transforms may legitimately remove a
//!   fault (e.g. deleting a dead update that overflowed);
//! - original succeeds but the transformed function faults → **failure**;
//! - both succeed → the observable states must match exactly.
//!
//! A function whose every seeded input is inconclusive reports
//! [`Verdict::Inconclusive`] rather than a hollow pass.

use std::collections::BTreeMap;

use biv_ir::interp::{InterpError, Interpreter};
use biv_ir::Function;

/// Final array contents keyed by `(array name, index vector)`.
///
/// Array *names* — not entity ids — key the map so states compare across
/// functions whose arenas diverged under transformation.
pub type ObservableState = BTreeMap<(String, Vec<i64>), i64>;

/// How many inputs to run and how hard to run them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationOptions {
    /// Number of seeded inputs (minimum 1).
    pub inputs: usize,
    /// Seed for the input generator.
    pub seed: u64,
    /// Interpreter step limit per run.
    pub step_limit: usize,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            inputs: 8,
            seed: 0x5eed_b1f0,
            step_limit: 400_000,
        }
    }
}

/// Outcome of a differential check over the seeded input set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every conclusive input produced identical observable state.
    Validated {
        /// Inputs where both functions ran and matched.
        runs: usize,
        /// Inputs skipped because the original faulted.
        skipped: usize,
    },
    /// Observable states diverged on `input`.
    Mismatch {
        /// The offending argument vector.
        input: Vec<i64>,
        /// Human-readable description of the first divergence.
        detail: String,
    },
    /// The transformed function faulted where the original ran clean.
    TransformedFault {
        /// The offending argument vector.
        input: Vec<i64>,
        /// The interpreter error.
        error: InterpError,
    },
    /// Every input was inconclusive (the original faulted each time).
    Inconclusive {
        /// Inputs attempted.
        attempted: usize,
    },
}

impl Verdict {
    /// Whether the check passed (validated, or vacuously inconclusive).
    pub fn passed(&self) -> bool {
        !self.failed()
    }

    /// Whether the check demonstrated a miscompile.
    pub fn failed(&self) -> bool {
        matches!(
            self,
            Verdict::Mismatch { .. } | Verdict::TransformedFault { .. }
        )
    }

    /// One-line rendering for reports (`ok (8 runs)`, `MISMATCH …`).
    pub fn render(&self) -> String {
        match self {
            Verdict::Validated { runs, skipped } if *skipped == 0 => {
                format!("ok ({runs} runs)")
            }
            Verdict::Validated { runs, skipped } => {
                format!("ok ({runs} runs, {skipped} skipped)")
            }
            Verdict::Mismatch { input, detail } => {
                format!("MISMATCH on {input:?}: {detail}")
            }
            Verdict::TransformedFault { input, error } => {
                format!("FAULT on {input:?}: transformed function {error}")
            }
            Verdict::Inconclusive { attempted } => {
                format!("inconclusive ({attempted} inputs, original always faulted)")
            }
        }
    }
}

/// The observable state of one concrete run.
///
/// # Errors
///
/// Propagates the interpreter's fault, if any.
pub fn observable_run(
    func: &Function,
    args: &[i64],
    step_limit: usize,
) -> Result<ObservableState, InterpError> {
    let interp = Interpreter { step_limit };
    Ok(interp.run(func, args)?.observable_arrays(func))
}

/// The deterministic seeded argument vectors for a function of the given
/// arity: a fixed small prefix (the boundary cases every loop transform
/// must survive — zero, one, and a few short trip counts) followed by
/// SplitMix64-drawn values in `0..25`.
pub fn seeded_inputs(arity: usize, opts: &ValidationOptions) -> Vec<Vec<i64>> {
    const FIXED: [i64; 5] = [0, 1, 2, 3, 7];
    let mut state = opts.seed;
    let mut out = Vec::with_capacity(opts.inputs.max(1));
    for i in 0..opts.inputs.max(1) {
        let mut input = Vec::with_capacity(arity);
        for p in 0..arity {
            let v = match FIXED.get(i) {
                Some(&fixed) if p == 0 => fixed,
                _ => (splitmix64(&mut state) % 25) as i64,
            };
            input.push(v);
        }
        out.push(input);
    }
    out
}

/// One step of the SplitMix64 generator (kept inline so validation stays
/// dependency-free; `biv-workload` depends on this crate, not the other
/// way around).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `original` and `transformed` on the seeded inputs and compares
/// observable states.
pub fn differential_check(
    original: &Function,
    transformed: &Function,
    opts: &ValidationOptions,
) -> Verdict {
    let inputs = seeded_inputs(original.params().len(), opts);
    differential_check_on(original, transformed, &inputs, opts.step_limit)
}

/// [`differential_check`] over caller-supplied argument vectors.
pub fn differential_check_on(
    original: &Function,
    transformed: &Function,
    inputs: &[Vec<i64>],
    step_limit: usize,
) -> Verdict {
    let mut runs = 0usize;
    let mut skipped = 0usize;
    for input in inputs {
        let a = match observable_run(original, input, step_limit) {
            Ok(state) => state,
            Err(_) => {
                skipped += 1;
                continue;
            }
        };
        let b = match observable_run(transformed, input, step_limit) {
            Ok(state) => state,
            Err(error) => {
                return Verdict::TransformedFault {
                    input: input.clone(),
                    error,
                }
            }
        };
        if a != b {
            return Verdict::Mismatch {
                input: input.clone(),
                detail: first_divergence(&a, &b),
            };
        }
        runs += 1;
    }
    if runs == 0 {
        Verdict::Inconclusive {
            attempted: inputs.len(),
        }
    } else {
        Verdict::Validated { runs, skipped }
    }
}

/// Describes the first key where two observable states disagree.
fn first_divergence(a: &ObservableState, b: &ObservableState) -> String {
    for (key, va) in a {
        match b.get(key) {
            None => return format!("{}{:?} = {va} vs <unwritten>", key.0, key.1),
            Some(vb) if vb != va => {
                return format!("{}{:?} = {va} vs {vb}", key.0, key.1);
            }
            Some(_) => {}
        }
    }
    for (key, vb) in b {
        if !a.contains_key(key) {
            return format!("{}{:?} = <unwritten> vs {vb}", key.0, key.1);
        }
    }
    "states equal".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_ir::parser::parse_program;

    fn parse(src: &str) -> Function {
        parse_program(src).unwrap().functions.remove(0)
    }

    #[test]
    fn identical_functions_validate() {
        let f = parse("func f(n) { L1: for i = 1 to n { A[i] = i } }");
        let v = differential_check(&f, &f.clone(), &ValidationOptions::default());
        assert!(matches!(
            v,
            Verdict::Validated {
                runs: 8,
                skipped: 0
            }
        ));
    }

    #[test]
    fn divergent_store_is_caught() {
        let a = parse("func f(n) { L1: for i = 1 to n { A[i] = i } }");
        let b = parse("func f(n) { L1: for i = 1 to n { A[i] = i + 1 } }");
        let v = differential_check(&a, &b, &ValidationOptions::default());
        match v {
            Verdict::Mismatch { detail, .. } => assert!(detail.contains('A'), "{detail}"),
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn scalar_changes_are_unobservable() {
        // Same stores, different scalar housekeeping: equivalent.
        let a = parse("func f(n) { s = 0 L1: for i = 1 to n { s = s + i A[i] = i } }");
        let b = parse("func f(n) { L1: for i = 1 to n { A[i] = i } }");
        let v = differential_check(&a, &b, &ValidationOptions::default());
        assert!(v.passed(), "{v:?}");
    }

    #[test]
    fn transformed_fault_is_failure() {
        let a = parse("func f(n) { A[0] = n }");
        let b = parse("func f(n) { x = 1 / 0 A[0] = n }");
        let v = differential_check(&a, &b, &ValidationOptions::default());
        assert!(matches!(v, Verdict::TransformedFault { .. }), "{v:?}");
    }

    #[test]
    fn original_faults_skip_and_report_inconclusive() {
        let a = parse("func f(n) { x = 1 / 0 }");
        let v = differential_check(&a, &a.clone(), &ValidationOptions::default());
        assert!(matches!(v, Verdict::Inconclusive { attempted: 8 }), "{v:?}");
        assert!(v.passed());
    }

    #[test]
    fn seeded_inputs_are_deterministic_and_bounded() {
        let opts = ValidationOptions::default();
        let a = seeded_inputs(3, &opts);
        let b = seeded_inputs(3, &opts);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert_eq!(a[0][0], 0);
        assert_eq!(a[4][0], 7);
        assert!(a.iter().flatten().all(|&v| (0..25).contains(&v)));
    }
}
