//! Trip counts from loop exit conditions (§5.2).
//!
//! The exit comparison is normalized to `exit when a ≤ b` using integer
//! arithmetic (the paper's conversion table), the difference `q = a − b`
//! is classified as a linear induction expression `(L, i, s)`, and then
//!
//! ```text
//!              ⎧ 0            if i ≤ 0
//! tripcount =  ⎨ ⌈i / (−s)⌉   if i > 0 and s < 0
//!              ⎩ ∞            if i > 0 and s ≥ 0
//! ```

use std::fmt;

use biv_algebra::{Rational, SymPoly};
use biv_ir::loops::{Loop, LoopForest};
use biv_ir::{BinOp, CmpOp, VecMap};
use biv_ssa::{SsaFunction, SsaTerminator, Value};

use crate::budget::BudgetMeter;
use crate::class::Class;
use crate::classify::{combine_classes, operand_class};
use crate::config::AnalysisConfig;

/// The number of times a loop's exit condition chooses to stay in the
/// loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TripCount {
    /// The loop body never completes an iteration.
    Zero,
    /// Exactly this many iterations (possibly symbolic, e.g. `n` or the
    /// outer loop's induction variable for triangular loops).
    Finite(SymPoly),
    /// `⌈numer / denom⌉` with a symbolic numerator — countable, but not
    /// polynomial, so exit values cannot be formed from it.
    CeilDiv {
        /// Symbolic numerator.
        numer: SymPoly,
        /// Positive constant denominator.
        denom: i128,
    },
    /// The exit condition can never become true.
    Infinite,
    /// Not a countable loop (multiple exits, non-linear exit sequence, or
    /// symbolic step).
    Unknown,
}

impl TripCount {
    /// The symbolic count when exactly known.
    pub fn as_symbolic(&self) -> Option<SymPoly> {
        match self {
            TripCount::Zero => Some(SymPoly::zero()),
            TripCount::Finite(p) => Some(p.clone()),
            _ => None,
        }
    }
}

impl fmt::Display for TripCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripCount::Zero => write!(f, "0"),
            TripCount::Finite(p) => write!(f, "{p}"),
            TripCount::CeilDiv { numer, denom } => write!(f, "ceil(({numer})/{denom})"),
            TripCount::Infinite => write!(f, "infinite"),
            TripCount::Unknown => write!(f, "unknown"),
        }
    }
}

/// Computes the trip count of `loop_id` from its (single) exit edge using
/// the member classifications.
pub fn trip_count(
    ssa: &SsaFunction,
    forest: &LoopForest,
    loop_id: Loop,
    classes: &VecMap<Value, Class>,
    config: &AnalysisConfig,
) -> TripCount {
    trip_count_metered(
        ssa,
        forest,
        loop_id,
        classes,
        config,
        &BudgetMeter::new(config.budget),
    )
}

/// Like [`trip_count`], sharing the analysis-wide [`BudgetMeter`]: past
/// the deadline, the count degrades to `Unknown` without touching the
/// exit condition.
pub fn trip_count_metered(
    ssa: &SsaFunction,
    forest: &LoopForest,
    loop_id: Loop,
    classes: &VecMap<Value, Class>,
    config: &AnalysisConfig,
    meter: &BudgetMeter,
) -> TripCount {
    if !config.nested_exit_values || meter.deadline_exceeded() {
        return TripCount::Unknown;
    }
    let func = ssa.func();
    let exits = forest.exit_edges(func, loop_id);
    let (exit_block, _) = match exits.as_slice() {
        [single] => *single,
        _ => return TripCount::Unknown,
    };
    exit_trip_count(ssa, forest, loop_id, classes, exit_block)
}

/// A *maximum* trip count for loops with several exits (§5.2: "when a
/// loop has multiple exits, the compiler may not be able to determine the
/// exact number of iterations, but it may be able to find a maximum trip
/// count"). Every exit that yields a finite constant count bounds the
/// loop; the smallest bound wins. Returns `None` when no exit is
/// countable.
pub fn max_trip_count(
    ssa: &SsaFunction,
    forest: &LoopForest,
    loop_id: Loop,
    classes: &VecMap<Value, Class>,
) -> Option<SymPoly> {
    let func = ssa.func();
    let mut best: Option<i128> = None;
    for (exit_block, _) in forest.exit_edges(func, loop_id) {
        match exit_trip_count(ssa, forest, loop_id, classes, exit_block) {
            TripCount::Zero => return Some(SymPoly::zero()),
            TripCount::Finite(p) => {
                if let Some(c) = p.constant_value().and_then(|r| r.as_integer()) {
                    best = Some(best.map_or(c, |b: i128| b.min(c)));
                } else if best.is_none() && forest.exit_edges(func, loop_id).len() == 1 {
                    return Some(p);
                }
            }
            TripCount::CeilDiv { numer, denom } => {
                // ceil(n/d) ≤ n for d ≥ 1 and constant n. Checked: a
                // pathological constant overflowing the division just
                // contributes no bound.
                if let Some(c) = numer
                    .constant_value()
                    .and_then(|n| n.checked_div(&Rational::from_integer(denom)).ok())
                    .and_then(|q| q.checked_ceil())
                {
                    best = Some(best.map_or(c, |b: i128| b.min(c)));
                }
            }
            TripCount::Infinite | TripCount::Unknown => {}
        }
    }
    best.map(SymPoly::from_integer)
}

fn exit_trip_count(
    ssa: &SsaFunction,
    forest: &LoopForest,
    loop_id: Loop,
    classes: &VecMap<Value, Class>,
    exit_block: biv_ir::Block,
) -> TripCount {
    let Some(SsaTerminator::Branch {
        op,
        lhs,
        rhs,
        then_bb,
        else_bb,
    }) = ssa.block(exit_block).term.as_ref()
    else {
        return TripCount::Unknown;
    };
    // Orient the comparison so that true means exit.
    let exit_op = if forest.contains(loop_id, *then_bb) {
        if forest.contains(loop_id, *else_bb) {
            return TripCount::Unknown;
        }
        op.negated()
    } else {
        *op
    };
    let l = operand_class(ssa, forest, loop_id, classes, lhs);
    let r = operand_class(ssa, forest, loop_id, classes, rhs);
    // Normalize to `exit when q ≤ 0` where q is a linear induction
    // expression (the paper's conversion table).
    let one = Class::Invariant(SymPoly::from_integer(1));
    let q = match exit_op {
        // a ≤ b  ⇔  a − b ≤ 0
        CmpOp::Le => combine_classes(loop_id, BinOp::Sub, &l, &r),
        // a < b  ⇔  a − b + 1 ≤ 0
        CmpOp::Lt => {
            let d = combine_classes(loop_id, BinOp::Sub, &l, &r);
            combine_classes(loop_id, BinOp::Add, &d, &one)
        }
        // a > b  ⇔  b − a + 1 ≤ 0
        CmpOp::Gt => {
            let d = combine_classes(loop_id, BinOp::Sub, &r, &l);
            combine_classes(loop_id, BinOp::Add, &d, &one)
        }
        // a ≥ b  ⇔  b − a ≤ 0
        CmpOp::Ge => combine_classes(loop_id, BinOp::Sub, &r, &l),
        CmpOp::Eq => {
            return equality_trip_count(loop_id, &l, &r);
        }
        CmpOp::Ne => {
            // Stays only while a == b: 0 or 1 meaningful iterations.
            let d = combine_classes(loop_id, BinOp::Sub, &l, &r);
            return match d {
                Class::Invariant(p) if p.is_zero() => TripCount::Infinite,
                Class::Invariant(p) if p.constant_value().is_some() => TripCount::Zero,
                _ => TripCount::Unknown,
            };
        }
    };
    let Some(cf) = q.closed_form(loop_id) else {
        return TripCount::Unknown;
    };
    if cf.degree() > 1 || !cf.geo.is_empty() {
        return TripCount::Unknown;
    }
    let init = cf.coeffs[0].clone();
    let step = if cf.degree() == 1 {
        match cf.coeffs[1].constant_value() {
            Some(s) => s,
            None => return TripCount::Unknown, // symbolic step
        }
    } else {
        Rational::ZERO
    };
    match init.constant_value() {
        Some(i) => {
            // Fully constant: apply the formula exactly.
            if i <= Rational::ZERO {
                TripCount::Zero
            } else if step >= Rational::ZERO {
                TripCount::Infinite
            } else {
                // Checked throughout: i64-extreme constants can overflow
                // the i128 rational arithmetic here, and an uncountable
                // loop must degrade to Unknown, not panic.
                let ratio = match step.checked_neg().and_then(|neg| i.checked_div(&neg)) {
                    Ok(ratio) => ratio,
                    Err(_) => return TripCount::Unknown,
                };
                match ratio.checked_ceil() {
                    Some(c) => TripCount::Finite(SymPoly::from_integer(c)),
                    None => TripCount::Unknown,
                }
            }
        }
        None => {
            // Symbolic initial value: countable only for negative constant
            // step; exact when the division is trivial.
            if step >= Rational::ZERO {
                return TripCount::Unknown;
            }
            let Ok(neg) = step.checked_neg() else {
                return TripCount::Unknown;
            };
            if neg == Rational::ONE {
                TripCount::Finite(init)
            } else if neg.is_integer() {
                TripCount::CeilDiv {
                    numer: init,
                    denom: neg.as_integer().expect("checked integer"),
                }
            } else {
                TripCount::Unknown
            }
        }
    }
}

fn equality_trip_count(loop_id: Loop, l: &Class, r: &Class) -> TripCount {
    // exit when a == b: with q = a − b linear (i, s), the loop exits at
    // the first h with i + s·h == 0.
    let d = combine_classes(loop_id, BinOp::Sub, l, r);
    let Some(cf) = d.closed_form(loop_id) else {
        return TripCount::Unknown;
    };
    if cf.degree() > 1 || !cf.geo.is_empty() {
        return TripCount::Unknown;
    }
    let (Some(i), s) = (
        cf.coeffs[0].constant_value(),
        cf.coeffs
            .get(1)
            .and_then(SymPoly::constant_value)
            .unwrap_or(Rational::ZERO),
    ) else {
        return TripCount::Unknown;
    };
    if i.is_zero() {
        return TripCount::Zero;
    }
    if s.is_zero() {
        return TripCount::Infinite;
    }
    // Checked: extreme constants must not panic the division or negation.
    let Ok(h) = i.checked_div(&s).and_then(|q| q.checked_neg()) else {
        return TripCount::Unknown;
    };
    if h.is_integer() && h >= Rational::ZERO {
        TripCount::Finite(SymPoly::constant(h))
    } else {
        TripCount::Infinite
    }
}
