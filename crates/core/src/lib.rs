//! **Beyond Induction Variables** — the classification algorithm of
//! Michael Wolfe's PLDI 1992 paper, implemented over the `biv` SSA
//! substrate.
//!
//! One non-iterative pass of Tarjan's algorithm over a loop's SSA graph
//! classifies every integer scalar in the loop as one of:
//!
//! - **invariant** — no definition cycles in the loop;
//! - **linear / polynomial / geometric induction variable** — a cyclic SCR
//!   whose cumulative effect per iteration is `v ← v + step`,
//!   `v ← v + (induction of order n)`, or `v ← g·v + …`; closed forms are
//!   recovered exactly by rational basis-matrix inversion (§4.3);
//! - **wrap-around variable** of any order (§4.1) — a loop-header φ alone
//!   in a trivial SCR;
//! - **periodic / flip-flop variable** (§4.2) — copy-only SCRs threading
//!   several header φs, or `j = c − j` cycles;
//! - **monotonic variable** (§4.4) — conditional updates with
//!   sign-consistent offsets, with the §5.4 strictness refinement.
//!
//! Loops are processed inner-to-outer with trip counts and exit values
//! (§5.2–§5.3), so multi-loop induction variables — including the
//! triangular-loop case of Figure 9 — come out as nested tuples.
//!
//! # Quick start
//!
//! ```
//! use biv_core::analyze_source;
//!
//! let analysis = analyze_source(
//!     r#"
//!     func fig1(n, c, k) {
//!         j = n
//!         L7: loop {
//!             i = j + c
//!             j = i + k
//!             if j > 1000 { break }
//!         }
//!     }
//!     "#,
//! )?;
//! // j2, the loop-header phi, is the linear induction variable
//! // (L7, n1, c1+k1) from the paper's Figure 1.
//! let tuple = analysis.describe_by_name("j2").unwrap();
//! assert_eq!(tuple, "(L7, n1, c1 + k1)");
//! # Ok::<(), biv_core::AnalyzeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod budget;
pub mod cache;
mod class;
mod classify;
mod config;
mod display;
mod driver;
mod faults;
pub mod incremental;
mod invariants;
mod scc;
mod symbols;
mod tripcount;
pub mod validate;

pub use batch::{
    analyze_batch, analyze_batch_shared, analyze_batch_shared_backend, analyze_batch_with_backend,
    analyze_batch_with_cache, cold_batch_stats, render_grouped, render_grouped_with, resolve_jobs,
    structural_hash, BatchOptions, BatchReport, BatchStats, FunctionSummary, LoopSummary,
    StructuralCache, StructuralSummary,
};
pub use budget::{Budget, BudgetBreach, BudgetMeter};
pub use cache::{analysis_fingerprint, CacheBackend, StoreGauges, FORMAT_VERSION};
pub use class::{Class, ClosedForm, Direction, FamilyAnchor, Monotonic, Periodic};
pub use classify::{
    class_of_sympoly, classify_loop, classify_loop_metered, combine_classes, negate_class,
    operand_class, resolve_copies, ClassLookup,
};
pub use config::AnalysisConfig;
pub use display::{
    canonical_value_name, describe_class, describe_class_with, describe_closed_form,
    describe_closed_form_with, ValueNamer,
};
pub use incremental::{
    analyze_incremental, analyze_incremental_with_regions, perturb_nest_constant, FunctionSlice,
    IncrementalReport, IncrementalState, IncrementalStats, NestOutcome, NestRegion, RegionMap,
};

pub use driver::{
    analyze, analyze_protected, analyze_source, analyze_ssa_with, analyze_with, analyze_with_times,
    Analysis, AnalysisError, AnalyzeError, LoopInfo, PhaseTimes,
};
pub use scc::{strongly_connected_regions, strongly_connected_regions_into, Scr, ScrPool};
pub use symbols::{sym_of_value, value_of_sym};
pub use tripcount::{max_trip_count, trip_count, trip_count_metered, TripCount};
pub use validate::{
    differential_check, differential_check_on, seeded_inputs, ObservableState, ValidationOptions,
    Verdict,
};
