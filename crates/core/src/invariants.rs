//! Bridges the classifier to the polynomial-invariant engine
//! (biv-invariant): per loop, the closed forms of the loop-header φs
//! classified as induction (or mixed-geometric) variables feed the
//! null-space derivation, and every candidate relation is machine-checked
//! against concrete traces from the SSA interpreter before it may appear
//! in a summary.
//!
//! Checking replays a *clean* rebuild of the function's SSA — the
//! analysis mutates its own copy with synthetic exit-value definitions,
//! which are not executable — over the same deterministic seeded inputs
//! the differential validator uses. Value numbering is construction-order
//! deterministic and synthetics are only ever appended, so the φ ids
//! recorded by the analysis address the identical values in the rebuild.

use std::collections::HashMap;

use biv_invariant::check::SeedHistories;
use biv_invariant::{check_candidate, derive_candidates, InvariantConfig, IvClosedForm};
use biv_ir::loops::Loop;
use biv_ir::Function;
use biv_ssa::{SsaFunction, SsaInterpreter, SsaTrace, Value};

use crate::class::Class;
use crate::config::AnalysisConfig;
use crate::display::canonical_value_name;
use crate::driver::Analysis;
use crate::validate::{seeded_inputs, ValidationOptions};

/// Seeds used for machine-checking. Few and shallow on purpose: the
/// derivation is exact over symbolic inits, so checking guards against
/// engine bugs and sampling artifacts, not against rare inputs.
const CHECK_INPUTS: usize = 4;

/// Step budget per checking run — invariant checking must never dominate
/// analysis time, and a truncated run still contributes its prefix.
const CHECK_STEP_LIMIT: usize = 20_000;

/// Minimum number of (seed, iteration) pairs that must actually evaluate
/// to zero before a candidate counts as verified.
const MIN_CHECKED_ITERATIONS: usize = 4;

/// Derives and machine-checks polynomial invariants for every loop of an
/// analyzed function. Returns only verified relations, rendered with
/// canonical `%N` value names, keyed by loop. Loops without verified
/// relations are absent.
/// One loop's derivation inputs and its as-yet-unchecked candidates.
type LoopCandidates = (
    Loop,
    Vec<Value>,
    Vec<IvClosedForm>,
    Vec<biv_invariant::Candidate>,
);

pub(crate) fn function_invariants(
    func: &Function,
    config: &AnalysisConfig,
    analysis: &Analysis,
) -> HashMap<Loop, Vec<String>> {
    let engine_config = InvariantConfig::default();
    let mut per_loop: Vec<LoopCandidates> = Vec::new();
    for (l, info) in analysis.loops() {
        let header = analysis.forest().data(l).header;
        let mut values = Vec::new();
        let mut ivs = Vec::new();
        for &phi in &analysis.ssa().block(header).phis {
            let Some(class) = info.classes.get(phi) else {
                continue;
            };
            let cf = match class {
                Class::Induction(cf) => cf.clone(),
                Class::MixedGeometric(mg) => mg.to_closed_form(),
                _ => continue,
            };
            values.push(phi);
            ivs.push(IvClosedForm {
                name: canonical_value_name(phi),
                coeffs: cf.coeffs.to_vec(),
                geo: cf.geo.clone(),
            });
        }
        let candidates = derive_candidates(&ivs, &engine_config);
        if !candidates.is_empty() {
            per_loop.push((l, values, ivs, candidates));
        }
    }
    if per_loop.is_empty() {
        return HashMap::new();
    }

    // At least one loop proposed a relation: pay for concrete traces.
    let traces = checking_traces(func, config);
    let mut out = HashMap::new();
    for (l, values, ivs, candidates) in per_loop {
        let names: Vec<String> = ivs.iter().map(|iv| iv.name.clone()).collect();
        let seeds: Vec<SeedHistories> = traces
            .iter()
            .map(|t| values.iter().map(|&v| t.history(v)).collect())
            .collect();
        let verified: Vec<String> = candidates
            .into_iter()
            .filter(|c| check_candidate(c, &seeds, MIN_CHECKED_ITERATIONS))
            .map(|c| c.render(&names))
            .collect();
        if !verified.is_empty() {
            out.insert(l, verified);
        }
    }
    out
}

/// Runs the function on the deterministic seeded inputs, keeping partial
/// traces: a step-limited, overflowing, or otherwise faulting run still
/// contributes every iteration it observed.
fn checking_traces(func: &Function, config: &AnalysisConfig) -> Vec<SsaTrace> {
    let opts = ValidationOptions {
        inputs: CHECK_INPUTS,
        step_limit: CHECK_STEP_LIMIT,
        ..ValidationOptions::default()
    };
    // Mirror the analysis driver's SSA construction so value ids line up.
    let mut ssa = SsaFunction::build(func);
    if config.constant_folding {
        biv_ssa::fold_constants(&mut ssa);
    }
    let interp = SsaInterpreter {
        step_limit: opts.step_limit,
    };
    seeded_inputs(func.params().len(), &opts)
        .iter()
        .map(|input| interp.run_partial(&ssa, input).0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::analyze_source;

    fn invariants_of(src: &str) -> Vec<Vec<String>> {
        use biv_ir::EntityId as _;
        let analysis = analyze_source(src).expect("analyzes");
        let config = AnalysisConfig::default();
        let func = biv_ir::parser::parse_function(src).expect("parses");
        let map = function_invariants(&func, &config, &analysis);
        let mut loops: Vec<_> = map.into_iter().collect();
        loops.sort_by_key(|(l, _)| l.index());
        loops.into_iter().map(|(_, inv)| inv).collect()
    }

    #[test]
    fn running_sum_yields_checked_relation() {
        // Figure 3 shape with literal inits: i = 1, 2, 3, …; s the running
        // sum of i starting at 0. The classic relation is 2s = i² − i.
        let inv = invariants_of(
            r#"
            func sums(n) {
                i = 1
                s = 0
                loop {
                    s = s + i
                    i = i + 1
                    if i > n { break }
                }
            }
            "#,
        );
        assert_eq!(inv.len(), 1, "one loop carries relations: {inv:?}");
        assert!(
            inv[0].iter().any(|r| r.contains("= 0")),
            "expected rendered relations, got {inv:?}"
        );
    }

    #[test]
    fn symbolic_inits_yield_nothing() {
        // i starts at a parameter: any candidate would have to hold
        // identically in the symbolic init, so nothing is derived.
        let inv = invariants_of(
            r#"
            func param_init(n, m) {
                i = m
                loop {
                    i = i + 1
                    if i > n { break }
                }
            }
            "#,
        );
        assert!(inv.is_empty(), "got {inv:?}");
    }
}
