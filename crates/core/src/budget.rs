//! Resource budgets for a single analysis: graceful degradation instead
//! of unbounded time or panic-prone blow-ups.
//!
//! A [`Budget`] caps what one `analyze` call may spend — wall-clock
//! time, SSA nodes per loop region, SCC size, polynomial order. The
//! driver turns it into a [`BudgetMeter`] once per analysis; `classify`
//! and `tripcount` poll the meter at cheap checkpoints. A breached
//! budget never aborts the analysis: the affected variables degrade to
//! [`Class::Unknown`](crate::Class) (so closed forms and trip counts
//! simply aren't emitted for them) and the reason is recorded as a
//! [`BudgetBreach`] on the [`Analysis`](crate::Analysis).
//!
//! The default budget is unlimited, so existing callers see zero
//! behavior change. Deterministic caps (nodes / SCC / order) breach
//! identically on identical input; the wall-clock deadline does not,
//! which is why the batch cache refuses to retain deadline-degraded
//! summaries (see `batch::StructuralSummary::cacheable`).

use std::cell::{Cell, RefCell};
use std::fmt;
use std::time::{Duration, Instant};

/// Limits for one analysis. `None` means unlimited; the default budget
/// is unlimited in every dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock deadline for the whole analysis, in milliseconds.
    pub time_ms: Option<u64>,
    /// Maximum SSA nodes considered per loop region.
    pub max_region_nodes: Option<usize>,
    /// Maximum members in a strongly connected region.
    pub max_scc: Option<usize>,
    /// Maximum polynomial order fitted for a polynomial induction
    /// variable (the paper's order-n chains of §4.3).
    pub max_order: Option<usize>,
}

impl Budget {
    /// No limits — the behavior of every pre-budget release.
    pub const UNLIMITED: Budget = Budget {
        time_ms: None,
        max_region_nodes: None,
        max_scc: None,
        max_order: None,
    };

    /// True when no dimension is limited.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::UNLIMITED
    }

    /// Parses a `key=value` comma list: `time=MS,nodes=N,scc=N,order=N`.
    /// Unmentioned dimensions stay unlimited.
    pub fn parse(spec: &str) -> Result<Budget, String> {
        let mut budget = Budget::UNLIMITED;
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("budget part `{part}` is not key=value"))?;
            let number = || {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid budget value `{value}` for `{key}`"))
            };
            match key {
                "time" => budget.time_ms = Some(number()?),
                "nodes" => budget.max_region_nodes = Some(number()? as usize),
                "scc" => budget.max_scc = Some(number()? as usize),
                "order" => budget.max_order = Some(number()? as usize),
                _ => return Err(format!("unknown budget key `{key}` (time/nodes/scc/order)")),
            }
        }
        Ok(budget)
    }
}

/// Why part of an analysis degraded to `Unknown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetBreach {
    /// The wall-clock deadline passed. Nondeterministic: the same input
    /// may or may not breach on another run, so results carrying this
    /// breach must not enter caches keyed on input structure.
    Deadline,
    /// A loop region had more SSA nodes than allowed.
    RegionNodes {
        /// Observed node count.
        nodes: usize,
        /// The configured cap.
        limit: usize,
    },
    /// A strongly connected region exceeded the size cap.
    SccSize {
        /// Observed SCC size.
        size: usize,
        /// The configured cap.
        limit: usize,
    },
    /// A polynomial induction chain exceeded the order cap.
    PolyOrder {
        /// Requested polynomial order.
        order: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl BudgetBreach {
    /// True for breaches that repeat identically on identical input.
    /// Only these may flow into structure-keyed caches.
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, BudgetBreach::Deadline)
    }
}

impl fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetBreach::Deadline => write!(f, "wall-clock deadline exceeded"),
            BudgetBreach::RegionNodes { nodes, limit } => {
                write!(f, "loop region has {nodes} SSA nodes (limit {limit})")
            }
            BudgetBreach::SccSize { size, limit } => {
                write!(f, "SCC has {size} members (limit {limit})")
            }
            BudgetBreach::PolyOrder { order, limit } => {
                write!(f, "polynomial order {order} (limit {limit})")
            }
        }
    }
}

/// How many deadline polls are absorbed between `Instant::now` calls.
/// Checkpoints sit on per-SCR paths, so a poll is already amortized
/// over real work; this keeps the syscall off the per-value fast path.
const DEADLINE_POLL_STRIDE: u32 = 32;

/// The live form of a [`Budget`], created once per analysis.
///
/// Interior-mutable so it threads through the classifier as a shared
/// reference; analyses are single-threaded internally, so `Cell` /
/// `RefCell` suffice. Each breach kind is recorded at most once per
/// meter (per analysis) — checkpoints keep *answering* "breached", they
/// just don't append duplicates.
#[derive(Debug)]
pub struct BudgetMeter {
    limits: Budget,
    deadline: Option<Instant>,
    deadline_hit: Cell<bool>,
    ticks: Cell<u32>,
    breaches: RefCell<Vec<BudgetBreach>>,
}

impl BudgetMeter {
    /// Starts metering `budget` now (the deadline clock starts here).
    pub fn new(budget: Budget) -> BudgetMeter {
        BudgetMeter {
            limits: budget,
            deadline: budget
                .time_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            deadline_hit: Cell::new(false),
            ticks: Cell::new(0),
            breaches: RefCell::new(Vec::new()),
        }
    }

    /// A meter that never breaches.
    pub fn unlimited() -> BudgetMeter {
        BudgetMeter::new(Budget::UNLIMITED)
    }

    /// The limits this meter enforces.
    pub fn limits(&self) -> Budget {
        self.limits
    }

    fn record(&self, breach: BudgetBreach) {
        let mut breaches = self.breaches.borrow_mut();
        if !breaches
            .iter()
            .any(|b| std::mem::discriminant(b) == std::mem::discriminant(&breach))
        {
            breaches.push(breach);
        }
    }

    /// Deadline poll. Cheap: only every [`DEADLINE_POLL_STRIDE`]-th call
    /// reads the clock; once breached, always true without reading it.
    pub fn deadline_exceeded(&self) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.deadline_hit.get() {
            return true;
        }
        let tick = self.ticks.get();
        self.ticks.set(tick.wrapping_add(1));
        if !tick.is_multiple_of(DEADLINE_POLL_STRIDE) {
            return false;
        }
        if Instant::now() >= deadline {
            self.deadline_hit.set(true);
            self.record(BudgetBreach::Deadline);
            return true;
        }
        false
    }

    /// Checks a loop region's node count; records and reports a breach.
    pub fn region_nodes_exceeded(&self, nodes: usize) -> bool {
        match self.limits.max_region_nodes {
            Some(limit) if nodes > limit => {
                self.record(BudgetBreach::RegionNodes { nodes, limit });
                true
            }
            _ => false,
        }
    }

    /// Checks one SCC's member count; records and reports a breach.
    pub fn scc_exceeded(&self, size: usize) -> bool {
        match self.limits.max_scc {
            Some(limit) if size > limit => {
                self.record(BudgetBreach::SccSize { size, limit });
                true
            }
            _ => false,
        }
    }

    /// Checks a polynomial fit's order; records and reports a breach.
    pub fn order_exceeded(&self, order: usize) -> bool {
        match self.limits.max_order {
            Some(limit) if order > limit => {
                self.record(BudgetBreach::PolyOrder { order, limit });
                true
            }
            _ => false,
        }
    }

    /// The breaches recorded so far (each kind at most once), in the
    /// order they were first hit.
    pub fn breaches(&self) -> Vec<BudgetBreach> {
        self.breaches.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_breaches() {
        let meter = BudgetMeter::unlimited();
        assert!(!meter.deadline_exceeded());
        assert!(!meter.region_nodes_exceeded(usize::MAX));
        assert!(!meter.scc_exceeded(usize::MAX));
        assert!(!meter.order_exceeded(usize::MAX));
        assert!(meter.breaches().is_empty());
        assert!(Budget::UNLIMITED.is_unlimited());
        assert!(Budget::default().is_unlimited());
    }

    #[test]
    fn deterministic_caps_record_once() {
        let meter = BudgetMeter::new(Budget {
            max_scc: Some(4),
            max_order: Some(2),
            ..Budget::UNLIMITED
        });
        assert!(!meter.scc_exceeded(4), "at the limit is fine");
        assert!(meter.scc_exceeded(5));
        assert!(meter.scc_exceeded(9));
        assert!(meter.order_exceeded(3));
        let breaches = meter.breaches();
        assert_eq!(breaches.len(), 2, "each kind recorded once: {breaches:?}");
        assert!(breaches.iter().all(BudgetBreach::is_deterministic));
    }

    #[test]
    fn zero_deadline_breaches_on_first_poll() {
        let meter = BudgetMeter::new(Budget {
            time_ms: Some(0),
            ..Budget::UNLIMITED
        });
        assert!(meter.deadline_exceeded(), "tick 0 always reads the clock");
        assert!(meter.deadline_exceeded(), "and stays breached");
        assert_eq!(meter.breaches(), vec![BudgetBreach::Deadline]);
        assert!(!BudgetBreach::Deadline.is_deterministic());
    }

    #[test]
    fn parse_specs() {
        assert_eq!(Budget::parse("").unwrap(), Budget::UNLIMITED);
        let b = Budget::parse("time=250,nodes=10000,scc=64,order=8").unwrap();
        assert_eq!(b.time_ms, Some(250));
        assert_eq!(b.max_region_nodes, Some(10000));
        assert_eq!(b.max_scc, Some(64));
        assert_eq!(b.max_order, Some(8));
        assert_eq!(Budget::parse("scc=9").unwrap().max_scc, Some(9));
        assert!(Budget::parse("frobs=9").is_err());
        assert!(Budget::parse("time=abc").is_err());
        assert!(Budget::parse("time").is_err());
    }
}
