//! The whole-function analysis driver: loops processed inner-to-outer
//! with exit-value materialization (§5.3).

use std::fmt;
use std::time::{Duration, Instant};

use biv_algebra::SymPoly;
use biv_ir::dom::DomTree;
use biv_ir::loops::{Loop, LoopForest};
use biv_ir::parser::ParseError;
use biv_ir::{Block, EntityMap, Function, VecMap};
use biv_ssa::{Operand, SsaFunction, SsaInst, SsaTerminator, Value, ValueDef};

use crate::budget::{BudgetBreach, BudgetMeter};
use crate::class::Class;
use crate::classify::classify_loop_metered;
use crate::config::AnalysisConfig;
use crate::display::describe_class;
use crate::tripcount::{max_trip_count, trip_count_metered, TripCount};

/// Errors from the convenience entry points.
#[derive(Debug)]
pub enum AnalyzeError {
    /// The source text failed to parse.
    Parse(ParseError),
    /// The source did not contain exactly one function.
    NotOneFunction(usize),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Parse(e) => write!(f, "parse error: {e}"),
            AnalyzeError::NotOneFunction(n) => {
                write!(f, "expected exactly one function, found {n}")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<ParseError> for AnalyzeError {
    fn from(e: ParseError) -> Self {
        AnalyzeError::Parse(e)
    }
}

/// An internal failure caught at the panic-isolation boundary
/// ([`analyze_protected`]): the process survives, the caller gets a
/// structured error for that one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The analysis panicked. The unwind was caught, the thread-local
    /// scratch reset, and the payload reported here instead of killing
    /// the worker.
    Internal {
        /// The panic payload, when it carried a message.
        detail: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Internal { detail } => {
                write!(f, "internal analysis error: {detail}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Per-loop analysis results.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// The analyzed loop.
    pub loop_id: Loop,
    /// Human-readable loop name (source label when present).
    pub name: String,
    /// Classification of every SSA value in the loop's region.
    pub classes: VecMap<Value, Class>,
    /// The loop's trip count (§5.2).
    pub trip_count: TripCount,
    /// An upper bound on the trip count for multi-exit loops (§5.2);
    /// equals the trip count for single-exit countable loops.
    pub max_trip_count: Option<SymPoly>,
    /// Symbolic exit values materialized for values referenced outside the
    /// loop, keyed by the original in-loop value.
    pub exit_values: VecMap<Value, SymPoly>,
    /// Synthetic exit-value definitions, keyed by the original value.
    pub synthetics: VecMap<Value, Value>,
}

/// Whole-function classification results.
#[derive(Debug)]
pub struct Analysis {
    ssa: SsaFunction,
    forest: LoopForest,
    /// Per-loop results, in inner-to-outer processing order.
    pub loop_order: Vec<Loop>,
    loops: EntityMap<Loop, LoopInfo>,
    config: AnalysisConfig,
    /// Budget breaches recorded while analyzing (each kind at most once).
    breaches: Vec<BudgetBreach>,
}

/// Wall-clock time spent in each analysis phase, as reported by
/// `bivc --time`. Parsing happens before the driver and is timed by the
/// caller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// SSA construction, including constant folding when enabled.
    pub ssa: Duration,
    /// Dominator tree and loop forest construction.
    pub loop_forest: Duration,
    /// Per-loop classification, summed over all loops.
    pub classify: Duration,
    /// Trip counts and exit-value materialization, summed over all loops.
    pub closed_forms: Duration,
}

impl PhaseTimes {
    /// Adds another function's phase times into this accumulator.
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.ssa += other.ssa;
        self.loop_forest += other.loop_forest;
        self.classify += other.classify;
        self.closed_forms += other.closed_forms;
    }
}

impl fmt::Display for PhaseTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ssa {:.3?}, loop forest {:.3?}, classify {:.3?}, closed forms {:.3?}",
            self.ssa, self.loop_forest, self.classify, self.closed_forms
        )
    }
}

/// `Some(now)` only on the timed monomorphization, so the untimed path
/// compiles to no clock reads at all.
#[inline]
fn phase_start<const TIMED: bool>() -> Option<Instant> {
    TIMED.then(Instant::now)
}

#[inline]
fn phase_end(start: Option<Instant>, slot: &mut Duration) {
    if let Some(t) = start {
        *slot += t.elapsed();
    }
}

/// Analyzes a function with the default configuration.
pub fn analyze(func: &Function) -> Analysis {
    analyze_with(func, AnalysisConfig::default())
}

/// Analyzes a function with an explicit configuration.
pub fn analyze_with(func: &Function, config: AnalysisConfig) -> Analysis {
    let ssa = SsaFunction::build(func);
    analyze_ssa_with(ssa, config)
}

/// [`analyze_with`] behind a panic-isolation boundary: a panic anywhere
/// in SSA construction or classification becomes an
/// [`AnalysisError::Internal`] instead of unwinding into (and killing)
/// the caller — the degradation path for batch workers and the `bivd`
/// pool.
///
/// UnwindSafe audit of the `AssertUnwindSafe` below: the closure
/// captures `func` by shared reference (read-only here — SSA
/// construction copies what it needs) and `config` by value (`Copy`),
/// so no caller-visible state can be observed half-mutated. The only
/// state that survives the unwind is the thread-local scratch in
/// `classify`/`scc` (their `RefCell` borrows are released by the unwind
/// itself); it is reset on the catch path before anything else runs on
/// this thread, since its stale entries would alias value indices of
/// the next function analyzed.
pub fn analyze_protected(
    func: &Function,
    config: AnalysisConfig,
) -> Result<Analysis, AnalysisError> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::faults::maybe_panic("analyze.panic");
        analyze_with(func, config)
    }));
    result.map_err(|payload| {
        crate::classify::reset_thread_scratch();
        crate::scc::reset_thread_scratch();
        AnalysisError::Internal {
            detail: panic_message(payload.as_ref()),
        }
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`analyze_with`], additionally returning per-phase wall times.
pub fn analyze_with_times(func: &Function, config: AnalysisConfig) -> (Analysis, PhaseTimes) {
    let mut times = PhaseTimes::default();
    let t = Instant::now();
    let ssa = SsaFunction::build(func);
    times.ssa += t.elapsed();
    let analysis = analyze_ssa_inner::<true>(ssa, config, &mut times);
    (analysis, times)
}

/// Parses source text containing one function and analyzes it.
///
/// # Errors
///
/// Returns [`AnalyzeError`] on parse failure or when the source does not
/// hold exactly one function.
pub fn analyze_source(src: &str) -> Result<Analysis, AnalyzeError> {
    let program = biv_ir::parser::parse_program(src)?;
    if program.functions.len() != 1 {
        return Err(AnalyzeError::NotOneFunction(program.functions.len()));
    }
    Ok(analyze(&program.functions[0]))
}

/// Analyzes an already-built SSA function.
pub fn analyze_ssa_with(ssa: SsaFunction, config: AnalysisConfig) -> Analysis {
    analyze_ssa_inner::<false>(ssa, config, &mut PhaseTimes::default())
}

fn analyze_ssa_inner<const TIMED: bool>(
    mut ssa: SsaFunction,
    config: AnalysisConfig,
    times: &mut PhaseTimes,
) -> Analysis {
    let t = phase_start::<TIMED>();
    if config.constant_folding {
        biv_ssa::fold_constants(&mut ssa);
    }
    phase_end(t, &mut times.ssa);
    let t = phase_start::<TIMED>();
    let cfg = biv_ir::cfg::Cfg::compute(ssa.func());
    let dom = DomTree::compute_with(ssa.func(), &cfg);
    let forest = LoopForest::compute_with(ssa.func(), &dom, &cfg);
    let order = forest.inner_to_outer();
    phase_end(t, &mut times.loop_forest);
    let mut exit_exprs: EntityMap<Value, SymPoly> = EntityMap::new();
    let mut loops: EntityMap<Loop, LoopInfo> = EntityMap::new();
    let mut use_map = build_use_map(&ssa);
    // One meter for the whole analysis: the deadline clock spans all
    // loops and every breach kind is recorded once.
    let meter = BudgetMeter::new(config.budget);
    for &l in &order {
        let t = phase_start::<TIMED>();
        let classes = classify_loop_metered(&ssa, &forest, l, &exit_exprs, &config, &meter);
        phase_end(t, &mut times.classify);
        let t = phase_start::<TIMED>();
        let tc = trip_count_metered(&ssa, &forest, l, &classes, &config, &meter);
        let max_tc = match tc.as_symbolic() {
            Some(p) => Some(p),
            None if meter.deadline_exceeded() => None,
            None => max_trip_count(&ssa, &forest, l, &classes),
        };
        let mut exit_values = VecMap::new();
        let mut synthetics = VecMap::new();
        if config.nested_exit_values {
            materialize_exit_values(
                &mut ssa,
                &forest,
                &dom,
                l,
                &classes,
                &tc,
                &mut exit_exprs,
                &mut exit_values,
                &mut synthetics,
                &mut use_map,
            );
        }
        phase_end(t, &mut times.closed_forms);
        let name = forest.name(ssa.func(), l);
        loops.insert(
            l,
            LoopInfo {
                loop_id: l,
                name,
                classes,
                trip_count: tc,
                max_trip_count: max_tc,
                exit_values,
                synthetics,
            },
        );
    }
    Analysis {
        ssa,
        forest,
        loop_order: order,
        loops,
        config,
        breaches: meter.breaches(),
    }
}

/// A location where an SSA value is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UseSite {
    /// Read by another value's definition (φ arguments included).
    Def(Value),
    /// Read by a store in this block.
    Store(Block),
    /// Read by this block's terminator.
    Term(Block),
}

/// Builds the value → use-sites map in one pass over the function.
fn build_use_map(ssa: &SsaFunction) -> EntityMap<Value, Vec<UseSite>> {
    let mut map: EntityMap<Value, Vec<UseSite>> = EntityMap::new();
    let mut ops = Vec::new();
    for (v, data) in ssa.values.iter() {
        ops.clear();
        data.def.operands(&mut ops);
        for &o in &ops {
            map.get_or_insert_with(o, Vec::new).push(UseSite::Def(v));
        }
    }
    for b in ssa.block_ids() {
        let sb = ssa.block(b);
        for inst in &sb.body {
            if let SsaInst::Store { index, value, .. } = inst {
                for op in index.iter().chain(std::iter::once(value)) {
                    if let Operand::Value(v) = op {
                        map.get_or_insert_with(*v, Vec::new).push(UseSite::Store(b));
                    }
                }
            }
        }
        if let Some(SsaTerminator::Branch { lhs, rhs, .. }) = &sb.term {
            for op in [lhs, rhs] {
                if let Operand::Value(v) = op {
                    map.get_or_insert_with(*v, Vec::new).push(UseSite::Term(b));
                }
            }
        }
    }
    map
}

fn site_block(ssa: &SsaFunction, site: UseSite) -> Block {
    match site {
        UseSite::Def(v) => ssa.def_block(v),
        UseSite::Store(b) | UseSite::Term(b) => b,
    }
}

/// Computes exit values for values of loop `l` used outside it, creates
/// synthetic definitions, and rewrites the outside uses (§5.3). The use
/// map is consulted and kept up to date, so the whole driver stays linear
/// in the number of uses.
#[allow(clippy::too_many_arguments)]
fn materialize_exit_values(
    ssa: &mut SsaFunction,
    forest: &LoopForest,
    dom: &DomTree,
    l: Loop,
    classes: &VecMap<Value, Class>,
    tc: &TripCount,
    exit_exprs: &mut EntityMap<Value, SymPoly>,
    exit_values: &mut VecMap<Value, SymPoly>,
    synthetics: &mut VecMap<Value, Value>,
    use_map: &mut EntityMap<Value, Vec<UseSite>>,
) {
    let Some(tc_sym) = tc.as_symbolic() else {
        return;
    };
    let exits = forest.exit_edges(ssa.func(), l);
    let [(exit_from, exit_to)] = exits.as_slice() else {
        return;
    };
    let (exit_from, exit_to) = (*exit_from, *exit_to);
    // Candidates: values defined in the loop with at least one use site
    // outside it.
    let mut outside_used: Vec<Value> = Vec::new();
    for &b in &forest.data(l).blocks {
        let sb = ssa.block(b);
        let defs = sb
            .phis
            .iter()
            .copied()
            .chain(sb.body.iter().filter_map(|i| match i {
                SsaInst::Def(v) => Some(*v),
                SsaInst::Store { .. } => None,
            }));
        for v in defs {
            let used_outside = use_map.get(v).is_some_and(|sites| {
                sites
                    .iter()
                    .any(|&s| !forest.contains(l, site_block(ssa, s)))
            });
            if used_outside {
                outside_used.push(v);
            }
        }
    }
    for v in outside_used {
        let Some(class) = classes.get(v) else {
            continue; // inner-loop value without a class
        };
        let expr = match class {
            Class::Invariant(p) => Some(p.clone()),
            Class::Induction(_) | Class::MixedGeometric(_) => {
                let cf = class.closed_form(l).expect("induction has a closed form");
                // Does v still execute on the final (partial) iteration?
                let runs_final = dom.dominates(ssa.def_block(v), exit_from);
                let at = if runs_final {
                    tc_sym.clone()
                } else {
                    match tc_sym
                        .checked_sub(&SymPoly::from_integer(1))
                        .ok()
                        .filter(|p| {
                            p.constant_value() != Some(biv_algebra::Rational::from_integer(-1))
                        }) {
                        Some(p) => p,
                        None => continue, // never executed
                    }
                };
                cf.eval_at_sym(&at)
            }
            _ => None,
        };
        let Some(expr) = expr else {
            continue;
        };
        // Materialize the synthetic definition in the exit target block.
        let (var, version) = {
            let data = &ssa.values[v];
            (data.var, data.version + 100)
        };
        let synthetic =
            ssa.add_synthetic_value(exit_to, ValueDef::ExitValue { inner: v }, var, version);
        // The synthetic reads the expression's symbols (for the SSA graph
        // used by outer classifications and later materializations).
        for sym in expr.symbols() {
            use_map
                .get_or_insert_with(crate::symbols::value_of_sym(sym), Vec::new)
                .push(UseSite::Def(synthetic));
        }
        exit_exprs.insert(synthetic, expr.clone());
        exit_values.insert(v, expr);
        synthetics.insert(v, synthetic);
        rewrite_outside_uses(ssa, forest, l, v, synthetic, use_map);
    }
}

/// Replaces uses of `old` with `new` at every use site outside loop `l`,
/// updating the use map.
fn rewrite_outside_uses(
    ssa: &mut SsaFunction,
    forest: &LoopForest,
    l: Loop,
    old: Value,
    new: Value,
    use_map: &mut EntityMap<Value, Vec<UseSite>>,
) {
    let sites = use_map.remove(old).unwrap_or_default();
    let mut kept = Vec::with_capacity(sites.len());
    let mut moved = Vec::new();
    let rewrite_op = |op: &mut Operand| {
        if *op == Operand::Value(old) {
            *op = Operand::Value(new);
        }
    };
    for site in sites {
        if forest.contains(l, site_block(ssa, site)) {
            kept.push(site);
            continue;
        }
        match site {
            UseSite::Def(u) => {
                if u == new {
                    kept.push(site);
                    continue;
                }
                match &mut ssa.values[u].def {
                    ValueDef::Phi { args } => args.iter_mut().for_each(|(_, op)| rewrite_op(op)),
                    ValueDef::Copy { src } | ValueDef::Neg { src } => rewrite_op(src),
                    ValueDef::Binary { lhs, rhs, .. } => {
                        rewrite_op(lhs);
                        rewrite_op(rhs);
                    }
                    ValueDef::Load { index, .. } => index.iter_mut().for_each(rewrite_op),
                    ValueDef::LiveIn { .. } | ValueDef::ExitValue { .. } => {}
                }
            }
            UseSite::Store(b) => {
                for inst in &mut ssa.block_mut(b).body {
                    if let SsaInst::Store { index, value, .. } = inst {
                        index.iter_mut().for_each(rewrite_op);
                        rewrite_op(value);
                    }
                }
            }
            UseSite::Term(b) => {
                if let Some(SsaTerminator::Branch { lhs, rhs, .. }) = &mut ssa.block_mut(b).term {
                    rewrite_op(lhs);
                    rewrite_op(rhs);
                }
            }
        }
        moved.push(site);
    }
    if !kept.is_empty() {
        use_map.insert(old, kept);
    }
    use_map.get_or_insert_with(new, Vec::new).extend(moved);
}

impl Analysis {
    /// The (analysis-mutated) SSA function: synthetic exit values added,
    /// outside uses rewritten.
    pub fn ssa(&self) -> &SsaFunction {
        &self.ssa
    }

    /// The loop forest.
    pub fn forest(&self) -> &LoopForest {
        &self.forest
    }

    /// The configuration the analysis ran with.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Budget breaches hit during this analysis (empty with the default
    /// unlimited budget). Affected variables were degraded to
    /// [`Class::Unknown`]; these are the recorded reasons.
    pub fn budget_breaches(&self) -> &[BudgetBreach] {
        &self.breaches
    }

    /// Per-loop results.
    pub fn info(&self, l: Loop) -> &LoopInfo {
        &self.loops[l]
    }

    /// Finds a loop by its source label.
    pub fn loop_by_label(&self, label: &str) -> Option<Loop> {
        let block = self.ssa.func().block_by_label(label)?;
        self.forest.innermost(block)
    }

    /// The classification of `value` in the innermost loop containing it.
    pub fn class_of(&self, value: Value) -> Option<(&LoopInfo, &Class)> {
        let block = self.ssa.def_block(value);
        let mut l = self.forest.innermost(block)?;
        loop {
            let info = self.loops.get(l)?;
            if let Some(cls) = info.classes.get(value) {
                return Some((info, cls));
            }
            l = self.forest.data(l).parent?;
        }
    }

    /// The classification of `value` with respect to a specific loop.
    pub fn class_in(&self, l: Loop, value: Value) -> Option<&Class> {
        self.loops.get(l)?.classes.get(value)
    }

    /// Renders the paper-style description of a value, e.g.
    /// `"(L7, n1, c1 + k1)"`.
    pub fn describe(&self, value: Value) -> Option<String> {
        let (_info, class) = self.class_of(value)?;
        Some(describe_class(self, class))
    }

    /// Looks up a value by paper-style name (e.g. `"j2"`) and describes it.
    pub fn describe_by_name(&self, name: &str) -> Option<String> {
        let value = self.ssa.value_by_name(name)?;
        self.describe(value)
    }

    /// Iterates over `(loop, info)` in inner-to-outer order.
    pub fn loops(&self) -> impl Iterator<Item = (Loop, &LoopInfo)> {
        self.loop_order.iter().map(move |&l| (l, &self.loops[l]))
    }

    /// The §5.4 refinement: a *non-strict* monotonic value used at
    /// `use_block` is effectively **strictly** monotonic there when a
    /// strictly-monotonic member of the same family postdominates the
    /// use — every execution of the use is followed by a strict update
    /// before the value can be observed again.
    ///
    /// Returns `true` also for values that are strict outright.
    pub fn strictly_monotonic_at(&self, value: biv_ssa::Value, use_block: biv_ir::Block) -> bool {
        let Some((info, class)) = self.class_of(value) else {
            return false;
        };
        let Class::Monotonic(m) = class else {
            return false;
        };
        if m.strict {
            return true;
        }
        let Some(family) = m.family else {
            return false;
        };
        let pdom = biv_ir::dom::PostDomTree::compute(self.ssa.func());
        info.classes.iter().any(|(member, c)| {
            matches!(c, Class::Monotonic(mm) if mm.strict && mm.family == Some(family))
                && pdom.postdominates(self.ssa.def_block(member), use_block)
        })
    }
}
