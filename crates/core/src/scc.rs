//! Tarjan's strongly-connected-regions algorithm over the SSA graph.
//!
//! The key property the classifier relies on (§3.1): Tarjan emits an SCR
//! only after all of its successors — here, all *source operands* of the
//! region — have been emitted. So when an SCR is classified, every value
//! feeding it already has a classification.

use std::cell::RefCell;

use biv_ir::EntityMap;
use biv_ssa::Value;

thread_local! {
    /// Reusable node → position table. A fresh dense map would grow to
    /// the largest value index on every call, making a many-loop function
    /// quadratic; the shared table grows once per thread and each call
    /// clears only the entries it inserted.
    static REGION_INDEX: RefCell<EntityMap<Value, usize>> = RefCell::new(EntityMap::new());
}

/// One strongly connected region, in Tarjan emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scr {
    /// Member values. A single value with no self-edge is a *trivial* SCR.
    pub members: Vec<Value>,
    /// Whether the region contains a cycle (more than one member, or a
    /// self-loop).
    pub cyclic: bool,
}

/// Runs Tarjan's algorithm over the sub-graph induced by `nodes`, with
/// `edges(v, out)` appending the operand values of `v` to `out` (only
/// edges to other members of `nodes` are followed). Returns SCRs in
/// emission order — operands before users.
pub fn strongly_connected_regions<F>(nodes: &[Value], mut edges: F) -> Vec<Scr>
where
    F: FnMut(Value, &mut Vec<Value>),
{
    REGION_INDEX.with(|cell| {
        let in_region = &mut *cell.borrow_mut();
        for (i, &v) in nodes.iter().enumerate() {
            in_region.insert(v, i);
        }
        let out = tarjan(nodes, &mut edges, in_region);
        for &v in nodes {
            in_region.remove(v);
        }
        out
    })
}

/// Clears this thread's region-index table entirely. Only needed on the
/// panic-isolation path: an unwind between the insert and remove loops
/// above strands the current call's entries, and value indices restart
/// per function, so they would alias into later analyses on this thread.
pub(crate) fn reset_thread_scratch() {
    REGION_INDEX.with(|cell| {
        if let Ok(mut table) = cell.try_borrow_mut() {
            *table = EntityMap::new();
        }
    });
}

fn tarjan<F>(nodes: &[Value], edges: &mut F, in_region: &EntityMap<Value, usize>) -> Vec<Scr>
where
    F: FnMut(Value, &mut Vec<Value>),
{
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    // Iterative Tarjan with an explicit work stack. Successor lists live
    // in one flat buffer (frames nest LIFO, so a popped frame's range is
    // always the buffer's tail) — no per-node allocation.
    #[derive(Debug)]
    struct Frame {
        node: usize,
        succ_start: usize,
        succ_end: usize,
        next: usize,
    }

    let mut self_loop = vec![false; n];
    let mut succ_buf: Vec<usize> = Vec::new();
    let mut edge_buf: Vec<Value> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames: Vec<Frame> = Vec::new();
        // Appends v's in-region successor positions to succ_buf.
        let succs_of = |v: usize,
                        edges: &mut F,
                        self_loop: &mut Vec<bool>,
                        succ_buf: &mut Vec<usize>,
                        edge_buf: &mut Vec<Value>| {
            edge_buf.clear();
            edges(nodes[v], edge_buf);
            for &succ in edge_buf.iter() {
                if let Some(&idx) = in_region.get(succ) {
                    if idx == v {
                        self_loop[v] = true;
                    }
                    succ_buf.push(idx);
                }
            }
        };
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        let succ_start = succ_buf.len();
        succs_of(
            start,
            &mut *edges,
            &mut self_loop,
            &mut succ_buf,
            &mut edge_buf,
        );
        frames.push(Frame {
            node: start,
            succ_start,
            succ_end: succ_buf.len(),
            next: 0,
        });
        while let Some(frame) = frames.last_mut() {
            let v = frame.node;
            if frame.succ_start + frame.next < frame.succ_end {
                let w = succ_buf[frame.succ_start + frame.next];
                frame.next += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    let succ_start = succ_buf.len();
                    succs_of(w, &mut *edges, &mut self_loop, &mut succ_buf, &mut edge_buf);
                    frames.push(Frame {
                        node: w,
                        succ_start,
                        succ_end: succ_buf.len(),
                        next: 0,
                    });
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // Done with v: pop an SCR when v is a root.
                if lowlink[v] == index[v] {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        members.push(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    members.reverse();
                    let cyclic = members.len() > 1 || self_loop[v];
                    out.push(Scr { members, cyclic });
                }
                let finished = frames.pop().expect("frame exists");
                succ_buf.truncate(finished.succ_start);
                if let Some(parent) = frames.last_mut() {
                    lowlink[parent.node] = lowlink[parent.node].min(lowlink[finished.node]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_ir::EntityId;

    fn v(i: usize) -> Value {
        Value::from_index(i)
    }

    #[test]
    fn straight_line_is_all_trivial() {
        // 0 -> 1 -> 2 (0 uses 1, 1 uses 2)
        let nodes = vec![v(0), v(1), v(2)];
        let sccs = strongly_connected_regions(&nodes, |x, out| {
            out.extend(match x.index() {
                0 => vec![v(1)],
                1 => vec![v(2)],
                _ => vec![],
            })
        });
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|s| !s.cyclic));
        // Operands emitted first.
        assert_eq!(sccs[0].members, vec![v(2)]);
        assert_eq!(sccs[2].members, vec![v(0)]);
    }

    #[test]
    fn cycle_detected() {
        // 0 <-> 1, plus leaf 2 used by 1.
        let nodes = vec![v(0), v(1), v(2)];
        let sccs = strongly_connected_regions(&nodes, |x, out| {
            out.extend(match x.index() {
                0 => vec![v(1)],
                1 => vec![v(0), v(2)],
                _ => vec![],
            })
        });
        // Leaf pops first, then the cycle.
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0].members, vec![v(2)]);
        assert!(!sccs[0].cyclic);
        let cycle = &sccs[1];
        assert!(cycle.cyclic);
        assert_eq!(cycle.members.len(), 2);
    }

    #[test]
    fn self_loop_is_cyclic() {
        let nodes = vec![v(0)];
        let sccs = strongly_connected_regions(&nodes, |_, out| out.push(v(0)));
        assert_eq!(sccs.len(), 1);
        assert!(sccs[0].cyclic);
    }

    #[test]
    fn edges_outside_region_ignored() {
        let nodes = vec![v(0)];
        let sccs = strongly_connected_regions(&nodes, |_, out| out.push(v(7)));
        assert_eq!(sccs.len(), 1);
        assert!(!sccs[0].cyclic);
    }

    #[test]
    fn operands_pop_before_users() {
        // Two cycles: {0,1} uses {2,3}; 4 uses both.
        let nodes = vec![v(0), v(1), v(2), v(3), v(4)];
        let sccs = strongly_connected_regions(&nodes, |x, out| {
            out.extend(match x.index() {
                0 => vec![v(1)],
                1 => vec![v(0), v(2)],
                2 => vec![v(3)],
                3 => vec![v(2)],
                4 => vec![v(0), v(2)],
                _ => vec![],
            })
        });
        assert_eq!(sccs.len(), 3);
        let pos = |val: Value| sccs.iter().position(|s| s.members.contains(&val)).unwrap();
        assert!(pos(v(2)) < pos(v(0)), "inner cycle pops first");
        assert!(pos(v(0)) < pos(v(4)), "user pops last");
        assert!(pos(v(2)) < pos(v(4)));
    }

    #[test]
    fn large_chain_does_not_overflow_stack() {
        // 100k-long chain exercises the iterative implementation.
        let n = 100_000;
        let nodes: Vec<Value> = (0..n).map(v).collect();
        let sccs = strongly_connected_regions(&nodes, |x, out| {
            let i = x.index();
            if i + 1 < n {
                out.push(v(i + 1));
            }
        });
        assert_eq!(sccs.len(), n);
    }
}
