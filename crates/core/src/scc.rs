//! Tarjan's strongly-connected-regions algorithm over the SSA graph.
//!
//! The key property the classifier relies on (§3.1): Tarjan emits an SCR
//! only after all of its successors — here, all *source operands* of the
//! region — have been emitted. So when an SCR is classified, every value
//! feeding it already has a classification.

use std::cell::RefCell;

use biv_ir::EntityMap;
use biv_ssa::Value;

thread_local! {
    /// Reusable walk state. The node → position table would grow to the
    /// largest value index on every call if allocated fresh, making a
    /// many-loop function quadratic; the dense per-position vectors and
    /// the work stacks are kept alongside it so a steady-state call
    /// performs no allocation beyond the returned SCRs.
    static SCC_SCRATCH: RefCell<SccScratch> = RefCell::new(SccScratch::default());
}

#[derive(Default)]
struct SccScratch {
    in_region: EntityMap<Value, usize>,
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    self_loop: Vec<bool>,
    stack: Vec<usize>,
    frames: Vec<Frame>,
    succ_buf: Vec<usize>,
    edge_buf: Vec<Value>,
}

/// One suspended DFS visit in the iterative Tarjan walk.
#[derive(Debug)]
struct Frame {
    node: usize,
    succ_start: usize,
    succ_end: usize,
    next: usize,
}

/// One strongly connected region, in Tarjan emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scr {
    /// Member values. A single value with no self-edge is a *trivial* SCR.
    pub members: Vec<Value>,
    /// Whether the region contains a cycle (more than one member, or a
    /// self-loop).
    pub cyclic: bool,
}

/// Flat SCR storage: every region's members live in one shared pool with
/// `(start, end, cyclic)` spans, so emitting an SCR costs no allocation.
/// This is what the per-loop classifier iterates; [`Scr`] remains as the
/// owned per-region form for callers that want one.
#[derive(Debug, Default)]
pub struct ScrPool {
    members: Vec<Value>,
    spans: Vec<(u32, u32, bool)>,
}

impl ScrPool {
    /// Number of regions.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the pool holds no regions.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The `i`-th region in emission order, as `(members, cyclic)`.
    pub fn get(&self, i: usize) -> (&[Value], bool) {
        let (start, end, cyclic) = self.spans[i];
        (&self.members[start as usize..end as usize], cyclic)
    }

    /// Iterates regions in emission order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], bool)> {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Drops all regions, keeping capacity.
    pub fn clear(&mut self) {
        self.members.clear();
        self.spans.clear();
    }
}

/// Runs Tarjan's algorithm over the sub-graph induced by `nodes`, with
/// `edges(v, out)` appending the operand values of `v` to `out` (only
/// edges to other members of `nodes` are followed). Returns SCRs in
/// emission order — operands before users.
pub fn strongly_connected_regions<F>(nodes: &[Value], edges: F) -> Vec<Scr>
where
    F: FnMut(Value, &mut Vec<Value>),
{
    let mut pool = ScrPool::default();
    strongly_connected_regions_into(nodes, edges, &mut pool);
    pool.iter()
        .map(|(members, cyclic)| Scr {
            members: members.to_vec(),
            cyclic,
        })
        .collect()
}

/// Allocation-free variant of [`strongly_connected_regions`]: emits the
/// SCRs into a reusable [`ScrPool`] (cleared first).
pub fn strongly_connected_regions_into<F>(nodes: &[Value], mut edges: F, pool: &mut ScrPool)
where
    F: FnMut(Value, &mut Vec<Value>),
{
    pool.clear();
    SCC_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        for (i, &v) in nodes.iter().enumerate() {
            scratch.in_region.insert(v, i);
        }
        tarjan(nodes, &mut edges, scratch, pool);
        for &v in nodes {
            scratch.in_region.remove(v);
        }
    });
}

/// Clears this thread's walk scratch entirely. Only needed on the
/// panic-isolation path: an unwind between the insert and remove loops
/// above strands the current call's entries, and value indices restart
/// per function, so they would alias into later analyses on this thread.
pub(crate) fn reset_thread_scratch() {
    SCC_SCRATCH.with(|cell| {
        if let Ok(mut scratch) = cell.try_borrow_mut() {
            *scratch = SccScratch::default();
        }
    });
}

fn tarjan<F>(nodes: &[Value], edges: &mut F, scratch: &mut SccScratch, pool: &mut ScrPool)
where
    F: FnMut(Value, &mut Vec<Value>),
{
    let n = nodes.len();
    let SccScratch {
        in_region,
        index,
        lowlink,
        on_stack,
        self_loop,
        stack,
        frames,
        succ_buf,
        edge_buf,
    } = scratch;
    let in_region: &EntityMap<Value, usize> = in_region;
    index.clear();
    index.resize(n, usize::MAX);
    lowlink.clear();
    lowlink.resize(n, 0);
    on_stack.clear();
    on_stack.resize(n, false);
    self_loop.clear();
    self_loop.resize(n, false);
    debug_assert!(stack.is_empty() && frames.is_empty() && succ_buf.is_empty());
    let mut next_index = 0usize;

    // Iterative Tarjan with an explicit work stack. Successor lists live
    // in one flat buffer (frames nest LIFO, so a popped frame's range is
    // always the buffer's tail) — no per-node allocation.
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Appends v's in-region successor positions to succ_buf.
        let succs_of = |v: usize,
                        edges: &mut F,
                        self_loop: &mut Vec<bool>,
                        succ_buf: &mut Vec<usize>,
                        edge_buf: &mut Vec<Value>| {
            edge_buf.clear();
            edges(nodes[v], edge_buf);
            for &succ in edge_buf.iter() {
                if let Some(&idx) = in_region.get(succ) {
                    if idx == v {
                        self_loop[v] = true;
                    }
                    succ_buf.push(idx);
                }
            }
        };
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        let succ_start = succ_buf.len();
        succs_of(
            start,
            &mut *edges,
            &mut *self_loop,
            &mut *succ_buf,
            &mut *edge_buf,
        );
        frames.push(Frame {
            node: start,
            succ_start,
            succ_end: succ_buf.len(),
            next: 0,
        });
        while let Some(frame) = frames.last_mut() {
            let v = frame.node;
            if frame.succ_start + frame.next < frame.succ_end {
                let w = succ_buf[frame.succ_start + frame.next];
                frame.next += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    let succ_start = succ_buf.len();
                    succs_of(
                        w,
                        &mut *edges,
                        &mut *self_loop,
                        &mut *succ_buf,
                        &mut *edge_buf,
                    );
                    frames.push(Frame {
                        node: w,
                        succ_start,
                        succ_end: succ_buf.len(),
                        next: 0,
                    });
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // Done with v: pop an SCR when v is a root.
                if lowlink[v] == index[v] {
                    let span_start = pool.members.len();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        pool.members.push(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    pool.members[span_start..].reverse();
                    let span_end = pool.members.len();
                    let cyclic = span_end - span_start > 1 || self_loop[v];
                    pool.spans
                        .push((span_start as u32, span_end as u32, cyclic));
                }
                let finished = frames.pop().expect("frame exists");
                succ_buf.truncate(finished.succ_start);
                if let Some(parent) = frames.last_mut() {
                    lowlink[parent.node] = lowlink[parent.node].min(lowlink[finished.node]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_ir::EntityId;

    fn v(i: usize) -> Value {
        Value::from_index(i)
    }

    #[test]
    fn straight_line_is_all_trivial() {
        // 0 -> 1 -> 2 (0 uses 1, 1 uses 2)
        let nodes = vec![v(0), v(1), v(2)];
        let sccs = strongly_connected_regions(&nodes, |x, out| {
            out.extend(match x.index() {
                0 => vec![v(1)],
                1 => vec![v(2)],
                _ => vec![],
            })
        });
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|s| !s.cyclic));
        // Operands emitted first.
        assert_eq!(sccs[0].members, vec![v(2)]);
        assert_eq!(sccs[2].members, vec![v(0)]);
    }

    #[test]
    fn cycle_detected() {
        // 0 <-> 1, plus leaf 2 used by 1.
        let nodes = vec![v(0), v(1), v(2)];
        let sccs = strongly_connected_regions(&nodes, |x, out| {
            out.extend(match x.index() {
                0 => vec![v(1)],
                1 => vec![v(0), v(2)],
                _ => vec![],
            })
        });
        // Leaf pops first, then the cycle.
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0].members, vec![v(2)]);
        assert!(!sccs[0].cyclic);
        let cycle = &sccs[1];
        assert!(cycle.cyclic);
        assert_eq!(cycle.members.len(), 2);
    }

    #[test]
    fn self_loop_is_cyclic() {
        let nodes = vec![v(0)];
        let sccs = strongly_connected_regions(&nodes, |_, out| out.push(v(0)));
        assert_eq!(sccs.len(), 1);
        assert!(sccs[0].cyclic);
    }

    #[test]
    fn edges_outside_region_ignored() {
        let nodes = vec![v(0)];
        let sccs = strongly_connected_regions(&nodes, |_, out| out.push(v(7)));
        assert_eq!(sccs.len(), 1);
        assert!(!sccs[0].cyclic);
    }

    #[test]
    fn operands_pop_before_users() {
        // Two cycles: {0,1} uses {2,3}; 4 uses both.
        let nodes = vec![v(0), v(1), v(2), v(3), v(4)];
        let sccs = strongly_connected_regions(&nodes, |x, out| {
            out.extend(match x.index() {
                0 => vec![v(1)],
                1 => vec![v(0), v(2)],
                2 => vec![v(3)],
                3 => vec![v(2)],
                4 => vec![v(0), v(2)],
                _ => vec![],
            })
        });
        assert_eq!(sccs.len(), 3);
        let pos = |val: Value| sccs.iter().position(|s| s.members.contains(&val)).unwrap();
        assert!(pos(v(2)) < pos(v(0)), "inner cycle pops first");
        assert!(pos(v(0)) < pos(v(4)), "user pops last");
        assert!(pos(v(2)) < pos(v(4)));
    }

    #[test]
    fn large_chain_does_not_overflow_stack() {
        // 100k-long chain exercises the iterative implementation.
        let n = 100_000;
        let nodes: Vec<Value> = (0..n).map(v).collect();
        let sccs = strongly_connected_regions(&nodes, |x, out| {
            let i = x.index();
            if i + 1 < n {
                out.push(v(i + 1));
            }
        });
        assert_eq!(sccs.len(), n);
    }
}
