//! Per-loop classification: Tarjan over the SSA graph, then classify each
//! SCR as it pops (§3–§4 of the paper).

use std::cell::RefCell;

use biv_algebra::vandermonde::fit_mixed;
use biv_algebra::{Rational, SymPoly};
use biv_ir::loops::{Loop, LoopForest};
use biv_ir::{BinOp, Block, EntityMap, EntitySet, VecMap};
use biv_ssa::{Operand, SsaFunction, SsaInst, Value, ValueDef};

use crate::budget::BudgetMeter;
use crate::class::{Class, ClosedForm, Direction, FamilyAnchor, Monotonic, Periodic};
use crate::config::AnalysisConfig;
use crate::scc::{strongly_connected_regions_into, ScrPool};
use crate::symbols::{operand_to_sympoly, sym_of_value, value_of_sym};

/// Read access to per-value classifications, independent of the backing
/// store: the classifier works against its dense scratch table, external
/// callers against the compact [`VecMap`] stored in `LoopInfo`.
pub trait ClassLookup {
    /// The classification recorded for `v`, if any.
    fn lookup_class(&self, v: Value) -> Option<&Class>;
}

impl ClassLookup for EntityMap<Value, Class> {
    fn lookup_class(&self, v: Value) -> Option<&Class> {
        self.get(v)
    }
}

impl ClassLookup for VecMap<Value, Class> {
    fn lookup_class(&self, v: Value) -> Option<&Class> {
        self.get(v)
    }
}

thread_local! {
    /// Per-thread classification scratch, reused across `classify_loop`
    /// calls. The dense tables inside grow to the largest value index a
    /// thread ever sees and stay allocated; each call only pays for the
    /// entries it actually touches (cleared by key on the way out), so a
    /// function with many small loops costs O(values) total, not
    /// O(loops × max index).
    static LOOP_SCRATCH: RefCell<LoopScratch> = RefCell::new(LoopScratch::default());
}

#[derive(Default)]
struct LoopScratch {
    classes: EntityMap<Value, Class>,
    scr: Scratch,
    pool: ScrPool,
}

/// Classifies every SSA value in `loop_id`'s region (its blocks minus
/// inner-loop blocks) with respect to that loop. The result is a compact
/// table sorted by value index — iteration order is the deterministic
/// dense order, memory is proportional to the region size.
///
/// `exit_exprs` carries the symbolic exit expressions of synthetic
/// [`ValueDef::ExitValue`] definitions materialized by the nested-loop
/// driver (§5.3); pass an empty map when analyzing a single loop.
pub fn classify_loop(
    ssa: &SsaFunction,
    forest: &LoopForest,
    loop_id: Loop,
    exit_exprs: &EntityMap<Value, SymPoly>,
    config: &AnalysisConfig,
) -> VecMap<Value, Class> {
    classify_loop_metered(
        ssa,
        forest,
        loop_id,
        exit_exprs,
        config,
        &BudgetMeter::new(config.budget),
    )
}

/// Like [`classify_loop`], with an externally owned [`BudgetMeter`] so a
/// multi-loop analysis shares one deadline clock and one breach record.
pub fn classify_loop_metered(
    ssa: &SsaFunction,
    forest: &LoopForest,
    loop_id: Loop,
    exit_exprs: &EntityMap<Value, SymPoly>,
    config: &AnalysisConfig,
    meter: &BudgetMeter,
) -> VecMap<Value, Class> {
    LOOP_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let mut cx = Cx::new(ssa, forest, loop_id, exit_exprs, config, meter, scratch);
        cx.run();
        cx.finish()
    })
}

/// Clears this thread's classification scratch entirely. Only needed on
/// the panic-isolation path: an unwind out of `classify_loop` leaves the
/// current function's entries in the thread-local tables (the `RefCell`
/// borrow itself is released by the unwind), and value indices restart
/// per function, so stale entries would alias into whatever this thread
/// analyzes next.
pub(crate) fn reset_thread_scratch() {
    LOOP_SCRATCH.with(|cell| {
        if let Ok(mut scratch) = cell.try_borrow_mut() {
            *scratch = LoopScratch::default();
        }
    });
}

/// Classifies an operand with respect to a loop, given the loop's member
/// classifications. Values defined outside the loop are invariant symbols;
/// values in inner loops without a materialized exit value are unknown.
/// Resolves an operand through SSA copy chains: `j1 = n1` makes `j1`
/// transparent, matching the paper's substitution of initial values.
pub fn resolve_copies(ssa: &SsaFunction, op: Operand) -> Operand {
    let mut cur = op;
    // Fuel guards against (ill-formed) copy cycles.
    for _ in 0..64 {
        match cur {
            Operand::Value(v) => match ssa.def(v) {
                ValueDef::Copy { src } => cur = *src,
                _ => break,
            },
            Operand::Const(_) => break,
        }
    }
    cur
}

/// Classifies an operand with respect to a loop, given the loop's member
/// classifications. Values defined outside the loop are invariant symbols;
/// values in inner loops without a materialized exit value are unknown.
pub fn operand_class(
    ssa: &SsaFunction,
    forest: &LoopForest,
    loop_id: Loop,
    classes: &impl ClassLookup,
    op: &Operand,
) -> Class {
    let op = &resolve_copies(ssa, *op);
    match op {
        Operand::Const(c) => Class::Invariant(SymPoly::from_integer(i128::from(*c))),
        Operand::Value(v) => {
            if let Some(cls) = classes.lookup_class(*v) {
                return cls.clone();
            }
            let block = ssa.def_block(*v);
            if forest.contains(loop_id, block) {
                // Defined in this loop but not classified: an inner-loop
                // value whose exit value was not materialized.
                Class::Unknown
            } else {
                Class::Invariant(SymPoly::symbol(sym_of_value(*v)))
            }
        }
    }
}

/// The operator algebra of §5.1: combines the classes of two operands.
pub fn combine_classes(loop_id: Loop, op: BinOp, lhs: &Class, rhs: &Class) -> Class {
    use Class::*;
    match op {
        BinOp::Add => add_classes(loop_id, lhs, rhs),
        BinOp::Sub => {
            let neg = negate_class(loop_id, rhs);
            add_classes(loop_id, lhs, &neg)
        }
        BinOp::Mul => mul_classes(loop_id, lhs, rhs),
        BinOp::Div => match (lhs, rhs) {
            (Invariant(a), Invariant(b)) => {
                // Integer division: only fold exact constant division.
                match (a.constant_value(), b.constant_value()) {
                    (Some(x), Some(y)) if !y.is_zero() => match x.checked_div(&y) {
                        Ok(q) if q.is_integer() => Invariant(SymPoly::constant(q)),
                        _ => Unknown,
                    },
                    _ => Unknown,
                }
            }
            _ => Unknown,
        },
        BinOp::Exp => match (lhs, rhs) {
            (Invariant(a), Invariant(b)) => match (a.constant_value(), b.constant_value()) {
                (Some(base), Some(e)) if e.is_integer() => {
                    let Some(e) = e.as_integer() else {
                        return Unknown;
                    };
                    let Ok(e32) = i32::try_from(e) else {
                        return Unknown;
                    };
                    if e32 < 0 {
                        return Unknown;
                    }
                    match base.checked_pow(e32) {
                        Ok(v) => Invariant(SymPoly::constant(v)),
                        Err(_) => Unknown,
                    }
                }
                _ => Unknown,
            },
            (Invariant(g), Induction(cf)) if cf.is_linear() => {
                // g^(a + b·h) = g^a · (g^b)^h — a geometric IV when g, a,
                // b are integer constants with a, b ≥ 0.
                let (Some(g), Some(a), Some(b)) = (
                    g.constant_value(),
                    cf.coeffs[0].constant_value(),
                    cf.coeffs[1].constant_value(),
                ) else {
                    return Unknown;
                };
                if !a.is_integer() || !b.is_integer() || g.is_zero() {
                    return Unknown;
                }
                let (Some(a), Some(b)) = (a.as_integer(), b.as_integer()) else {
                    return Unknown;
                };
                if a < 0 || b < 0 {
                    return Unknown;
                }
                let (Ok(a32), Ok(b32)) = (i32::try_from(a), i32::try_from(b)) else {
                    return Unknown;
                };
                let (Ok(coeff), Ok(base)) = (g.checked_pow(a32), g.checked_pow(b32)) else {
                    return Unknown;
                };
                Induction(ClosedForm::from_parts(
                    loop_id,
                    vec![SymPoly::zero()],
                    vec![(base, SymPoly::constant(coeff))],
                ))
                .normalized()
            }
            _ => Unknown,
        },
    }
}

fn add_classes(loop_id: Loop, lhs: &Class, rhs: &Class) -> Class {
    use Class::*;
    // Mixed geometric forms participate in the algebra through their
    // closed form; re-normalization re-promotes results that stay mixed.
    if let MixedGeometric(mg) = lhs {
        return add_classes(loop_id, &Induction(mg.to_closed_form()), rhs);
    }
    if let MixedGeometric(mg) = rhs {
        return add_classes(loop_id, lhs, &Induction(mg.to_closed_form()));
    }
    match (lhs, rhs) {
        (Invariant(a), Invariant(b)) => match a.checked_add(b) {
            Ok(s) => Invariant(s),
            Err(_) => Unknown,
        },
        (Induction(_) | Invariant(_), Induction(_) | Invariant(_)) => {
            let (Some(a), Some(b)) = (lhs.closed_form(loop_id), rhs.closed_form(loop_id)) else {
                return Unknown;
            };
            match a.add(&b) {
                Some(cf) => Induction(cf).normalized(),
                None => Unknown,
            }
        }
        (Periodic(p), Invariant(c)) | (Invariant(c), Periodic(p)) => {
            let values = p
                .values
                .iter()
                .map(|v| v.checked_add(c).ok())
                .collect::<Option<Vec<_>>>();
            match values {
                Some(values) => Periodic(crate::class::Periodic {
                    loop_id: p.loop_id,
                    values,
                    phase: p.phase,
                }),
                None => Unknown,
            }
        }
        (Monotonic(m), Invariant(_)) | (Invariant(_), Monotonic(m)) => Monotonic(*m),
        (Monotonic(m1), Monotonic(m2)) if m1.direction == m2.direction => {
            Monotonic(crate::class::Monotonic {
                loop_id: m1.loop_id,
                direction: m1.direction,
                strict: m1.strict || m2.strict,
                family: if m1.family == m2.family {
                    m1.family
                } else {
                    None
                },
            })
        }
        (Monotonic(m), Induction(cf)) | (Induction(cf), Monotonic(m)) => {
            // Monotonic + co-directed induction stays monotonic (§5.1).
            let cf_ok = match m.direction {
                Direction::Increasing => cf.is_nondecreasing(),
                Direction::Decreasing => cf.neg().map(|n| n.is_nondecreasing()).unwrap_or(false),
            };
            if cf_ok {
                Monotonic(*m)
            } else {
                Unknown
            }
        }
        (
            WrapAround {
                order,
                steady,
                initials,
            },
            Invariant(c),
        )
        | (
            Invariant(c),
            WrapAround {
                order,
                steady,
                initials,
            },
        ) => {
            let inner = add_classes(loop_id, steady, &Invariant(c.clone()));
            if matches!(inner, Unknown) {
                return Unknown;
            }
            let initials = initials
                .iter()
                .map(|v| v.checked_add(c).ok())
                .collect::<Option<Vec<_>>>();
            match initials {
                Some(initials) => WrapAround {
                    order: *order,
                    steady: Box::new(inner),
                    initials,
                },
                None => Unknown,
            }
        }
        _ => Unknown,
    }
}

fn mul_classes(_loop_id: Loop, lhs: &Class, rhs: &Class) -> Class {
    use Class::*;
    // Mixed geometric forms participate through their closed form, as in
    // `add_classes`.
    if let MixedGeometric(mg) = lhs {
        return mul_classes(_loop_id, &Induction(mg.to_closed_form()), rhs);
    }
    if let MixedGeometric(mg) = rhs {
        return mul_classes(_loop_id, lhs, &Induction(mg.to_closed_form()));
    }
    match (lhs, rhs) {
        (Invariant(a), Invariant(b)) => match a.checked_mul(b) {
            Ok(p) => Invariant(p),
            Err(_) => Unknown,
        },
        (Induction(cf), Invariant(s)) | (Invariant(s), Induction(cf)) => match cf.scale(s) {
            Some(p) => Induction(p).normalized(),
            None => Unknown,
        },
        (Induction(a), Induction(b)) => match a.mul(b) {
            Some(p) => Induction(p).normalized(),
            None => Unknown,
        },
        (Periodic(p), Invariant(s)) | (Invariant(s), Periodic(p)) => {
            let values = p
                .values
                .iter()
                .map(|v| v.checked_mul(s).ok())
                .collect::<Option<Vec<_>>>();
            match values {
                Some(values) => Periodic(crate::class::Periodic {
                    loop_id: p.loop_id,
                    values,
                    phase: p.phase,
                }),
                None => Unknown,
            }
        }
        (Monotonic(m), Invariant(s)) | (Invariant(s), Monotonic(m)) => {
            match s.constant_value() {
                Some(c) if c > Rational::ZERO => Monotonic(*m),
                Some(c) if c < Rational::ZERO => Monotonic(crate::class::Monotonic {
                    loop_id: m.loop_id,
                    direction: match m.direction {
                        Direction::Increasing => Direction::Decreasing,
                        Direction::Decreasing => Direction::Increasing,
                    },
                    strict: m.strict,
                    family: m.family,
                }),
                Some(_) => Invariant(SymPoly::zero()), // × 0
                None => Unknown,
            }
        }
        _ => Unknown,
    }
}

/// Negates a class.
#[allow(clippy::only_used_in_recursion)] // part of the public algebra API
pub fn negate_class(loop_id: Loop, cls: &Class) -> Class {
    use Class::*;
    match cls {
        Invariant(p) => match p.checked_neg() {
            Ok(n) => Invariant(n),
            Err(_) => Unknown,
        },
        Induction(cf) => match cf.neg() {
            Some(n) => Induction(n).normalized(),
            None => Unknown,
        },
        MixedGeometric(mg) => match mg.to_closed_form().neg() {
            Some(n) => Induction(n).normalized(),
            None => Unknown,
        },
        Periodic(p) => {
            let values = p
                .values
                .iter()
                .map(|v| v.checked_neg().ok())
                .collect::<Option<Vec<_>>>();
            match values {
                Some(values) => Periodic(crate::class::Periodic {
                    loop_id: p.loop_id,
                    values,
                    phase: p.phase,
                }),
                None => Unknown,
            }
        }
        Monotonic(m) => Monotonic(crate::class::Monotonic {
            loop_id: m.loop_id,
            direction: match m.direction {
                Direction::Increasing => Direction::Decreasing,
                Direction::Decreasing => Direction::Increasing,
            },
            strict: m.strict,
            family: m.family,
        }),
        WrapAround {
            order,
            steady,
            initials,
        } => {
            let inner = negate_class(loop_id, steady);
            if matches!(inner, Unknown) {
                return Unknown;
            }
            let initials = initials
                .iter()
                .map(|v| v.checked_neg().ok())
                .collect::<Option<Vec<_>>>();
            match initials {
                Some(initials) => WrapAround {
                    order: *order,
                    steady: Box::new(inner),
                    initials,
                },
                None => Unknown,
            }
        }
        Unknown => Unknown,
    }
}

/// Evaluates a symbolic polynomial in the class domain: each symbol is
/// classified and the polynomial structure is recombined with the operator
/// algebra. Used to classify materialized exit expressions.
pub fn class_of_sympoly(
    loop_id: Loop,
    poly: &SymPoly,
    classify_symbol: &dyn Fn(Value) -> Class,
) -> Class {
    let mut total = Class::Invariant(SymPoly::zero());
    for (monomial, coeff) in poly.iter() {
        let mut term = Class::Invariant(SymPoly::constant(*coeff));
        for &(sym, pow) in monomial.factors() {
            let base = classify_symbol(value_of_sym(sym));
            for _ in 0..pow {
                term = mul_classes(loop_id, &term, &base);
            }
        }
        total = add_classes(loop_id, &total, &term);
    }
    total
}

/// Failure signal inside an SCR analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NonAffine;

/// `value = a·φ + b(h)` relative to the loop-header φ at iteration `h`.
#[derive(Debug, Clone, PartialEq)]
struct Transform {
    a: Rational,
    b: ClosedForm,
}

/// Offset sign for the monotonic fallback (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sign {
    Zero,
    Pos,
    Neg,
    NonNeg,
    NonPos,
}

impl Sign {
    fn join(self, other: Sign) -> Option<Sign> {
        use Sign::*;
        Some(match (self, other) {
            (a, b) if a == b => a,
            (Zero, Pos)
            | (Pos, Zero)
            | (Pos, NonNeg)
            | (NonNeg, Pos)
            | (Zero, NonNeg)
            | (NonNeg, Zero) => NonNeg,
            (Zero, Neg)
            | (Neg, Zero)
            | (Neg, NonPos)
            | (NonPos, Neg)
            | (Zero, NonPos)
            | (NonPos, Zero) => NonPos,
            _ => return None,
        })
    }

    fn add(self, other: Sign) -> Option<Sign> {
        use Sign::*;
        Some(match (self, other) {
            (Zero, x) | (x, Zero) => x,
            (Pos, Pos) | (Pos, NonNeg) | (NonNeg, Pos) => Pos,
            (NonNeg, NonNeg) => NonNeg,
            (Neg, Neg) | (Neg, NonPos) | (NonPos, Neg) => Neg,
            (NonPos, NonPos) => NonPos,
            _ => return None,
        })
    }

    fn negate(self) -> Sign {
        use Sign::*;
        match self {
            Zero => Zero,
            Pos => Neg,
            Neg => Pos,
            NonNeg => NonPos,
            NonPos => NonNeg,
        }
    }

    fn of_rational(r: Rational) -> Sign {
        match r.signum() {
            1 => Sign::Pos,
            -1 => Sign::Neg,
            _ => Sign::Zero,
        }
    }
}

struct Cx<'a> {
    ssa: &'a SsaFunction,
    forest: &'a LoopForest,
    loop_id: Loop,
    header: Block,
    preheader: Option<Block>,
    latch: Option<Block>,
    nodes: Vec<Value>,
    exit_exprs: &'a EntityMap<Value, SymPoly>,
    config: &'a AnalysisConfig,
    meter: &'a BudgetMeter,
    classes: &'a mut EntityMap<Value, Class>,
    scratch: &'a mut Scratch,
    pool: &'a mut ScrPool,
}

/// Dense per-SCR working state, hoisted out of the per-SCR calls and
/// reused so each SCR costs O(|scr|), not O(max value index). The memo
/// and periodic tables are not cleared between SCRs: within one loop,
/// SCRs partition the value space, so entries written while analyzing one
/// SCR can never be read while analyzing another. `members` carries
/// meaning across lookups and is unwound entry-by-entry after each SCR;
/// everything else is cleared by key in [`Cx::finish`] (value indices
/// restart per function, so stale entries would alias across functions).
#[derive(Default)]
struct Scratch {
    members: EntitySet<Value>,
    affine_memo: EntityMap<Value, Result<Transform, NonAffine>>,
    sign_memo: EntityMap<Value, Option<Sign>>,
    sigma: EntityMap<Value, Value>,
    inits: EntityMap<Value, SymPoly>,
    phase_of: EntityMap<Value, usize>,
    header_phis: Vec<Value>,
}

impl<'a> Cx<'a> {
    fn new(
        ssa: &'a SsaFunction,
        forest: &'a LoopForest,
        loop_id: Loop,
        exit_exprs: &'a EntityMap<Value, SymPoly>,
        config: &'a AnalysisConfig,
        meter: &'a BudgetMeter,
        loop_scratch: &'a mut LoopScratch,
    ) -> Cx<'a> {
        let data = forest.data(loop_id);
        let header = data.header;
        let preheader = forest.preheader(ssa.func(), loop_id);
        let latch = forest.single_latch(loop_id);
        // Region: blocks whose innermost loop is this one.
        let mut region_blocks: Vec<Block> = data
            .blocks
            .iter()
            .copied()
            .filter(|&b| forest.innermost(b) == Some(loop_id))
            .collect();
        region_blocks.sort_by_key(|b| biv_ir::EntityId::index(*b));
        let mut nodes = Vec::new();
        for &b in &region_blocks {
            let sb = ssa.block(b);
            for &phi in &sb.phis {
                nodes.push(phi);
            }
            for inst in &sb.body {
                if let SsaInst::Def(v) = inst {
                    nodes.push(*v);
                }
            }
        }
        Cx {
            ssa,
            forest,
            loop_id,
            header,
            preheader,
            latch,
            nodes,
            exit_exprs,
            config,
            meter,
            classes: &mut loop_scratch.classes,
            scratch: &mut loop_scratch.scr,
            pool: &mut loop_scratch.pool,
        }
    }

    /// Drains the dense scratch into the compact result, clearing every
    /// entry this call wrote so the scratch is clean for the next loop
    /// (and the next function — value indices restart there).
    fn finish(self) -> VecMap<Value, Class> {
        let mut out: Vec<(Value, Class)> = Vec::with_capacity(self.classes.len());
        for &v in &self.nodes {
            if let Some(cls) = self.classes.remove(v) {
                out.push((v, cls));
            }
        }
        // Most loops touch only a subset of the scratch tables (e.g. no
        // periodic SCRs means `sigma`/`inits`/`phase_of` stay empty); a
        // table nobody wrote needs no clearing sweep.
        let s = self.scratch;
        if !s.affine_memo.is_empty() {
            for &v in &self.nodes {
                s.affine_memo.remove(v);
            }
        }
        if !s.sign_memo.is_empty() {
            for &v in &self.nodes {
                s.sign_memo.remove(v);
            }
        }
        if !s.sigma.is_empty() || !s.inits.is_empty() || !s.phase_of.is_empty() {
            for &v in &self.nodes {
                s.sigma.remove(v);
                s.inits.remove(v);
                s.phase_of.remove(v);
            }
        }
        // `FromIterator` sorts by value index; `nodes` is block order.
        out.into_iter().collect()
    }

    fn run(&mut self) {
        if self.preheader.is_none() || self.latch.is_none() {
            // Unsimplified loop shape: classify nothing.
            for &v in &self.nodes {
                self.classes.insert(v, Class::Unknown);
            }
            return;
        }
        if self.meter.region_nodes_exceeded(self.nodes.len()) {
            // Region over budget: don't even build the SCC graph.
            for &v in &self.nodes {
                self.classes.insert(v, Class::Unknown);
            }
            return;
        }
        let pool = std::mem::take(self.pool);
        let mut pool = pool;
        strongly_connected_regions_into(&self.nodes, |v, out| self.graph_edges(v, out), &mut pool);
        for i in 0..pool.len() {
            let (members, cyclic) = pool.get(i);
            // Budget checkpoints, one per SCR: past the deadline, or
            // facing an oversized cycle, degrade this SCR to Unknown and
            // keep going — later SCRs may still be cheap to classify.
            if self.meter.deadline_exceeded() || (cyclic && self.meter.scc_exceeded(members.len()))
            {
                for &v in members {
                    self.classes.insert(v, Class::Unknown);
                }
                continue;
            }
            if cyclic {
                self.classify_cycle(members);
            } else {
                let v = members[0];
                let cls = self.classify_single(v);
                self.classes.insert(v, cls);
            }
        }
        *self.pool = pool;
    }

    /// Appends `v`'s SSA-graph successor edges (restricted to the region)
    /// to `out`. Synthetic exit values depend on the symbols of their exit
    /// expression.
    fn graph_edges(&self, v: Value, out: &mut Vec<Value>) {
        if let ValueDef::ExitValue { .. } = self.ssa.def(v) {
            if let Some(expr) = self.exit_exprs.get(v) {
                out.extend(expr.symbols().into_iter().map(value_of_sym));
                return;
            }
        }
        self.ssa.def(v).operands(out);
    }

    fn class_of_operand(&self, op: &Operand) -> Class {
        operand_class(self.ssa, self.forest, self.loop_id, &*self.classes, op)
    }

    fn classify_symbol_fn(&self) -> impl Fn(Value) -> Class + '_ {
        move |v: Value| self.class_of_operand(&Operand::Value(v))
    }

    /// Splits a header φ into (initial operand, loop-carried operand).
    fn phi_init_carried(&self, phi: Value) -> Option<(Operand, Operand)> {
        let ValueDef::Phi { args } = self.ssa.def(phi) else {
            return None;
        };
        let pre = self.preheader?;
        let latch = self.latch?;
        let mut init = None;
        let mut carried = None;
        for (pred, op) in args {
            if *pred == pre {
                init = Some(*op);
            } else if *pred == latch {
                carried = Some(*op);
            } else {
                return None;
            }
        }
        Some((init?, carried?))
    }

    // ------------------------------------------------------------------
    // Trivial SCRs: the operator algebra + wrap-around detection.
    // ------------------------------------------------------------------

    fn classify_single(&mut self, v: Value) -> Class {
        match self.ssa.def(v) {
            ValueDef::Phi { args } => {
                if self.ssa.def_block(v) == self.header {
                    self.classify_wraparound(v)
                } else {
                    // A join φ outside any data cycle: all incoming
                    // classes must agree.
                    let classes: Vec<Class> = args
                        .iter()
                        .map(|(_, op)| self.class_of_operand(op))
                        .collect();
                    match classes.split_first() {
                        Some((first, rest)) if rest.iter().all(|c| c == first) => first.clone(),
                        _ => Class::Unknown,
                    }
                }
            }
            ValueDef::Copy { src } => self.class_of_operand(src),
            ValueDef::Neg { src } => {
                let c = self.class_of_operand(src);
                negate_class(self.loop_id, &c)
            }
            ValueDef::Binary { op, lhs, rhs } => {
                let l = self.class_of_operand(lhs);
                let r = self.class_of_operand(rhs);
                combine_classes(self.loop_id, *op, &l, &r)
            }
            // Array loads have non-invariant addresses in general; the
            // paper's invariant scalar loads are registers in this IR.
            ValueDef::Load { .. } => Class::Unknown,
            ValueDef::LiveIn { .. } => Class::Invariant(SymPoly::symbol(sym_of_value(v))),
            ValueDef::ExitValue { .. } => match self.exit_exprs.get(v) {
                Some(expr) => class_of_sympoly(self.loop_id, expr, &self.classify_symbol_fn()),
                None => Class::Unknown,
            },
        }
    }

    /// A loop-header φ alone in a trivial SCR: a wrap-around variable
    /// (§4.1), possibly refinable to the underlying class.
    fn classify_wraparound(&mut self, phi: Value) -> Class {
        if !self.config.wraparound {
            return Class::Unknown;
        }
        let Some((init_op, carried_op)) = self.phi_init_carried(phi) else {
            return Class::Unknown;
        };
        let init = operand_to_sympoly(&resolve_copies(self.ssa, init_op));
        let carried = self.class_of_operand(&carried_op);
        match carried {
            Class::Invariant(s) => {
                if s == init {
                    // The "wrapped" value equals the init: plain invariant.
                    Class::Invariant(s)
                } else {
                    Class::WrapAround {
                        order: 1,
                        steady: Box::new(Class::Invariant(s)),
                        initials: vec![init],
                    }
                }
            }
            Class::Induction(cf) => {
                // φ(h) = cf(h-1) for h ≥ 1. If the initial value lies on
                // the shifted sequence, the φ is itself an IV (§4.1).
                if let Some(shifted) = cf.shift_back() {
                    if shifted.eval_at(0).as_ref() == Some(&init) {
                        return Class::Induction(shifted).normalized();
                    }
                }
                Class::WrapAround {
                    order: 1,
                    steady: Box::new(Class::Induction(cf)),
                    initials: vec![init],
                }
            }
            Class::MixedGeometric(mg) => {
                // Same refinement as Induction, through the closed form;
                // re-normalization re-promotes a refined mixed form.
                let cf = mg.to_closed_form();
                if let Some(shifted) = cf.shift_back() {
                    if shifted.eval_at(0).as_ref() == Some(&init) {
                        return Class::Induction(shifted).normalized();
                    }
                }
                Class::WrapAround {
                    order: 1,
                    steady: Box::new(Class::MixedGeometric(mg)),
                    initials: vec![init],
                }
            }
            Class::Periodic(p) => {
                // φ(h) = family[(phase + h - 1) mod p] for h ≥ 1: a
                // periodic with retarded phase — exact if init matches.
                let period = p.period();
                let new_phase = (p.phase + period - 1) % period;
                if p.values.get(new_phase) == Some(&init) {
                    Class::Periodic(Periodic {
                        loop_id: p.loop_id,
                        values: p.values,
                        phase: new_phase,
                    })
                } else {
                    Class::WrapAround {
                        order: 1,
                        steady: Box::new(Class::Periodic(p)),
                        initials: vec![init],
                    }
                }
            }
            Class::WrapAround {
                order,
                steady,
                initials,
            } => {
                let mut new_initials = vec![init];
                new_initials.extend(initials);
                Class::WrapAround {
                    order: order + 1,
                    steady,
                    initials: new_initials,
                }
            }
            Class::Monotonic(m) => Class::WrapAround {
                order: 1,
                steady: Box::new(Class::Monotonic(m)),
                initials: vec![init],
            },
            Class::Unknown => Class::Unknown,
        }
    }

    // ------------------------------------------------------------------
    // Cyclic SCRs.
    // ------------------------------------------------------------------

    fn classify_cycle(&mut self, members: &[Value]) {
        let mut scratch = std::mem::take(self.scratch);
        for &v in members {
            scratch.members.insert(v);
        }
        let mut header_phis = std::mem::take(&mut scratch.header_phis);
        header_phis.clear();
        header_phis.extend(
            members
                .iter()
                .copied()
                .filter(|&v| self.ssa.def(v).is_phi() && self.ssa.def_block(v) == self.header),
        );
        let result: Option<()> = match header_phis.len() {
            0 => None, // data cycle not through the header: unanalyzable
            1 => self
                .classify_affine_scr(members, &mut scratch, header_phis[0])
                .or_else(|| self.classify_monotonic_scr(members, &mut scratch, header_phis[0])),
            _ => self.classify_periodic_scr(members, &mut scratch, &header_phis),
        };
        if result.is_none() {
            for &v in members {
                self.classes.insert(v, Class::Unknown);
            }
        }
        for &v in members {
            scratch.members.remove(v);
        }
        scratch.header_phis = header_phis;
        *self.scratch = scratch;
    }

    /// Copy-only SCRs threading several header φs: a periodic family
    /// (§4.2).
    fn classify_periodic_scr(
        &mut self,
        scr_members: &[Value],
        scratch: &mut Scratch,
        header_phis: &[Value],
    ) -> Option<()> {
        if !self.config.periodic {
            return None;
        }
        let members = &scratch.members;
        let sigma = &mut scratch.sigma;
        let inits = &mut scratch.inits;
        let phase_of = &mut scratch.phase_of;
        // Only header φs and copies are allowed.
        for &v in scr_members {
            match self.ssa.def(v) {
                ValueDef::Phi { .. } => {
                    if self.ssa.def_block(v) != self.header {
                        return None;
                    }
                }
                ValueDef::Copy { .. } => {}
                _ => return None,
            }
        }
        // Chase each φ's carried value through copies to the next φ.
        let chase = |start: Operand| -> Option<Value> {
            let mut cur = start.as_value()?;
            let mut fuel = scr_members.len() + 1;
            while fuel > 0 {
                fuel -= 1;
                if !members.contains(cur) {
                    return None;
                }
                match self.ssa.def(cur) {
                    ValueDef::Phi { .. } => return Some(cur),
                    ValueDef::Copy { src } => cur = src.as_value()?,
                    _ => return None,
                }
            }
            None
        };
        let period = header_phis.len();
        for &phi in header_phis {
            let (init_op, carried_op) = self.phi_init_carried(phi)?;
            // Initial values must come from outside the loop.
            if let Some(v) = init_op.as_value() {
                if self.forest.contains(self.loop_id, self.ssa.def_block(v)) {
                    return None;
                }
            }
            inits.insert(phi, operand_to_sympoly(&resolve_copies(self.ssa, init_op)));
            sigma.insert(phi, chase(carried_op)?);
        }
        // Walk the σ-orbit from the first φ; it must visit every φ.
        let start = header_phis[0];
        let mut orbit = vec![start];
        let mut cur = sigma[start];
        while cur != start {
            if orbit.len() > period {
                return None;
            }
            orbit.push(cur);
            cur = sigma[cur];
        }
        if orbit.len() != period {
            return None;
        }
        // F(h) = σ^h(F)(0): the family values in rotation order from the
        // start φ.
        let values: Vec<SymPoly> = orbit.iter().map(|&phi| inits[phi].clone()).collect();
        for (k, &phi) in orbit.iter().enumerate() {
            phase_of.insert(phi, k);
        }
        for &phi in header_phis {
            self.classes.insert(
                phi,
                Class::Periodic(Periodic {
                    loop_id: self.loop_id,
                    values: values.clone(),
                    phase: phase_of[phi],
                }),
            );
        }
        // Copies take the phase of the φ they (transitively) read.
        for &v in scr_members {
            if let ValueDef::Copy { src } = self.ssa.def(v) {
                let phi = chase(*src)?;
                self.classes.insert(
                    v,
                    Class::Periodic(Periodic {
                        loop_id: self.loop_id,
                        values: values.clone(),
                        phase: phase_of[phi],
                    }),
                );
            }
        }
        Some(())
    }

    /// Single-header-φ SCR: affine-transform analysis producing linear,
    /// polynomial, geometric, or flip-flop closed forms.
    fn classify_affine_scr(
        &mut self,
        scr_members: &[Value],
        scratch: &mut Scratch,
        phi: Value,
    ) -> Option<()> {
        let members = &scratch.members;
        let memo = &mut scratch.affine_memo;
        let (init_op, carried_op) = self.phi_init_carried(phi)?;
        let init = operand_to_sympoly(&resolve_copies(self.ssa, init_op));
        let latch_t = self
            .transform_operand(&carried_op, phi, members, memo)
            .ok()?;
        // Cumulative effect per iteration: φ ← a·φ + b(h).
        let a = latch_t.a;
        let b = latch_t.b;
        let cf_phi: ClosedForm = if a == Rational::ONE && b.is_invariant() {
            // Basic linear induction variable.
            ClosedForm::linear(self.loop_id, init.clone(), b.coeffs[0].clone())
        } else {
            if !self.config.nonlinear {
                return None;
            }
            if a.is_zero() {
                return None; // degenerate (not a real cycle)
            }
            // Determine the fitting basis.
            let mut bases: Vec<Rational> = b.geo.iter().map(|(g, _)| *g).collect();
            let poly_degree = if a == Rational::ONE {
                b.degree() + 1
            } else {
                if bases.contains(&a) {
                    return None; // h·a^h term: unrepresentable
                }
                bases.push(a);
                b.degree()
            };
            bases.sort();
            bases.dedup();
            if self.meter.order_exceeded(poly_degree) {
                // Over the polynomial-order budget: the whole SCR
                // degrades to Unknown (no fallback reclassification —
                // the breach is the recorded reason).
                for &m in scr_members {
                    self.classes.insert(m, Class::Unknown);
                }
                return Some(());
            }
            // Sample the recurrence symbolically and invert the basis
            // matrix (§4.3).
            let n = poly_degree + 1 + bases.len();
            let mut samples = Vec::with_capacity(n);
            let mut v = init.clone();
            for h in 0..n {
                samples.push(v.clone());
                if h + 1 < n {
                    let step = b.eval_at(h as i128)?;
                    v = v.checked_scale(&a).ok()?.checked_add(&step).ok()?;
                }
            }
            let fit = fit_mixed(&samples, poly_degree, &bases).ok()??;
            let geo = bases.into_iter().zip(fit.geo).collect();
            ClosedForm::from_parts(self.loop_id, fit.poly, geo)
        };
        // Classify every member through its transform. `a` is ±1 or 0 in
        // almost every real SCR, so dispatch on it before paying for a
        // symbolic scale.
        for &m in scr_members {
            let cls = match self.transform_value(m, phi, members, memo) {
                Ok(t) => {
                    let combined = if t.a == Rational::ONE {
                        cf_phi.add(&t.b)
                    } else if t.a.is_zero() {
                        Some(t.b)
                    } else {
                        cf_phi
                            .scale(&SymPoly::constant(t.a))
                            .and_then(|s| s.add(&t.b))
                    };
                    match combined {
                        Some(cf) => Class::Induction(cf).normalized(),
                        None => Class::Unknown,
                    }
                }
                Err(NonAffine) => Class::Unknown,
            };
            self.classes.insert(m, cls);
        }
        Some(())
    }

    fn transform_value(
        &self,
        v: Value,
        phi: Value,
        members: &EntitySet<Value>,
        memo: &mut EntityMap<Value, Result<Transform, NonAffine>>,
    ) -> Result<Transform, NonAffine> {
        if v == phi {
            return Ok(Transform {
                a: Rational::ONE,
                b: ClosedForm::constant(self.loop_id, SymPoly::zero()),
            });
        }
        if let Some(t) = memo.get(v) {
            return t.clone();
        }
        // Mark in-progress to cut (impossible in well-formed SCRs) cycles
        // that avoid the header φ.
        memo.insert(v, Err(NonAffine));
        let result = self.transform_value_uncached(v, phi, members, memo);
        memo.insert(v, result.clone());
        result
    }

    fn transform_value_uncached(
        &self,
        v: Value,
        phi: Value,
        members: &EntitySet<Value>,
        memo: &mut EntityMap<Value, Result<Transform, NonAffine>>,
    ) -> Result<Transform, NonAffine> {
        let zero = || ClosedForm::constant(self.loop_id, SymPoly::zero());
        match self.ssa.def(v) {
            ValueDef::Copy { src } => self.transform_operand(src, phi, members, memo),
            ValueDef::Neg { src } => {
                let t = self.transform_operand(src, phi, members, memo)?;
                Ok(Transform {
                    a: t.a.checked_neg().map_err(|_| NonAffine)?,
                    b: t.b.neg().ok_or(NonAffine)?,
                })
            }
            ValueDef::Binary { op, lhs, rhs } => {
                let l = self.transform_operand(lhs, phi, members, memo)?;
                let r = self.transform_operand(rhs, phi, members, memo)?;
                match op {
                    BinOp::Add => Ok(Transform {
                        a: l.a.checked_add(&r.a).map_err(|_| NonAffine)?,
                        b: l.b.add(&r.b).ok_or(NonAffine)?,
                    }),
                    BinOp::Sub => Ok(Transform {
                        a: l.a.checked_sub(&r.a).map_err(|_| NonAffine)?,
                        b: l.b.sub(&r.b).ok_or(NonAffine)?,
                    }),
                    BinOp::Mul => {
                        // (a1·φ + b1)(a2·φ + b2): affine only when at most
                        // one side involves φ, and the φ-free side is a
                        // rational constant (for the φ coefficient) or any
                        // closed form (for the φ-free product).
                        if !l.a.is_zero() && !r.a.is_zero() {
                            return Err(NonAffine);
                        }
                        let (varying, fixed) = if r.a.is_zero() { (l, r) } else { (r, l) };
                        if varying.a.is_zero() {
                            // Pure b×b product.
                            return Ok(Transform {
                                a: Rational::ZERO,
                                b: varying.b.mul(&fixed.b).ok_or(NonAffine)?,
                            });
                        }
                        // φ-coefficient must stay a rational constant.
                        let c = fixed
                            .b
                            .is_invariant()
                            .then(|| fixed.b.coeffs[0].constant_value())
                            .flatten()
                            .ok_or(NonAffine)?;
                        Ok(Transform {
                            a: varying.a.checked_mul(&c).map_err(|_| NonAffine)?,
                            b: varying.b.scale(&SymPoly::constant(c)).ok_or(NonAffine)?,
                        })
                    }
                    BinOp::Div | BinOp::Exp => Err(NonAffine),
                }
            }
            ValueDef::Phi { args } => {
                // Non-header φ inside the SCR: all paths must agree.
                let mut agreed: Option<Transform> = None;
                for (_, op) in args {
                    let t = self.transform_operand(op, phi, members, memo)?;
                    match &agreed {
                        None => agreed = Some(t),
                        Some(prev) if *prev == t => {}
                        Some(_) => return Err(NonAffine),
                    }
                }
                agreed.ok_or(NonAffine)
            }
            ValueDef::ExitValue { .. } => {
                // The exit expression is a polynomial over symbols; it is
                // affine in the SCR when at most linear in SCR symbols.
                let expr = self.exit_exprs.get(v).ok_or(NonAffine)?;
                let mut a = Rational::ZERO;
                let mut b = zero();
                for (monomial, coeff) in expr.iter() {
                    let scr_syms: Vec<_> = monomial
                        .factors()
                        .iter()
                        .filter(|(s, _)| members.contains(value_of_sym(*s)))
                        .collect();
                    match scr_syms.as_slice() {
                        [] => {
                            // φ-free term: classify and fold into b.
                            let mut term = Class::Invariant(SymPoly::constant(*coeff));
                            for &(sym, pow) in monomial.factors() {
                                let base =
                                    self.class_of_operand(&Operand::Value(value_of_sym(sym)));
                                for _ in 0..pow {
                                    term = mul_classes(self.loop_id, &term, &base);
                                }
                            }
                            let cf = term.closed_form(self.loop_id).ok_or(NonAffine)?;
                            b = b.add(&cf).ok_or(NonAffine)?;
                        }
                        [(sym, 1)] if monomial.factors().len() == 1 => {
                            // coeff · (single SCR symbol).
                            let t = self.transform_value(value_of_sym(*sym), phi, members, memo)?;
                            a = a
                                .checked_add(&t.a.checked_mul(coeff).map_err(|_| NonAffine)?)
                                .map_err(|_| NonAffine)?;
                            b = b
                                .add(&t.b.scale(&SymPoly::constant(*coeff)).ok_or(NonAffine)?)
                                .ok_or(NonAffine)?;
                        }
                        _ => return Err(NonAffine),
                    }
                }
                Ok(Transform { a, b })
            }
            ValueDef::Load { .. } | ValueDef::LiveIn { .. } => Err(NonAffine),
        }
    }

    fn transform_operand(
        &self,
        op: &Operand,
        phi: Value,
        members: &EntitySet<Value>,
        memo: &mut EntityMap<Value, Result<Transform, NonAffine>>,
    ) -> Result<Transform, NonAffine> {
        // Resolve copies only when they lead out of the SCR; in-SCR copy
        // chains go through transform_value so members get transforms.
        let resolved = resolve_copies(self.ssa, *op);
        let op = if self.in_scr(op, members) {
            op
        } else {
            &resolved
        };
        match op {
            Operand::Const(c) => Ok(Transform {
                a: Rational::ZERO,
                b: ClosedForm::constant(self.loop_id, SymPoly::from_integer(i128::from(*c))),
            }),
            Operand::Value(v) => {
                if members.contains(*v) {
                    return self.transform_value(*v, phi, members, memo);
                }
                // Out-of-SCR operand: use its class.
                match self.class_of_operand(op) {
                    Class::Invariant(s) => Ok(Transform {
                        a: Rational::ZERO,
                        b: ClosedForm::constant(self.loop_id, s),
                    }),
                    Class::Induction(cf) => Ok(Transform {
                        a: Rational::ZERO,
                        b: cf,
                    }),
                    Class::MixedGeometric(mg) => Ok(Transform {
                        a: Rational::ZERO,
                        b: mg.to_closed_form(),
                    }),
                    _ => Err(NonAffine),
                }
            }
        }
    }

    /// The monotonic fallback (§4.4 with the §5.4 strictness refinement):
    /// offsets relative to the header φ tracked as signs; divergent merges
    /// are allowed as long as the sign is consistent.
    fn classify_monotonic_scr(
        &mut self,
        scr_members: &[Value],
        scratch: &mut Scratch,
        phi: Value,
    ) -> Option<()> {
        if !self.config.monotonic {
            return None;
        }
        let members = &scratch.members;
        let memo = &mut scratch.sign_memo;
        let (_, carried_op) = self.phi_init_carried(phi)?;
        let latch_sign = self.offset_sign_operand(&carried_op, phi, members, memo)?;
        let direction = match latch_sign {
            Sign::Pos | Sign::NonNeg => Direction::Increasing,
            Sign::Neg | Sign::NonPos => Direction::Decreasing,
            Sign::Zero => {
                // The cycle adds nothing: everything offset-zero is the
                // initial value.
                let (init_op, _) = self.phi_init_carried(phi)?;
                let init = operand_to_sympoly(&resolve_copies(self.ssa, init_op));
                for &m in scr_members {
                    let sign = self.offset_sign_value(m, phi, members, memo);
                    let cls = match sign {
                        Some(Sign::Zero) => Class::Invariant(init.clone()),
                        _ => Class::Unknown,
                    };
                    self.classes.insert(m, cls);
                }
                return Some(());
            }
        };
        let phi_strict = matches!(latch_sign, Sign::Pos | Sign::Neg);
        for &m in scr_members {
            let cls = match self.offset_sign_value(m, phi, members, memo) {
                Some(sign) => {
                    // A member whose offset from the header value is
                    // strictly signed assigns a strictly larger (smaller)
                    // value on every execution (§5.4).
                    let strict = match sign {
                        Sign::Pos | Sign::Neg => true,
                        Sign::Zero => phi_strict,
                        _ => false,
                    };
                    // Direction consistency: in an increasing family a
                    // negative offset is still fine (the member trails the
                    // φ), since monotonicity follows from the family
                    // growth, not the offset sign — but strictness does
                    // not. Conservatively require non-conflicting sign.
                    let compatible = match direction {
                        Direction::Increasing => !matches!(sign, Sign::Neg | Sign::NonPos),
                        Direction::Decreasing => !matches!(sign, Sign::Pos | Sign::NonNeg),
                    };
                    let family = Some(FamilyAnchor(
                        u32::try_from(biv_ir::EntityId::index(phi)).unwrap_or(u32::MAX),
                    ));
                    Class::Monotonic(Monotonic {
                        loop_id: self.loop_id,
                        direction,
                        strict: compatible && strict && phi_strict_or_member(sign, phi_strict),
                        family,
                    })
                }
                None => Class::Unknown,
            };
            self.classes.insert(m, cls);
        }
        Some(())
    }

    #[allow(clippy::only_used_in_recursion)] // `phi` anchors the recursion
    fn offset_sign_value(
        &self,
        v: Value,
        phi: Value,
        members: &EntitySet<Value>,
        memo: &mut EntityMap<Value, Option<Sign>>,
    ) -> Option<Sign> {
        if v == phi {
            return Some(Sign::Zero);
        }
        if let Some(s) = memo.get(v) {
            return *s;
        }
        memo.insert(v, None);
        let result = match self.ssa.def(v) {
            ValueDef::Copy { src } => self.offset_sign_operand(src, phi, members, memo),
            ValueDef::Binary {
                op: BinOp::Add,
                lhs,
                rhs,
            } => {
                // Exactly one side stays in the SCR (offset), the other
                // contributes its value sign.
                let (inner, outer) = match (self.in_scr(lhs, members), self.in_scr(rhs, members)) {
                    (true, false) => (lhs, rhs),
                    (false, true) => (rhs, lhs),
                    _ => return cache(memo, v, None),
                };
                let base = self.offset_sign_operand(inner, phi, members, memo)?;
                let addend = self.value_sign_operand(outer)?;
                base.add(addend)
            }
            ValueDef::Binary {
                op: BinOp::Sub,
                lhs,
                rhs,
            } => {
                // Only `scr - outside` keeps the +1 coefficient on φ.
                if !self.in_scr(lhs, members) || self.in_scr(rhs, members) {
                    return cache(memo, v, None);
                }
                let base = self.offset_sign_operand(lhs, phi, members, memo)?;
                let sub = self.value_sign_operand(rhs)?;
                base.add(sub.negate())
            }
            ValueDef::Phi { args } => {
                let mut joined: Option<Sign> = None;
                for (_, op) in args {
                    let s = self.offset_sign_operand(op, phi, members, memo)?;
                    joined = Some(match joined {
                        None => s,
                        Some(j) => j.join(s)?,
                    });
                }
                joined
            }
            _ => None,
        };
        memo.insert(v, result);
        result
    }

    fn in_scr(&self, op: &Operand, members: &EntitySet<Value>) -> bool {
        op.as_value().is_some_and(|v| members.contains(v))
    }

    fn offset_sign_operand(
        &self,
        op: &Operand,
        phi: Value,
        members: &EntitySet<Value>,
        memo: &mut EntityMap<Value, Option<Sign>>,
    ) -> Option<Sign> {
        match op {
            Operand::Value(v) if members.contains(*v) => {
                self.offset_sign_value(*v, phi, members, memo)
            }
            // A non-SCR operand cannot be an offset from φ.
            _ => None,
        }
    }

    /// Sign of the *value* of a φ-free operand, for all iterations.
    fn value_sign_operand(&self, op: &Operand) -> Option<Sign> {
        match self.class_of_operand(op) {
            Class::Invariant(p) => p.constant_value().map(Sign::of_rational),
            Class::Induction(cf) => cf_value_sign(&cf),
            Class::MixedGeometric(mg) => cf_value_sign(&mg.to_closed_form()),
            _ => None,
        }
    }
}

fn phi_strict_or_member(sign: Sign, phi_strict: bool) -> bool {
    match sign {
        Sign::Pos | Sign::Neg => true,
        Sign::Zero => phi_strict,
        _ => false,
    }
}

fn cache(memo: &mut EntityMap<Value, Option<Sign>>, v: Value, s: Option<Sign>) -> Option<Sign> {
    memo.insert(v, s);
    s
}

/// Conservative sign of a closed form's values for all `h ≥ 0`.
fn cf_value_sign(cf: &ClosedForm) -> Option<Sign> {
    let mut sign = Sign::Zero;
    for (k, c) in cf.coeffs.iter().enumerate() {
        let v = c.constant_value()?;
        let s = Sign::of_rational(v);
        // h^k is 0 at h=0 for k ≥ 1, so positive coefficients on higher
        // powers contribute NonNeg, not Pos.
        let s = match (k, s) {
            (0, s) => s,
            (_, Sign::Pos) => Sign::NonNeg,
            (_, Sign::Neg) => Sign::NonPos,
            (_, s) => s,
        };
        sign = sign.add(s)?;
    }
    for (base, coeff) in &cf.geo {
        let c = coeff.constant_value()?;
        if *base <= Rational::ZERO {
            return None;
        }
        // c·g^h with g > 0 keeps the sign of c for all h.
        sign = sign.add(Sign::of_rational(c))?;
    }
    Some(sign)
}
