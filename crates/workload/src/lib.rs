//! Synthetic loop-program generation with known ground truth.
//!
//! The benchmark suite needs programs whose size and class mix are
//! controlled: so many linear induction variables, so many wrap-arounds,
//! periodic families, monotonic packers, and so much straight-line noise.
//! The generator emits mini-language source (exercising the real front
//! end), parses it, and reports the planted counts so tests can check the
//! classifier recovers everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use biv_core::{Analysis, Class};
use biv_ir::parser::parse_program;
use biv_ir::Function;

pub mod rng;

use rng::SplitMix64;

/// What to plant in each generated loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Number of sibling loops.
    pub loops: usize,
    /// Linear induction variables per loop (beyond the loop index).
    pub linear: usize,
    /// Polynomial (second-order) induction variables per loop.
    pub polynomial: usize,
    /// Geometric induction variables per loop.
    pub geometric: usize,
    /// Mixed geometric-linear recurrences per loop (`v ← r·v + c` with
    /// a guaranteed-nonzero additive step, so every plant classifies
    /// `MixedGeometric`, never pure geometric).
    pub mixed_geometric: usize,
    /// Running-sum / index pairs per loop, each in its own mini-loop
    /// with literal initial values — every pair carries exactly one
    /// machine-checkable polynomial invariant
    /// ([`running_sum_relation`]).
    pub running_sums: usize,
    /// Wrap-around variables per loop.
    pub wraparound: usize,
    /// Periodic families (period 3) per loop.
    pub periodic: usize,
    /// Monotonic (conditionally incremented) variables per loop.
    pub monotonic: usize,
    /// Extra two-sided conditionals with unclassifiable merges per loop.
    pub diamonds: usize,
    /// Extra loop-invariant computations per loop.
    pub invariants: usize,
    /// Derived induction variables per loop (`d = i * c` feeding a
    /// store) — strength-reduction targets.
    pub derived: usize,
    /// Flip-flop (period-2 swap) mini-loops per loop — unroll-by-two
    /// targets.
    pub flipflop: usize,
    /// Dead-IV mini-loops per loop (the index's only live use is a
    /// strength-reducible multiplication) — test-replacement targets.
    pub deadiv: usize,
    /// Column-major two-deep nests per loop — interchange targets.
    pub nests: usize,
    /// Constant trip count used in bounds.
    pub trip: i64,
    /// RNG seed (constants vary; structure does not).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            loops: 1,
            linear: 4,
            polynomial: 1,
            geometric: 1,
            mixed_geometric: 0,
            running_sums: 0,
            wraparound: 1,
            periodic: 1,
            monotonic: 1,
            diamonds: 1,
            invariants: 2,
            derived: 0,
            flipflop: 0,
            deadiv: 0,
            nests: 0,
            trip: 100,
            seed: 42,
        }
    }
}

impl WorkloadSpec {
    /// A linear-IV-only mix sized so the generated function has roughly
    /// `target_insts` instructions — for the scaling benchmarks.
    pub fn sized_linear(target_insts: usize, seed: u64) -> WorkloadSpec {
        // Each linear variable contributes ~3 instructions (update, use,
        // subscript temp); each loop ~8 of scaffolding.
        let per_loop = 32usize;
        let loops = (target_insts / (per_loop * 3 + 8)).max(1);
        WorkloadSpec {
            loops,
            linear: per_loop,
            polynomial: 0,
            geometric: 0,
            mixed_geometric: 0,
            running_sums: 0,
            wraparound: 0,
            periodic: 0,
            monotonic: 0,
            diamonds: 0,
            invariants: 0,
            derived: 0,
            flipflop: 0,
            deadiv: 0,
            nests: 0,
            trip: 100,
            seed,
        }
    }

    /// The full mixed mix at a given scale factor.
    pub fn mixed(scale: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            loops: scale.max(1),
            seed,
            ..WorkloadSpec::default()
        }
    }

    /// A mix exercising every transform of `biv-transform` with exactly
    /// known application counts ([`TransformLabels`]). The short trip
    /// count keeps geometric plants inside `i64` and differential
    /// interpretation cheap.
    pub fn transforms(scale: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            loops: scale.max(1),
            linear: 2,
            polynomial: 1,
            geometric: 1,
            mixed_geometric: 0,
            running_sums: 0,
            wraparound: 1,
            periodic: 1,
            monotonic: 1,
            diamonds: 1,
            invariants: 1,
            derived: 2,
            flipflop: 1,
            deadiv: 1,
            nests: 1,
            trip: 12,
            seed,
        }
    }

    /// The invariant-serving mix: `MixedGeometric` plants plus
    /// running-sum / index pairs with exact ground-truth labels. The
    /// short trip count keeps the mixed-geometric values inside `i64`
    /// while the checker interprets the whole function — an overflow in
    /// one loop truncates every later loop's observed iterations, which
    /// would (correctly, but unhelpfully) reject the planted
    /// invariants.
    pub fn invariants(scale: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            loops: scale.max(1),
            linear: 1,
            polynomial: 0,
            geometric: 0,
            mixed_geometric: 2,
            running_sums: 2,
            wraparound: 0,
            periodic: 0,
            monotonic: 0,
            diamonds: 0,
            invariants: 0,
            derived: 0,
            flipflop: 0,
            deadiv: 0,
            nests: 0,
            trip: 12,
            seed,
        }
    }
}

/// The exact relation every planted running-sum pair must verify, in
/// the engine's canonical rendering: with the sum starting at 0 and the
/// index at 1, `2s = i² − i` normalizes to `2s + i − i² = 0`. `sum` and
/// `index` are the canonical SSA names of the two loop-header φs.
pub fn running_sum_relation(sum: &str, index: &str) -> String {
    format!("2*{sum} + {index} - {index}^2 = 0")
}

/// Ground truth planted by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpectedCounts {
    /// Linear IVs planted (including the loop indices).
    pub linear: usize,
    /// Polynomial IVs planted.
    pub polynomial: usize,
    /// Geometric IVs planted.
    pub geometric: usize,
    /// Mixed geometric-linear IVs planted (guaranteed-nonzero step, so
    /// each must classify `MixedGeometric` exactly, never pure
    /// geometric).
    pub mixed_geometric: usize,
    /// Running-sum / index pairs planted, one verified invariant each.
    pub running_sums: usize,
    /// Wrap-around variables planted.
    pub wraparound: usize,
    /// Periodic variables planted (3 per family).
    pub periodic: usize,
    /// Monotonic variables planted.
    pub monotonic: usize,
}

/// Ground-truth transform applications planted by the generator: how
/// many times each `biv-transform` pass should fire on the generated
/// function. Plants are isolated (each transform target sits in its own
/// loop or feeds nothing else) so the counts are exact, not lower
/// bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransformLabels {
    /// Multiplications strength reduction must eliminate
    /// (derived-IV plants plus the dead-IV mini-loops' feeders).
    pub strength_reduce: usize,
    /// Loops wrap-around peeling must peel (loops containing at least
    /// one wrap-around plant).
    pub peel: usize,
    /// Flip-flop mini-loops unrolling must unroll by two.
    pub unroll: usize,
    /// Induction variables dead-IV elimination must delete.
    pub dead_iv: usize,
    /// Column-major nests loop interchange must transpose.
    pub interchange: usize,
}

impl TransformLabels {
    /// Total planted transform applications.
    pub fn total(&self) -> usize {
        self.strength_reduce + self.peel + self.unroll + self.dead_iv + self.interchange
    }
}

/// One planted running-sum pair: the mini-loop's label plus the pair's
/// exact invariant, fixed by construction (sum starts at 0, index at
/// 1). Tests resolve the φ names from the analysis and compare the
/// emitted relation to [`running_sum_relation`] verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantPlant {
    /// The mini-loop's source label (and therefore its loop name).
    pub label: String,
}

/// A generated workload.
#[derive(Debug)]
pub struct Workload {
    /// The generated source text.
    pub source: String,
    /// The parsed function.
    pub func: Function,
    /// Ground-truth class counts.
    pub expected: ExpectedCounts,
    /// Ground-truth transform applications.
    pub labels: TransformLabels,
    /// Ground-truth invariant plants, one per running-sum pair.
    pub invariant_plants: Vec<InvariantPlant>,
}

/// Generates a workload from a spec.
///
/// # Panics
///
/// Panics if the generator emits unparsable source (a bug).
pub fn generate(spec: &WorkloadSpec) -> Workload {
    let mut src = String::new();
    let mut expected = ExpectedCounts::default();
    let mut labels = TransformLabels::default();
    let mut plants = Vec::new();
    emit_function(
        &mut src,
        "generated",
        spec,
        &mut expected,
        &mut labels,
        &mut plants,
    );
    let program = parse_program(&src)
        .unwrap_or_else(|e| panic!("generator produced invalid source: {e}\n{src}"));
    Workload {
        source: src,
        func: program.functions.into_iter().next().expect("one function"),
        expected,
        labels,
        invariant_plants: plants,
    }
}

/// Emits one complete function from a spec, accumulating ground truth.
fn emit_function(
    src: &mut String,
    name: &str,
    spec: &WorkloadSpec,
    expected: &mut ExpectedCounts,
    labels: &mut TransformLabels,
    plants: &mut Vec<InvariantPlant>,
) {
    let mut rng = SplitMix64::seed_from_u64(spec.seed);
    let _ = writeln!(src, "func {name}(n) {{");
    for l in 0..spec.loops {
        emit_loop(src, spec, l, &mut rng, expected, labels, plants);
    }
    let _ = writeln!(src, "}}");
}

/// What to generate for a multi-function corpus — the workload shape of
/// the parallel batch driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Number of functions in the corpus.
    pub functions: usize,
    /// Every `duplicate_every`-th function (when > 0) reuses an earlier
    /// function's seed, making it a *structural duplicate* — identical
    /// modulo its name — as found in generated or macro-expanded code.
    /// The batch driver's cache classifies each such group once.
    pub duplicate_every: usize,
    /// Loops per function.
    pub loops: usize,
    /// Constant trip count used in bounds.
    pub trip: i64,
    /// Base RNG seed; function `i` uses `seed + i` (unless a duplicate).
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            functions: 16,
            duplicate_every: 4,
            loops: 1,
            trip: 100,
            seed: 42,
        }
    }
}

/// A generated multi-function corpus.
#[derive(Debug)]
pub struct Corpus {
    /// The generated source text (all functions).
    pub source: String,
    /// The parsed functions, in source order.
    pub funcs: Vec<Function>,
    /// How many functions are structural duplicates of an earlier one.
    pub duplicates: usize,
    /// Ground-truth class counts summed over all functions.
    pub expected: ExpectedCounts,
    /// Ground-truth transform applications summed over all functions.
    pub labels: TransformLabels,
    /// Ground-truth invariant plants across all functions.
    pub invariant_plants: Vec<InvariantPlant>,
}

/// Generates a multi-function corpus from a spec.
///
/// # Panics
///
/// Panics if the generator emits unparsable source (a bug).
pub fn generate_corpus(spec: &CorpusSpec) -> Corpus {
    let mut src = String::new();
    let mut expected = ExpectedCounts::default();
    let mut labels = TransformLabels::default();
    let mut plants = Vec::new();
    let mut duplicates = 0;
    let mut last_fresh_seed = spec.seed;
    for i in 0..spec.functions {
        let is_dup = spec.duplicate_every > 0 && i > 0 && i % spec.duplicate_every == 0;
        let seed = if is_dup {
            duplicates += 1;
            // Reuse the seed of the most recent fresh function,
            // reproducing its structure *and* constants exactly.
            last_fresh_seed
        } else {
            last_fresh_seed = spec.seed + i as u64;
            last_fresh_seed
        };
        let fspec = WorkloadSpec {
            loops: spec.loops.max(1),
            trip: spec.trip,
            seed,
            ..WorkloadSpec::default()
        };
        emit_function(
            &mut src,
            &format!("f{i}"),
            &fspec,
            &mut expected,
            &mut labels,
            &mut plants,
        );
    }
    let program = parse_program(&src)
        .unwrap_or_else(|e| panic!("corpus generator produced invalid source: {e}\n{src}"));
    assert_eq!(
        program.functions.len(),
        spec.functions,
        "one function per spec"
    );
    Corpus {
        source: src,
        funcs: program.functions,
        duplicates,
        expected,
        labels,
        invariant_plants: plants,
    }
}

fn emit_loop(
    src: &mut String,
    spec: &WorkloadSpec,
    l: usize,
    rng: &mut SplitMix64,
    expected: &mut ExpectedCounts,
    labels: &mut TransformLabels,
    plants: &mut Vec<InvariantPlant>,
) {
    let trip = spec.trip;
    // Pre-loop initializations.
    for v in 0..spec.linear {
        let _ = writeln!(src, "    lin_{l}_{v} = {}", rng.gen_range(-50..50));
    }
    for v in 0..spec.polynomial {
        let _ = writeln!(src, "    poly_{l}_{v} = {}", rng.gen_range(0..10));
    }
    for v in 0..spec.geometric {
        // A positive initial value keeps the exponential coefficient
        // nonzero, so the plant really is geometric.
        let _ = writeln!(src, "    geo_{l}_{v} = {}", rng.gen_range(1..5));
    }
    for v in 0..spec.mixed_geometric {
        let _ = writeln!(src, "    mg_{l}_{v} = {}", rng.gen_range(1..5));
    }
    for v in 0..spec.wraparound {
        let _ = writeln!(src, "    wrap_{l}_{v} = {}", rng.gen_range(100..200));
    }
    for f in 0..spec.periodic {
        let base = rng.gen_range(0..100) * 10;
        let _ = writeln!(src, "    pa_{l}_{f} = {base}");
        let _ = writeln!(src, "    pb_{l}_{f} = {}", base + 1);
        let _ = writeln!(src, "    pc_{l}_{f} = {}", base + 2);
    }
    for v in 0..spec.monotonic {
        let _ = writeln!(src, "    mono_{l}_{v} = 0");
    }
    let _ = writeln!(src, "    L{l}: for i{l} = 1 to {trip} {{");
    expected.linear += 1; // the loop index
                          // Linear updates with uses so pruned SSA keeps the phis.
    for v in 0..spec.linear {
        let step = rng.gen_range(1..9);
        let _ = writeln!(src, "        lin_{l}_{v} = lin_{l}_{v} + {step}");
        let _ = writeln!(src, "        ARR[lin_{l}_{v}] = i{l}");
        expected.linear += 1;
    }
    for v in 0..spec.polynomial {
        let _ = writeln!(src, "        poly_{l}_{v} = poly_{l}_{v} + i{l}");
        let _ = writeln!(src, "        ARR[poly_{l}_{v}] = i{l}");
        expected.polynomial += 1;
    }
    for v in 0..spec.geometric {
        let g = rng.gen_range(2..4);
        let c = rng.gen_range(0..5);
        let _ = writeln!(src, "        geo_{l}_{v} = geo_{l}_{v} * {g} + {c}");
        let _ = writeln!(src, "        ARR[geo_{l}_{v}] = i{l}");
        expected.geometric += 1;
    }
    for v in 0..spec.mixed_geometric {
        // The additive step is never zero, so this is a fixed-point
        // recurrence `v ← r·v + c` with offset c/(1−r) — exactly the
        // MixedGeometric class, never pure geometric.
        let r = rng.gen_range(2..4);
        let c = rng.gen_range(1..5);
        let _ = writeln!(src, "        mg_{l}_{v} = mg_{l}_{v} * {r} + {c}");
        let _ = writeln!(src, "        ARR[mg_{l}_{v}] = i{l}");
        expected.geometric += 1;
        expected.mixed_geometric += 1;
    }
    for v in 0..spec.wraparound {
        let _ = writeln!(src, "        ARR[wrap_{l}_{v}] = i{l}");
        let _ = writeln!(src, "        wrap_{l}_{v} = i{l}");
        expected.wraparound += 1;
    }
    for f in 0..spec.periodic {
        let _ = writeln!(src, "        ARR[pa_{l}_{f}] = i{l}");
        let _ = writeln!(src, "        pt_{l}_{f} = pa_{l}_{f}");
        let _ = writeln!(src, "        pa_{l}_{f} = pb_{l}_{f}");
        let _ = writeln!(src, "        pb_{l}_{f} = pc_{l}_{f}");
        let _ = writeln!(src, "        pc_{l}_{f} = pt_{l}_{f}");
        expected.periodic += 3;
    }
    for v in 0..spec.monotonic {
        let inc = rng.gen_range(1..4);
        let _ = writeln!(src, "        t_{l}_{v} = SRC[i{l}]");
        let _ = writeln!(src, "        if t_{l}_{v} > 0 {{");
        let _ = writeln!(src, "            mono_{l}_{v} = mono_{l}_{v} + {inc}");
        let _ = writeln!(src, "            PACK[mono_{l}_{v}] = t_{l}_{v}");
        let _ = writeln!(src, "        }}");
        expected.monotonic += 1;
    }
    for d in 0..spec.diamonds {
        let _ = writeln!(
            src,
            "        if i{l} > {} {{ dia_{l}_{d} = i{l} + 1 }} else {{ dia_{l}_{d} = i{l} + 2 }}",
            rng.gen_range(0..spec.trip)
        );
        let _ = writeln!(src, "        ARR[dia_{l}_{d}] = i{l}");
    }
    for v in 0..spec.derived {
        // A derived IV: the only use of the multiplication result is a
        // store, so strength reduction must replace exactly this mul.
        let c = rng.gen_range(2..9);
        let _ = writeln!(src, "        der_{l}_{v} = i{l} * {c}");
        let _ = writeln!(src, "        DER[der_{l}_{v}] = i{l}");
        expected.linear += 1;
        labels.strength_reduce += 1;
    }
    for v in 0..spec.invariants {
        let a = rng.gen_range(2..9);
        let b = rng.gen_range(1..99);
        let _ = writeln!(src, "        inv_{l}_{v} = n * {a} + {b}");
    }
    let _ = writeln!(src, "    }}");
    if spec.wraparound > 0 {
        // Classification-driven peeling fires once per loop containing a
        // wrap-around, however many wrap-arounds it carries.
        labels.peel += 1;
    }
    // The remaining transform targets each live in their own mini-loop so
    // transforms cannot interact (unrolling a loop would double any
    // strength-reducible multiplications inside it, for example) and the
    // labels stay exact.
    for v in 0..spec.flipflop {
        let base = rng.gen_range(0..50) * 4;
        let _ = writeln!(src, "    fa_{l}_{v} = {base}");
        let _ = writeln!(src, "    fb_{l}_{v} = {}", base + 1);
        let _ = writeln!(src, "    FL{l}x{v}: for fi{l}_{v} = 1 to {trip} {{");
        let _ = writeln!(src, "        FLIP[fi{l}_{v}] = fa_{l}_{v}");
        let _ = writeln!(src, "        ft_{l}_{v} = fa_{l}_{v}");
        let _ = writeln!(src, "        fa_{l}_{v} = fb_{l}_{v}");
        let _ = writeln!(src, "        fb_{l}_{v} = ft_{l}_{v}");
        let _ = writeln!(src, "    }}");
        expected.linear += 1; // the mini-loop index
        expected.periodic += 2; // the two swapped values
        labels.unroll += 1;
    }
    for v in 0..spec.deadiv {
        // The index's only live use is the multiplication; after strength
        // reduction replaces it, test replacement retires the index.
        let k = rng.gen_range(2..9);
        let _ = writeln!(src, "    DL{l}x{v}: for di{l}_{v} = 1 to {trip} {{");
        let _ = writeln!(src, "        dd_{l}_{v} = di{l}_{v} * {k}");
        let _ = writeln!(src, "        DEAD[dd_{l}_{v}] = dd_{l}_{v}");
        let _ = writeln!(src, "    }}");
        expected.linear += 2; // the index and the derived value
        labels.strength_reduce += 1;
        labels.dead_iv += 1;
    }
    for v in 0..spec.running_sums {
        // A running-sum / index pair with literal initial values: the
        // engine must derive — and the checker must confirm —
        // `2s = i² − i` exactly ([`running_sum_relation`]). The store
        // keeps the sum φ live through pruned SSA.
        let _ = writeln!(src, "    rsum_{l}_{v} = 0");
        let _ = writeln!(src, "    RS{l}x{v}: for ri{l}_{v} = 1 to {trip} {{");
        let _ = writeln!(src, "        rsum_{l}_{v} = rsum_{l}_{v} + ri{l}_{v}");
        let _ = writeln!(src, "        ARR[rsum_{l}_{v}] = ri{l}_{v}");
        let _ = writeln!(src, "    }}");
        expected.linear += 1; // the mini-loop index
        expected.polynomial += 1; // the running sum (degree 2)
        expected.running_sums += 1;
        plants.push(InvariantPlant {
            label: format!("RS{l}x{v}"),
        });
    }
    for v in 0..spec.nests {
        // Column-major access: the store's first (slowest) subscript is
        // the inner index, so interchange is profitable; distinct
        // subscripts per iteration keep it legal.
        let _ = writeln!(src, "    NO{l}x{v}: for no{l}_{v} = 1 to {trip} {{");
        let _ = writeln!(src, "        NI{l}x{v}: for ni{l}_{v} = 1 to {trip} {{");
        let _ = writeln!(src, "            ns_{l}_{v} = no{l}_{v} + ni{l}_{v}");
        let _ = writeln!(src, "            MAT[ni{l}_{v}, no{l}_{v}] = ns_{l}_{v}");
        let _ = writeln!(src, "        }}");
        let _ = writeln!(src, "    }}");
        expected.linear += 2; // both nest indices
        labels.interchange += 1;
    }
}

/// Counts classifications across all loops of an analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounts {
    /// Linear induction variables.
    pub linear: usize,
    /// Higher-order polynomial induction variables.
    pub polynomial: usize,
    /// Geometric induction variables (includes mixed geometric-linear
    /// forms, which are geometric with a nonzero fixed point).
    pub geometric: usize,
    /// Mixed geometric-linear recurrences (`v ← r·v + step`), also
    /// included in `geometric`.
    pub mixed_geometric: usize,
    /// Wrap-around variables.
    pub wraparound: usize,
    /// Periodic variables.
    pub periodic: usize,
    /// Monotonic variables.
    pub monotonic: usize,
    /// Loop invariants.
    pub invariant: usize,
    /// Unclassified values.
    pub unknown: usize,
}

/// Tallies the classes of every value across every loop.
pub fn count_classes(analysis: &Analysis) -> ClassCounts {
    let mut counts = ClassCounts::default();
    for (_, info) in analysis.loops() {
        for class in info.classes.values() {
            match class {
                Class::Invariant(_) => counts.invariant += 1,
                Class::Induction(cf) => {
                    if !cf.geo.is_empty() {
                        counts.geometric += 1;
                    } else if cf.degree() >= 2 {
                        counts.polynomial += 1;
                    } else {
                        counts.linear += 1;
                    }
                }
                Class::MixedGeometric(_) => {
                    counts.geometric += 1;
                    counts.mixed_geometric += 1;
                }
                Class::WrapAround { .. } => counts.wraparound += 1,
                Class::Periodic(_) => counts.periodic += 1,
                Class::Monotonic(_) => counts.monotonic += 1,
                Class::Unknown => counts.unknown += 1,
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_core::analyze;

    #[test]
    fn generator_produces_valid_source() {
        let w = generate(&WorkloadSpec::default());
        assert!(w.func.blocks.len() > 3);
        assert!(w.expected.linear >= 5);
    }

    #[test]
    fn classifier_recovers_planted_classes() {
        let spec = WorkloadSpec {
            loops: 2,
            ..WorkloadSpec::default()
        };
        let w = generate(&spec);
        let analysis = analyze(&w.func);
        let counts = count_classes(&analysis);
        // Distinct SSA values per variable mean counts are at least the
        // planted number (each planted variable contributes its header φ
        // and often body defs).
        assert!(
            counts.linear >= w.expected.linear,
            "linear: {counts:?} vs {:?}",
            w.expected
        );
        assert!(counts.polynomial >= w.expected.polynomial, "{counts:?}");
        assert!(counts.geometric >= w.expected.geometric, "{counts:?}");
        assert!(counts.wraparound >= w.expected.wraparound, "{counts:?}");
        assert!(counts.periodic >= w.expected.periodic, "{counts:?}");
        assert!(counts.monotonic >= w.expected.monotonic, "{counts:?}");
    }

    #[test]
    fn invariants_preset_plants_are_exactly_recovered() {
        let w = generate(&WorkloadSpec::invariants(2, 11));
        assert_eq!(w.expected.mixed_geometric, 4, "2 loops × 2 plants");
        assert_eq!(w.expected.running_sums, 4);
        assert_eq!(w.invariant_plants.len(), 4);

        let analysis = analyze(&w.func);
        let counts = count_classes(&analysis);
        assert!(
            counts.mixed_geometric >= w.expected.mixed_geometric,
            "{counts:?}"
        );

        // Every planted pair's summary must carry *exactly* the planted
        // relation, rendered over the pair's canonical φ names.
        let report = biv_core::analyze_batch(
            std::slice::from_ref(&w.func),
            &biv_core::BatchOptions::default(),
        );
        let summary = &report.functions[0].summary;
        for plant in &w.invariant_plants {
            let ls = summary
                .loops
                .iter()
                .find(|l| l.name == plant.label)
                .unwrap_or_else(|| panic!("loop {} missing from summary", plant.label));
            let (l, _) = analysis
                .loops()
                .find(|(_, info)| info.name == plant.label)
                .expect("planted loop analyzed");
            let header = analysis.forest().data(l).header;
            let phis = &analysis.ssa().block(header).phis;
            assert_eq!(phis.len(), 2, "index and sum φs in {}", plant.label);
            let info = analysis.info(l);
            let degree = |v| match info.classes.get(v) {
                Some(Class::Induction(cf)) => cf.degree(),
                other => panic!("φ in {} classified {other:?}", plant.label),
            };
            let (sum, index) = if degree(phis[0]) == 2 {
                (phis[0], phis[1])
            } else {
                (phis[1], phis[0])
            };
            assert_eq!(degree(sum), 2);
            assert_eq!(degree(index), 1);
            let want = running_sum_relation(
                &biv_core::canonical_value_name(sum),
                &biv_core::canonical_value_name(index),
            );
            assert_eq!(
                ls.invariants,
                vec![want],
                "loop {} must verify exactly the planted relation",
                plant.label
            );
        }
    }

    #[test]
    fn mixed_geometric_plants_never_degrade_to_pure_geometric() {
        // Every mg plant has a nonzero additive step, so the exact
        // count — not just a lower bound — of MixedGeometric header φs
        // must match: one φ plus one body def per plant.
        let w = generate(&WorkloadSpec {
            loops: 3,
            linear: 0,
            polynomial: 0,
            geometric: 0,
            mixed_geometric: 2,
            wraparound: 0,
            periodic: 0,
            monotonic: 0,
            diamonds: 0,
            invariants: 0,
            trip: 12,
            ..WorkloadSpec::default()
        });
        let analysis = analyze(&w.func);
        let counts = count_classes(&analysis);
        // φ, body def, and exit value all classify MixedGeometric;
        // nothing else in the loop is geometric at all, so every
        // geometric classification is a mixed one.
        assert!(
            counts.mixed_geometric >= 2 * w.expected.mixed_geometric,
            "{counts:?}"
        );
        assert_eq!(counts.geometric, counts.mixed_geometric, "{counts:?}");
    }

    #[test]
    fn transform_plants_are_labeled() {
        let w = generate(&WorkloadSpec::transforms(2, 9));
        // Per loop: 2 derived + 1 dead-IV feeder = 3 strength reductions.
        assert_eq!(w.labels.strength_reduce, 6);
        assert_eq!(w.labels.peel, 2);
        assert_eq!(w.labels.unroll, 2);
        assert_eq!(w.labels.dead_iv, 2);
        assert_eq!(w.labels.interchange, 2);
        assert_eq!(w.labels.total(), 14);
        // The planted classes are still recovered on top of the plants.
        let analysis = analyze(&w.func);
        let counts = count_classes(&analysis);
        assert!(counts.periodic >= w.expected.periodic, "{counts:?}");
        assert!(counts.wraparound >= w.expected.wraparound, "{counts:?}");
    }

    #[test]
    fn default_spec_has_no_transform_plants() {
        let w = generate(&WorkloadSpec::default());
        assert_eq!(
            w.labels,
            TransformLabels {
                peel: 1, // the default mix plants one wrap-around
                ..TransformLabels::default()
            }
        );
    }

    #[test]
    fn seeds_vary_constants_not_structure() {
        let a = generate(&WorkloadSpec {
            seed: 1,
            ..WorkloadSpec::default()
        });
        let b = generate(&WorkloadSpec {
            seed: 2,
            ..WorkloadSpec::default()
        });
        assert_ne!(a.source, b.source);
        assert_eq!(a.func.blocks.len(), b.func.blocks.len());
        assert_eq!(a.expected, b.expected);
    }

    #[test]
    fn corpus_has_expected_shape_and_duplicates() {
        let spec = CorpusSpec {
            functions: 9,
            duplicate_every: 3,
            ..CorpusSpec::default()
        };
        let c = generate_corpus(&spec);
        assert_eq!(c.funcs.len(), 9);
        assert_eq!(c.duplicates, 2); // f3 dups f2, f6 dups f5
                                     // Duplicate pairs are structurally identical: same block count,
                                     // same instruction mix, different names.
        let count_insts =
            |f: &Function| -> usize { f.blocks.iter().map(|(_, b)| b.insts.len()).sum() };
        assert_eq!(count_insts(&c.funcs[3]), count_insts(&c.funcs[2]));
        assert_ne!(c.funcs[3].name(), c.funcs[2].name());
    }

    #[test]
    fn corpus_without_duplicates() {
        let spec = CorpusSpec {
            functions: 4,
            duplicate_every: 0,
            ..CorpusSpec::default()
        };
        let c = generate_corpus(&spec);
        assert_eq!(c.duplicates, 0);
        assert_eq!(c.funcs.len(), 4);
    }

    #[test]
    fn sized_spec_scales() {
        let small = generate(&WorkloadSpec::sized_linear(500, 7));
        let large = generate(&WorkloadSpec::sized_linear(5000, 7));
        let count_insts =
            |f: &Function| -> usize { f.blocks.iter().map(|(_, b)| b.insts.len()).sum() };
        assert!(count_insts(&large.func) > 4 * count_insts(&small.func));
    }
}
