//! A small deterministic PRNG (SplitMix64) for workload generation.
//!
//! The generator only needs reproducible, well-mixed streams of small
//! integers; it does not need cryptographic quality. Keeping the PRNG
//! in-tree makes the whole workspace self-contained and guarantees the
//! generated corpora are stable across toolchains and platforms.

use std::ops::Range;

/// A deterministic 64-bit PRNG with the SplitMix64 output function.
///
/// Identical seeds produce identical streams on every platform, so
/// workload sources are byte-stable — a property the batch-analysis
/// differential tests rely on.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed integer in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        // Multiply-shift rejection-free mapping is fine here: span is tiny
        // relative to 2^64, so bias is negligible for test workloads.
        let r = self.next_u64() % span;
        range.start.wrapping_add(r as i64)
    }

    /// A uniformly distributed `usize` in `range` (half-open).
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range_usize on empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut r = SplitMix64::seed_from_u64(99);
        for _ in 0..1000 {
            let v = r.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let u = r.gen_range_usize(3..9);
            assert!((3..9).contains(&u));
        }
    }
}
