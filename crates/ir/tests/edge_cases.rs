//! Edge-case coverage for the IR substrate: entry-header splitting,
//! postdominators with multiple returns, interpreter determinism, and
//! printing round-trips.

use biv_ir::builder::FunctionBuilder;
use biv_ir::dom::{DomTree, PostDomTree};
use biv_ir::interp::Interpreter;
use biv_ir::loops::{loop_simplify, split_entry_if_header, LoopForest};
use biv_ir::parser::parse_program;
use biv_ir::print::function_to_string;
use biv_ir::verify::verify_function;
use biv_ir::{CmpOp, Operand};

#[test]
fn split_entry_when_it_heads_a_loop() {
    // A CFG whose entry is a loop header (builder-made; the parser never
    // produces this).
    let mut b = FunctionBuilder::new("t");
    let x = b.new_var("x");
    let exit = b.new_block();
    let entry = b.current();
    b.add(x, Operand::Var(x), Operand::Const(1));
    b.branch(CmpOp::Lt, Operand::Var(x), Operand::Const(5), entry, exit);
    b.switch_to(exit);
    b.ret();
    let mut f = b.finish();
    assert!(split_entry_if_header(&mut f));
    verify_function(&f).unwrap();
    let dom = DomTree::compute(&f);
    let forest = LoopForest::compute(&f, &dom);
    assert_eq!(forest.len(), 1);
    let (l, d) = forest.iter().next().unwrap();
    assert_ne!(d.header, f.entry(), "entry no longer heads the loop");
    // After simplification the loop is fully canonical.
    assert!(loop_simplify(&mut f) || forest.preheader(&f, l).is_some());
    // Semantics: x counts 0 -> 5.
    let trace = Interpreter::new().run(&f, &[]).unwrap();
    assert_eq!(trace.final_vars[biv_ir::EntityId::index(x)], 5);
}

#[test]
fn split_entry_noop_without_back_edge() {
    let program = parse_program("func f() { x = 1 }").unwrap();
    let mut f = program.functions[0].clone();
    assert!(!split_entry_if_header(&mut f));
}

#[test]
fn postdominators_with_two_returns() {
    // if e { return-ish path } else { ... }: our language always falls
    // off the end, so build explicitly.
    let mut b = FunctionBuilder::new("t");
    let e = b.new_var("e");
    let r1 = b.new_block();
    let r2 = b.new_block();
    b.branch(CmpOp::Gt, Operand::Var(e), Operand::Const(0), r1, r2);
    b.switch_to(r1);
    b.ret();
    b.switch_to(r2);
    b.ret();
    let f = b.finish();
    let pdom = PostDomTree::compute(&f);
    // Neither return postdominates the entry.
    assert!(!pdom.postdominates(r1, f.entry()));
    assert!(!pdom.postdominates(r2, f.entry()));
    assert!(pdom.postdominates(r1, r1));
}

#[test]
fn interpreter_is_deterministic() {
    let src = r#"
        func f(n) {
            s = 0
            L1: for i = 1 to n {
                if i > 3 { s = s + i } else { s = s - i }
                A[i] = s
            }
        }
    "#;
    let program = parse_program(src).unwrap();
    let a = Interpreter::new()
        .run(&program.functions[0], &[10])
        .unwrap();
    let b = Interpreter::new()
        .run(&program.functions[0], &[10])
        .unwrap();
    assert_eq!(a.final_vars, b.final_vars);
    assert_eq!(a.arrays, b.arrays);
}

#[test]
fn printer_covers_all_instruction_forms() {
    let src = r#"
        func f(n) {
            a = -n
            b = a ^ 2
            c = b / 3
            M[1, 2] = c
            d = M[1, 2]
            L1: while d > 0 {
                d = d - 1
            }
        }
    "#;
    let program = parse_program(src).unwrap();
    let text = function_to_string(&program.functions[0]);
    for needle in ["= -", "^ 2", "/ 3", "M[1, 2]", "if d", "return"] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn deep_nesting_parses_and_runs() {
    // 6 levels deep; total iterations 2^6.
    let mut src = String::from("func f() { s = 0\n");
    for d in 0..6 {
        src.push_str(&format!("L{d}: for i{d} = 1 to 2 {{\n"));
    }
    src.push_str("s = s + 1\n");
    for _ in 0..6 {
        src.push('}');
    }
    src.push('}');
    let program = parse_program(&src).unwrap();
    let f = &program.functions[0];
    let dom = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dom);
    assert_eq!(forest.len(), 6);
    assert_eq!(forest.inner_to_outer().len(), 6);
    let trace = Interpreter::new().run(f, &[]).unwrap();
    let s = f.var_by_name("s").unwrap();
    assert_eq!(trace.final_vars[biv_ir::EntityId::index(s)], 64);
}

#[test]
fn while_false_never_enters() {
    let program = parse_program("func f() { x = 0 L1: while x > 5 { x = x + 1 } }").unwrap();
    let trace = Interpreter::new().run(&program.functions[0], &[]).unwrap();
    let x = program.functions[0].var_by_name("x").unwrap();
    assert_eq!(trace.final_vars[biv_ir::EntityId::index(x)], 0);
}

#[test]
fn labeled_break_exits_outer_loop() {
    let src = r#"
        func f() {
            s = 0
            L1: for i = 1 to 10 {
                L2: for j = 1 to 10 {
                    s = s + 1
                    if s == 25 { break L1 }
                }
            }
        }
    "#;
    let program = parse_program(src).unwrap();
    let trace = Interpreter::new().run(&program.functions[0], &[]).unwrap();
    let s = program.functions[0].var_by_name("s").unwrap();
    assert_eq!(trace.final_vars[biv_ir::EntityId::index(s)], 25);
}
