//! Structural validation of CFG functions.

use std::fmt;

use crate::entity::EntityId;
use crate::function::{Function, Inst, Operand, Terminator};

/// A structural problem found by [`verify_function`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Explanation of the problem.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Checks structural invariants of a function:
///
/// - every terminator targets an existing block;
/// - every operand references an existing variable or array;
/// - array accesses match the array's declared rank;
/// - block labels are unique.
///
/// # Errors
///
/// Returns all violations found.
pub fn verify_function(func: &Function) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    fn err(errors: &mut Vec<VerifyError>, message: String) {
        errors.push(VerifyError { message });
    }

    let mut labels = std::collections::HashSet::new();
    for (b, data) in func.blocks.iter() {
        if let Some(label) = &data.label {
            if !labels.insert(label.clone()) {
                err(&mut errors, format!("duplicate block label `{label}`"));
            }
        }
        for succ in data.term.successors() {
            if !func.blocks.contains(succ) {
                err(
                    &mut errors,
                    format!("{b}: terminator targets unknown block {succ}"),
                );
            }
        }
        let check_operand = |op: &Operand, errors: &mut Vec<VerifyError>| {
            if let Operand::Var(v) = op {
                if v.index() >= func.vars.len() {
                    errors.push(VerifyError {
                        message: format!("{b}: operand references unknown variable {v}"),
                    });
                }
            }
        };
        for inst in &data.insts {
            match inst {
                Inst::Copy { dst, src } | Inst::Neg { dst, src } => {
                    if dst.index() >= func.vars.len() {
                        err(&mut errors, format!("{b}: unknown destination {dst}"));
                    }
                    check_operand(src, &mut errors);
                }
                Inst::Binary { dst, lhs, rhs, .. } => {
                    if dst.index() >= func.vars.len() {
                        err(&mut errors, format!("{b}: unknown destination {dst}"));
                    }
                    check_operand(lhs, &mut errors);
                    check_operand(rhs, &mut errors);
                }
                Inst::Load { dst, array, index } => {
                    if dst.index() >= func.vars.len() {
                        err(&mut errors, format!("{b}: unknown destination {dst}"));
                    }
                    if array.index() >= func.arrays.len() {
                        err(&mut errors, format!("{b}: unknown array {array}"));
                    } else if func.arrays[*array].dims != index.len() {
                        err(
                            &mut errors,
                            format!(
                                "{b}: array {} loaded with {} subscripts, declared {}",
                                func.array_name(*array),
                                index.len(),
                                func.arrays[*array].dims
                            ),
                        );
                    }
                    for op in index {
                        check_operand(op, &mut errors);
                    }
                }
                Inst::Store {
                    array,
                    index,
                    value,
                } => {
                    if array.index() >= func.arrays.len() {
                        err(&mut errors, format!("{b}: unknown array {array}"));
                    } else if func.arrays[*array].dims != index.len() {
                        err(
                            &mut errors,
                            format!(
                                "{b}: array {} stored with {} subscripts, declared {}",
                                func.array_name(*array),
                                index.len(),
                                func.arrays[*array].dims
                            ),
                        );
                    }
                    for op in index {
                        check_operand(op, &mut errors);
                    }
                    check_operand(value, &mut errors);
                }
            }
        }
        if let Terminator::Branch { lhs, rhs, .. } = &data.term {
            check_operand(lhs, &mut errors);
            check_operand(rhs, &mut errors);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::{Block, CmpOp};
    use crate::parser::parse_program;

    #[test]
    fn parsed_programs_verify() {
        let program = parse_program(
            r#"
            func f(n) {
                L1: for i = 1 to n {
                    if i > 3 { A[i] = i } else { A[i] = 0 }
                }
            }
            "#,
        )
        .unwrap();
        assert!(verify_function(&program.functions[0]).is_ok());
    }

    #[test]
    fn detects_bad_successor() {
        let mut b = FunctionBuilder::new("bad");
        let x = b.new_var("x");
        let bogus = Block::from_index(99);
        b.branch(CmpOp::Lt, Operand::Var(x), Operand::Const(0), bogus, bogus);
        let f = b.finish();
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown block")));
    }

    #[test]
    fn detects_duplicate_labels() {
        let mut b = FunctionBuilder::new("dup");
        let l1 = b.new_labeled_block("L1");
        let l2 = b.new_labeled_block("L1");
        b.jump(l1);
        b.switch_to(l1);
        b.jump(l2);
        b.switch_to(l2);
        b.ret();
        let errs = verify_function(&b.finish()).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("duplicate")));
    }
}
