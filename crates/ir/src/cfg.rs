//! Dense CFG adjacency in compressed-sparse-row form.
//!
//! `Function` stores only successor edges (inline in each terminator);
//! analyses that walk predecessors build a [`Cfg`] once and index it by
//! block. Both directions live in two flat pools with per-block offset
//! tables — no hashing, no per-block allocation, and a deterministic
//! edge order (predecessors sorted by block index, successors in
//! terminator order) that the rest of the system's value numbering
//! relies on.

use crate::entity::EntityId;
use crate::function::{Block, Function};

/// Predecessor/successor adjacency of a function's CFG, CSR-packed.
///
/// ```
/// use biv_ir::cfg::Cfg;
/// use biv_ir::parser::parse_program;
///
/// let program = parse_program("func f(n) { L1: for i = 1 to n { x = i } }")?;
/// let func = &program.functions[0];
/// let cfg = Cfg::compute(func);
/// let header = func.block_by_label("L1").unwrap();
/// assert_eq!(cfg.preds(header).len(), 2); // entry edge + back edge
/// # Ok::<(), biv_ir::parser::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    pred_off: Vec<u32>,
    pred_data: Vec<Block>,
    succ_off: Vec<u32>,
    succ_data: Vec<Block>,
}

impl Cfg {
    /// Builds the adjacency for `func` in two counting passes.
    pub fn compute(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut pred_off = vec![0u32; n + 1];
        let mut succ_off = vec![0u32; n + 1];
        let mut edges = 0u32;
        for (_, data) in func.blocks.iter() {
            for succ in data.term.successors() {
                pred_off[succ.index() + 1] += 1;
                edges += 1;
            }
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
        }
        let filler = Block::from_index(0);
        let mut pred_data = vec![filler; edges as usize];
        let mut succ_data = Vec::with_capacity(edges as usize);
        // Predecessor fill cursors; succ_data fills in block order directly.
        let mut cursor: Vec<u32> = pred_off[..n].to_vec();
        for (b, data) in func.blocks.iter() {
            succ_off[b.index()] = succ_data.len() as u32;
            for succ in data.term.successors() {
                succ_data.push(succ);
                let slot = &mut cursor[succ.index()];
                pred_data[*slot as usize] = b;
                *slot += 1;
            }
        }
        succ_off[n] = succ_data.len() as u32;
        Cfg {
            pred_off,
            pred_data,
            succ_off,
            succ_data,
        }
    }

    /// The predecessors of `b`, in ascending block-index order.
    pub fn preds(&self, b: Block) -> &[Block] {
        let i = b.index();
        &self.pred_data[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// The successors of `b`, in terminator order.
    pub fn succs(&self, b: Block) -> &[Block] {
        let i = b.index();
        &self.succ_data[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Number of blocks covered.
    pub fn num_blocks(&self) -> usize {
        self.pred_off.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::{CmpOp, Operand};

    #[test]
    fn diamond_adjacency() {
        let mut b = FunctionBuilder::new("diamond");
        let x = b.new_var("x");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(CmpOp::Lt, Operand::Var(x), Operand::Const(0), t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.num_blocks(), 4);
        assert_eq!(cfg.succs(f.entry()), &[t, e]);
        assert_eq!(cfg.preds(j), &[t, e]);
        assert!(cfg.preds(f.entry()).is_empty());
        assert!(cfg.succs(j).is_empty());
    }

    #[test]
    fn preds_sorted_by_block_index() {
        // Back edge from a later block lands after the entry edge.
        let mut b = FunctionBuilder::new("loop");
        let x = b.new_var("x");
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.branch(CmpOp::Lt, Operand::Var(x), Operand::Const(9), body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.preds(header), &[f.entry(), body]);
    }
}
