//! Lowering from the AST to the three-address CFG.

use std::collections::HashMap;

use super::ast::{Cond, Expr, FuncDecl, Stmt};
use super::parse::ParseError;
use crate::function::{Array, BinOp, Block, CmpOp, Function, Inst, Operand, Terminator, Var};

/// Lowers one parsed function to CFG form.
///
/// `for` loops produce the paper's countable shape: initialization in the
/// preheader, the exit test at the loop header, and the increment at the
/// bottom of the body. Loop labels land on the header block so analyses
/// can report the paper's `L7`-style loop names.
///
/// # Errors
///
/// Returns a [`ParseError`] for semantic problems (a name used both as a
/// scalar and an array, inconsistent array ranks, `break` outside a loop,
/// or an unknown break label).
pub fn lower_function(decl: &FuncDecl) -> Result<Function, ParseError> {
    let mut cx = Lowerer::new(decl)?;
    cx.lower_body(&decl.body)?;
    // Seal the final block.
    cx.set_term(Terminator::Return);
    Ok(cx.func)
}

struct LoopCtx {
    label: Option<String>,
    exit: Block,
}

struct Lowerer {
    func: Function,
    current: Block,
    scalars: HashMap<String, Var>,
    arrays: HashMap<String, Array>,
    loop_stack: Vec<LoopCtx>,
    temp_count: usize,
}

impl Lowerer {
    fn new(decl: &FuncDecl) -> Result<Lowerer, ParseError> {
        let mut func = Function::new(decl.name.clone());
        let current = func.entry();
        let mut scalars = HashMap::new();
        for p in &decl.params {
            if scalars.contains_key(p) {
                return Err(ParseError::custom(format!("duplicate parameter `{p}`")));
            }
            let v = func.new_param(p.clone());
            scalars.insert(p.clone(), v);
        }
        Ok(Lowerer {
            func,
            current,
            scalars,
            arrays: HashMap::new(),
            loop_stack: Vec::new(),
            temp_count: 0,
        })
    }

    fn scalar(&mut self, name: &str) -> Result<Var, ParseError> {
        if self.arrays.contains_key(name) {
            return Err(ParseError::custom(format!(
                "`{name}` is used both as a scalar and as an array"
            )));
        }
        if let Some(&v) = self.scalars.get(name) {
            return Ok(v);
        }
        let v = self.func.new_var(name);
        self.scalars.insert(name.to_string(), v);
        Ok(v)
    }

    fn array(&mut self, name: &str, dims: usize) -> Result<Array, ParseError> {
        if self.scalars.contains_key(name) {
            return Err(ParseError::custom(format!(
                "`{name}` is used both as a scalar and as an array"
            )));
        }
        if let Some(&a) = self.arrays.get(name) {
            let have = self.func.arrays[a].dims;
            if have != dims {
                return Err(ParseError::custom(format!(
                    "array `{name}` used with {dims} subscripts but earlier with {have}"
                )));
            }
            return Ok(a);
        }
        let a = self.func.new_array(name, dims);
        self.arrays.insert(name.to_string(), a);
        Ok(a)
    }

    fn fresh_temp(&mut self) -> Var {
        let v = self.func.new_var(format!("%t{}", self.temp_count));
        self.temp_count += 1;
        v
    }

    fn push(&mut self, inst: Inst) {
        self.func.blocks[self.current].insts.push(inst);
    }

    fn set_term(&mut self, term: Terminator) {
        self.func.blocks[self.current].term = term;
    }

    /// Lowers an expression to an operand, emitting temps as needed.
    fn operand(&mut self, expr: &Expr) -> Result<Operand, ParseError> {
        match expr {
            Expr::Const(v) => Ok(Operand::Const(*v)),
            Expr::Var(name) => Ok(Operand::Var(self.scalar(name)?)),
            Expr::Neg(inner) => {
                let src = self.operand(inner)?;
                let dst = self.fresh_temp();
                self.push(Inst::Neg { dst, src });
                Ok(Operand::Var(dst))
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.operand(lhs)?;
                let r = self.operand(rhs)?;
                let dst = self.fresh_temp();
                self.push(Inst::Binary {
                    dst,
                    op: *op,
                    lhs: l,
                    rhs: r,
                });
                Ok(Operand::Var(dst))
            }
            Expr::Load { array, index } => {
                let idx = index
                    .iter()
                    .map(|e| self.operand(e))
                    .collect::<Result<Vec<_>, _>>()?;
                let a = self.array(array, idx.len())?;
                let dst = self.fresh_temp();
                self.push(Inst::Load {
                    dst,
                    array: a,
                    index: idx.into(),
                });
                Ok(Operand::Var(dst))
            }
        }
    }

    /// Lowers an assignment right-hand side directly into `dst`, avoiding
    /// a temp for the outermost operation.
    fn assign_into(&mut self, dst: Var, expr: &Expr) -> Result<(), ParseError> {
        match expr {
            Expr::Binary { op, lhs, rhs } => {
                let l = self.operand(lhs)?;
                let r = self.operand(rhs)?;
                self.push(Inst::Binary {
                    dst,
                    op: *op,
                    lhs: l,
                    rhs: r,
                });
            }
            Expr::Neg(inner) => {
                let src = self.operand(inner)?;
                self.push(Inst::Neg { dst, src });
            }
            Expr::Load { array, index } => {
                let idx = index
                    .iter()
                    .map(|e| self.operand(e))
                    .collect::<Result<Vec<_>, _>>()?;
                let a = self.array(array, idx.len())?;
                self.push(Inst::Load {
                    dst,
                    array: a,
                    index: idx.into(),
                });
            }
            simple => {
                let src = self.operand(simple)?;
                self.push(Inst::Copy { dst, src });
            }
        }
        Ok(())
    }

    fn lower_body(&mut self, stmts: &[Stmt]) -> Result<(), ParseError> {
        for stmt in stmts {
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), ParseError> {
        match stmt {
            Stmt::Assign { name, expr } => {
                let dst = self.scalar(name)?;
                self.assign_into(dst, expr)
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let idx = index
                    .iter()
                    .map(|e| self.operand(e))
                    .collect::<Result<Vec<_>, _>>()?;
                let a = self.array(array, idx.len())?;
                let v = self.operand(value)?;
                self.push(Inst::Store {
                    array: a,
                    index: idx.into(),
                    value: v,
                });
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => self.lower_if(cond, then_body, else_body),
            Stmt::Loop { label, body } => self.lower_loop(label.as_deref(), body),
            Stmt::For {
                label,
                var,
                from,
                to,
                by,
                body,
            } => self.lower_for(label.as_deref(), var, from, to, by.as_ref(), body),
            Stmt::While { label, cond, body } => self.lower_while(label.as_deref(), cond, body),
            Stmt::Break { label } => self.lower_break(label.as_deref()),
        }
    }

    fn lower_cond(
        &mut self,
        cond: &Cond,
        then_bb: Block,
        else_bb: Block,
    ) -> Result<(), ParseError> {
        let lhs = self.operand(&cond.lhs)?;
        let rhs = self.operand(&cond.rhs)?;
        self.set_term(Terminator::Branch {
            op: cond.op,
            lhs,
            rhs,
            then_bb,
            else_bb,
        });
        Ok(())
    }

    fn lower_if(
        &mut self,
        cond: &Cond,
        then_body: &[Stmt],
        else_body: &[Stmt],
    ) -> Result<(), ParseError> {
        let then_bb = self.func.new_block();
        let join = self.func.new_block();
        let else_bb = if else_body.is_empty() {
            join
        } else {
            self.func.new_block()
        };
        self.lower_cond(cond, then_bb, else_bb)?;
        self.current = then_bb;
        self.lower_body(then_body)?;
        self.set_term(Terminator::Jump(join));
        if !else_body.is_empty() {
            self.current = else_bb;
            self.lower_body(else_body)?;
            self.set_term(Terminator::Jump(join));
        }
        self.current = join;
        Ok(())
    }

    fn lower_loop(&mut self, label: Option<&str>, body: &[Stmt]) -> Result<(), ParseError> {
        let header = match label {
            Some(l) => self.func.new_labeled_block(l),
            None => self.func.new_block(),
        };
        let exit = self.func.new_block();
        self.set_term(Terminator::Jump(header));
        self.current = header;
        self.loop_stack.push(LoopCtx {
            label: label.map(str::to_string),
            exit,
        });
        self.lower_body(body)?;
        self.loop_stack.pop();
        self.set_term(Terminator::Jump(header));
        self.current = exit;
        Ok(())
    }

    fn lower_for(
        &mut self,
        label: Option<&str>,
        var: &str,
        from: &Expr,
        to: &Expr,
        by: Option<&Expr>,
        body: &[Stmt],
    ) -> Result<(), ParseError> {
        let v = self.scalar(var)?;
        // Initialization and (loop-invariant) bound/step evaluation happen
        // before the header.
        self.assign_into(v, from)?;
        let bound = self.operand(to)?;
        let step = match by {
            Some(e) => self.operand(e)?,
            None => Operand::Const(1),
        };
        let header = match label {
            Some(l) => self.func.new_labeled_block(l),
            None => self.func.new_block(),
        };
        let body_bb = self.func.new_block();
        let exit = self.func.new_block();
        self.set_term(Terminator::Jump(header));
        // Header: exit when the index passes the bound. For a negative
        // constant step the sense flips (paper §5.2's condition table).
        self.current = header;
        let exit_op = match step {
            Operand::Const(c) if c < 0 => CmpOp::Lt,
            _ => CmpOp::Gt,
        };
        self.set_term(Terminator::Branch {
            op: exit_op,
            lhs: Operand::Var(v),
            rhs: bound,
            then_bb: exit,
            else_bb: body_bb,
        });
        self.current = body_bb;
        self.loop_stack.push(LoopCtx {
            label: label.map(str::to_string),
            exit,
        });
        self.lower_body(body)?;
        self.loop_stack.pop();
        // Increment and jump back.
        self.push(Inst::Binary {
            dst: v,
            op: BinOp::Add,
            lhs: Operand::Var(v),
            rhs: step,
        });
        self.set_term(Terminator::Jump(header));
        self.current = exit;
        Ok(())
    }

    fn lower_while(
        &mut self,
        label: Option<&str>,
        cond: &Cond,
        body: &[Stmt],
    ) -> Result<(), ParseError> {
        let header = match label {
            Some(l) => self.func.new_labeled_block(l),
            None => self.func.new_block(),
        };
        let body_bb = self.func.new_block();
        let exit = self.func.new_block();
        self.set_term(Terminator::Jump(header));
        self.current = header;
        self.lower_cond(cond, body_bb, exit)?;
        self.current = body_bb;
        self.loop_stack.push(LoopCtx {
            label: label.map(str::to_string),
            exit,
        });
        self.lower_body(body)?;
        self.loop_stack.pop();
        self.set_term(Terminator::Jump(header));
        self.current = exit;
        Ok(())
    }

    fn lower_break(&mut self, label: Option<&str>) -> Result<(), ParseError> {
        let target = match label {
            None => self
                .loop_stack
                .last()
                .ok_or_else(|| ParseError::custom("`break` outside of a loop"))?,
            Some(l) => self
                .loop_stack
                .iter()
                .rev()
                .find(|c| c.label.as_deref() == Some(l))
                .ok_or_else(|| {
                    ParseError::custom(format!("`break {l}` does not name an enclosing loop"))
                })?,
        };
        let exit = target.exit;
        self.set_term(Terminator::Jump(exit));
        // Continue lowering any trailing statements into a fresh,
        // unreachable block so the CFG stays well formed.
        let dead = self.func.new_block();
        self.current = dead;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn lowers_figure1_shape() {
        let program = parse_program(
            r#"
            func fig1(n, c, k) {
                j = n
                L7: loop {
                    i = j + c
                    j = i + k
                    if j > 1000 { break }
                }
            }
            "#,
        )
        .unwrap();
        let f = &program.functions[0];
        let header = f.block_by_label("L7").expect("labeled header");
        // Header is the target of the entry and of the back edge.
        let cfg = crate::cfg::Cfg::compute(f);
        assert_eq!(cfg.preds(header).len(), 2);
        assert!(f.var_by_name("i").is_some());
        assert!(f.var_by_name("j").is_some());
        assert_eq!(f.params().len(), 3);
    }

    #[test]
    fn lowers_for_to_countable_shape() {
        let program = parse_program("func f(n) { L1: for i = 1 to n { x = i } }").unwrap();
        let f = &program.functions[0];
        let header = f.block_by_label("L1").unwrap();
        // Header terminator is the exit test `i > n`.
        match &f.blocks[header].term {
            Terminator::Branch { op, .. } => assert_eq!(*op, CmpOp::Gt),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn negative_step_flips_test() {
        let program = parse_program("func f() { L1: for i = 10 to 1 by -1 { x = i } }").unwrap();
        let f = &program.functions[0];
        let header = f.block_by_label("L1").unwrap();
        match &f.blocks[header].term {
            Terminator::Branch { op, .. } => assert_eq!(*op, CmpOp::Lt),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn scalar_array_conflict_rejected() {
        let err = parse_program("func f() { A = 1 A[2] = 3 }").unwrap_err();
        assert!(err.to_string().contains("scalar"));
    }

    #[test]
    fn array_rank_mismatch_rejected() {
        let err = parse_program("func f() { A[1] = 1 A[1, 2] = 3 }").unwrap_err();
        assert!(err.to_string().contains("subscripts"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let err = parse_program("func f() { break }").unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn unknown_break_label_rejected() {
        let err = parse_program("func f() { L1: loop { break L9 } }").unwrap_err();
        assert!(err.to_string().contains("L9"));
    }

    #[test]
    fn while_loop_shape() {
        let program = parse_program("func f(n) { W: while n > 0 { n = n - 1 } }").unwrap();
        let f = &program.functions[0];
        let header = f.block_by_label("W").unwrap();
        let cfg = crate::cfg::Cfg::compute(f);
        assert_eq!(cfg.preds(header).len(), 2, "entry edge + back edge");
    }

    #[test]
    fn nested_loops_lower() {
        let program = parse_program(
            r#"
            func f(n) {
                L1: for i = 1 to n {
                    L2: for j = i + 1 to n {
                        A[i, j] = A[i - 1, j]
                    }
                }
            }
            "#,
        )
        .unwrap();
        let f = &program.functions[0];
        assert!(f.block_by_label("L1").is_some());
        assert!(f.block_by_label("L2").is_some());
        let a = f.array_by_name("A").unwrap();
        assert_eq!(f.arrays[a].dims, 2);
    }
}
