//! The mini loop language front end.
//!
//! Every example loop in the paper can be written in this language, e.g.
//! Figure 1's loop L7:
//!
//! ```text
//! func fig1(n, c, k) {
//!     j = n
//!     L7: loop {
//!         i = j + c
//!         j = i + k
//!         if j > 1000 { break }
//!     }
//! }
//! ```
//!
//! The grammar (loops may carry a `LABEL:` prefix, matching the paper's
//! `L7: loop` style):
//!
//! ```text
//! program := func+
//! func    := "func" IDENT "(" [IDENT ("," IDENT)*] ")" "{" stmt* "}"
//! stmt    := [IDENT ":"] loop-stmt
//!          | IDENT "=" expr
//!          | IDENT "[" expr ("," expr)* "]" "=" expr
//!          | "if" cond "{" stmt* "}" ["else" "{" stmt* "}"]
//!          | "break" [IDENT]
//! loop    := "loop" "{" stmt* "}"
//!          | "for" IDENT "=" expr "to" expr ["by" expr] "{" stmt* "}"
//!          | "while" cond "{" stmt* "}"
//! cond    := expr ("=="|"!="|"<"|"<="|">"|">=") expr
//! expr    := term (("+"|"-") term)*
//! term    := power (("*"|"/") power)*
//! power   := unary ["^" power]
//! unary   := "-" unary | primary
//! primary := INT | IDENT | IDENT "[" expr ("," expr)* "]" | "(" expr ")"
//! ```
//!
//! `for` loops lower to the paper's countable-loop shape — initialize,
//! test at the loop header, increment in the latch — so the classifier's
//! trip-count machinery sees exactly the §5.2 pattern.

pub mod ast;
mod lexer;
mod lower;
mod parse;

pub use ast::{Cond, Expr, FuncDecl, Stmt};
pub use lexer::{LexError, Span};
pub use lower::lower_function;
pub use parse::{parse_program_ast, ParseError};

use crate::function::Program;

/// Parses source text and lowers it to CFG form.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax or lowering
/// problem, with line/column information.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let decls = parse_program_ast(src)?;
    let mut program = Program::default();
    for decl in &decls {
        program.functions.push(lower_function(decl)?);
    }
    Ok(program)
}

/// Parses a source file expected to contain exactly one function.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors or when the file does not
/// contain exactly one function.
pub fn parse_function(src: &str) -> Result<crate::function::Function, ParseError> {
    let mut program = parse_program(src)?;
    if program.functions.len() != 1 {
        return Err(ParseError::custom(format!(
            "expected exactly one function, found {}",
            program.functions.len()
        )));
    }
    Ok(program.functions.remove(0))
}
