//! Tokenizer for the mini loop language.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    // keywords
    Func,
    Loop,
    For,
    To,
    By,
    While,
    If,
    Else,
    Break,
    // punctuation
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Func => write!(f, "`func`"),
            Tok::Loop => write!(f, "`loop`"),
            Tok::For => write!(f, "`for`"),
            Tok::To => write!(f, "`to`"),
            Tok::By => write!(f, "`by`"),
            Tok::While => write!(f, "`while`"),
            Tok::If => write!(f, "`if`"),
            Tok::Else => write!(f, "`else`"),
            Tok::Break => write!(f, "`break`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// Error produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// Where it happened.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`. `#` and `//` start line comments.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! span {
        () => {
            Span { line, col }
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = span!();
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
                continue;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
                continue;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            '{' | '}' | '(' | ')' | '[' | ']' | ',' | ':' | '+' | '-' | '*' | '/' | '^' => {
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ',' => Tok::Comma,
                    ':' => Tok::Colon,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '/' => Tok::Slash,
                    _ => Tok::Caret,
                };
                tokens.push(Token { tok, span: start });
                i += 1;
                col += 1;
            }
            '=' | '!' | '<' | '>' => {
                let two = i + 1 < bytes.len() && bytes[i + 1] == b'=';
                let tok = match (c, two) {
                    ('=', true) => Tok::EqEq,
                    ('=', false) => Tok::Assign,
                    ('!', true) => Tok::NotEq,
                    ('!', false) => {
                        return Err(LexError {
                            message: "unexpected `!` (did you mean `!=`?)".into(),
                            span: start,
                        })
                    }
                    ('<', true) => Tok::Le,
                    ('<', false) => Tok::Lt,
                    ('>', true) => Tok::Ge,
                    (_, false) => Tok::Gt,
                    (_, true) => Tok::Ge,
                };
                let width = if two { 2 } else { 1 };
                tokens.push(Token { tok, span: start });
                i += width;
                col += width as u32;
            }
            c if c.is_ascii_digit() => {
                let begin = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let text = &src[begin..i];
                let value: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    span: start,
                })?;
                tokens.push(Token {
                    tok: Tok::Int(value),
                    span: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let begin = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        i += 1;
                        col += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[begin..i];
                let tok = match text {
                    "func" => Tok::Func,
                    "loop" => Tok::Loop,
                    "for" => Tok::For,
                    "to" => Tok::To,
                    "by" => Tok::By,
                    "while" => Tok::While,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "break" => Tok::Break,
                    _ => Tok::Ident(text.to_string()),
                };
                tokens.push(Token { tok, span: start });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    span: start,
                })
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        span: span!(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_keywords_and_idents() {
        let toks = tokenize("func main loop xyz").unwrap();
        assert_eq!(toks[0].tok, Tok::Func);
        assert_eq!(toks[1].tok, Tok::Ident("main".into()));
        assert_eq!(toks[2].tok, Tok::Loop);
        assert_eq!(toks[3].tok, Tok::Ident("xyz".into()));
        assert_eq!(toks[4].tok, Tok::Eof);
    }

    #[test]
    fn lexes_operators() {
        let toks = tokenize("= == != < <= > >= + - * / ^").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|t| t.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Assign,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Caret,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("a # comment\nb // another\nc").unwrap();
        let idents: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
    }

    #[test]
    fn rejects_stray_bang() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn rejects_huge_literal() {
        assert!(tokenize("99999999999999999999999").is_err());
    }
}
