//! Recursive-descent parser for the mini loop language.

use std::fmt;

use super::ast::{Cond, Expr, FuncDecl, Stmt};
use super::lexer::{tokenize, LexError, Span, Tok, Token};
use crate::function::{BinOp, CmpOp};

/// A syntax or lowering error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Option<Span>,
}

impl ParseError {
    /// Creates an error without position information (used by lowering).
    pub fn custom(message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: None,
        }
    }

    fn at(message: impl Into<String>, span: Span) -> ParseError {
        ParseError {
            message: message.into(),
            span: Some(span),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "{span}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> ParseError {
        ParseError::at(err.message, err.span)
    }
}

/// Parses source text into function declarations.
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse_program_ast(src: &str) -> Result<Vec<FuncDecl>, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut decls = Vec::new();
    while parser.peek() != &Tok::Eof {
        decls.push(parser.func_decl()?);
    }
    if decls.is_empty() {
        return Err(ParseError::custom("no functions in input"));
    }
    Ok(decls)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::at(
                format!("expected {tok}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(ParseError::at(
                format!("expected identifier, found {other}"),
                self.span(),
            )),
        }
    }

    fn func_decl(&mut self) -> Result<FuncDecl, ParseError> {
        self.expect(&Tok::Func)?;
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.peek() == &Tok::LParen {
            self.bump();
            if self.peek() != &Tok::RParen {
                loop {
                    params.push(self.ident()?);
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen)?;
        }
        let body = self.block()?;
        Ok(FuncDecl { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return Err(ParseError::at(
                    "unexpected end of input in block",
                    self.span(),
                ));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::If => self.if_stmt(),
            Tok::Break => {
                self.bump();
                let label = match self.peek().clone() {
                    Tok::Ident(s) => {
                        self.bump();
                        Some(s)
                    }
                    _ => None,
                };
                Ok(Stmt::Break { label })
            }
            Tok::Loop | Tok::For | Tok::While => self.loop_stmt(None),
            Tok::Ident(name) => {
                // Could be `LABEL: loop`, an assignment, or a store.
                if self.peek2() == &Tok::Colon {
                    self.bump(); // ident
                    self.bump(); // colon
                    match self.peek() {
                        Tok::Loop | Tok::For | Tok::While => self.loop_stmt(Some(name)),
                        other => Err(ParseError::at(
                            format!("expected a loop after label `{name}:`, found {other}"),
                            self.span(),
                        )),
                    }
                } else if self.peek2() == &Tok::LBracket {
                    self.bump(); // array name
                    let index = self.index_list()?;
                    self.expect(&Tok::Assign)?;
                    let value = self.expr()?;
                    Ok(Stmt::Store {
                        array: name,
                        index,
                        value,
                    })
                } else {
                    self.bump();
                    self.expect(&Tok::Assign)?;
                    let expr = self.expr()?;
                    Ok(Stmt::Assign { name, expr })
                }
            }
            other => Err(ParseError::at(
                format!("expected a statement, found {other}"),
                self.span(),
            )),
        }
    }

    fn loop_stmt(&mut self, label: Option<String>) -> Result<Stmt, ParseError> {
        match self.bump() {
            Tok::Loop => {
                let body = self.block()?;
                Ok(Stmt::Loop { label, body })
            }
            Tok::For => {
                let var = self.ident()?;
                self.expect(&Tok::Assign)?;
                let from = self.expr()?;
                self.expect(&Tok::To)?;
                let to = self.expr()?;
                let by = if self.peek() == &Tok::By {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                let body = self.block()?;
                Ok(Stmt::For {
                    label,
                    var,
                    from,
                    to,
                    by,
                    body,
                })
            }
            Tok::While => {
                let cond = self.cond()?;
                let body = self.block()?;
                Ok(Stmt::While { label, cond, body })
            }
            other => Err(ParseError::at(
                format!("expected a loop keyword, found {other}"),
                self.span(),
            )),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::If)?;
        let cond = self.cond()?;
        let then_body = self.block()?;
        let else_body = if self.peek() == &Tok::Else {
            self.bump();
            if self.peek() == &Tok::If {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    fn cond(&mut self) -> Result<Cond, ParseError> {
        let lhs = self.expr()?;
        let op = match self.bump() {
            Tok::EqEq => CmpOp::Eq,
            Tok::NotEq => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            other => {
                return Err(ParseError::at(
                    format!("expected a comparison operator, found {other}"),
                    self.span(),
                ))
            }
        };
        let rhs = self.expr()?;
        Ok(Cond { op, lhs, rhs })
    }

    fn index_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(&Tok::LBracket)?;
        let mut index = vec![self.expr()?];
        while self.peek() == &Tok::Comma {
            self.bump();
            index.push(self.expr()?);
        }
        self.expect(&Tok::RBracket)?;
        Ok(index)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.power()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.power()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn power(&mut self) -> Result<Expr, ParseError> {
        let base = self.unary()?;
        if self.peek() == &Tok::Caret {
            self.bump();
            let exp = self.power()?; // right associative
            Ok(Expr::binary(BinOp::Exp, base, exp))
        } else {
            Ok(base)
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == &Tok::Minus {
            self.bump();
            let inner = self.unary()?;
            // Fold negative literals immediately.
            if let Expr::Const(v) = inner {
                return Ok(Expr::Const(-v));
            }
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Const(v))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LBracket {
                    let index = self.index_list()?;
                    Ok(Expr::Load { array: name, index })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(ParseError::at(
                format!("expected an expression, found {other}"),
                self.span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1() {
        let decls = parse_program_ast(
            r#"
            func fig1(n, c, k) {
                j = n
                L7: loop {
                    i = j + c
                    j = i + k
                    if j > 1000 { break }
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(decls.len(), 1);
        assert_eq!(decls[0].name, "fig1");
        assert_eq!(decls[0].params, vec!["n", "c", "k"]);
        match &decls[0].body[1] {
            Stmt::Loop { label, body } => {
                assert_eq!(label.as_deref(), Some("L7"));
                assert_eq!(body.len(), 3);
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_with_step() {
        let decls = parse_program_ast("func f(n) { L9: for i = 1 to n by 2 { x = i } }").unwrap();
        match &decls[0].body[0] {
            Stmt::For { label, var, by, .. } => {
                assert_eq!(label.as_deref(), Some("L9"));
                assert_eq!(var, "i");
                assert!(by.is_some());
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_array_access() {
        let decls = parse_program_ast("func f(n) { for i = 1 to n { A[i] = A[i - 1] + B[i, 2] } }")
            .unwrap();
        match &decls[0].body[0] {
            Stmt::For { body, .. } => match &body[0] {
                Stmt::Store { array, index, .. } => {
                    assert_eq!(array, "A");
                    assert_eq!(index.len(), 1);
                }
                other => panic!("expected store, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let decls = parse_program_ast("func f() { x = 1 + 2 * 3 }").unwrap();
        match &decls[0].body[0] {
            Stmt::Assign { expr, .. } => match expr {
                Expr::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn power_right_associative() {
        let decls = parse_program_ast("func f() { x = 2 ^ 3 ^ 2 }").unwrap();
        match &decls[0].body[0] {
            Stmt::Assign { expr, .. } => match expr {
                Expr::Binary {
                    op: BinOp::Exp,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Exp, .. }));
                }
                other => panic!("expected exp at top, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn negative_literal_folds() {
        let decls = parse_program_ast("func f() { x = -5 }").unwrap();
        match &decls[0].body[0] {
            Stmt::Assign { expr, .. } => assert_eq!(*expr, Expr::Const(-5)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn else_if_chains() {
        let decls = parse_program_ast(
            "func f(a) { if a < 0 { x = 1 } else if a < 10 { x = 2 } else { x = 3 } }",
        )
        .unwrap();
        match &decls[0].body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program_ast("func f() { x = }").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("1:"), "message was: {msg}");
        assert!(msg.contains("expected an expression"), "message was: {msg}");
    }

    #[test]
    fn rejects_label_without_loop() {
        assert!(parse_program_ast("func f() { L1: x = 2 }").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_program_ast("").is_err());
    }

    #[test]
    fn break_with_label() {
        let decls = parse_program_ast("func f() { L1: loop { L2: loop { break L1 } } }").unwrap();
        match &decls[0].body[0] {
            Stmt::Loop { body, .. } => match &body[0] {
                Stmt::Loop { body, .. } => {
                    assert_eq!(
                        body[0],
                        Stmt::Break {
                            label: Some("L1".into())
                        }
                    );
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }
}
