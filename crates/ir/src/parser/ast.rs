//! Abstract syntax for the mini loop language.

use crate::function::{BinOp, CmpOp};

/// A parsed function declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameter names (loop-entry symbolic values).
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `name = expr`
    Assign {
        /// Target variable name.
        name: String,
        /// Right-hand side.
        expr: Expr,
    },
    /// `array[index…] = expr`
    Store {
        /// Target array name.
        array: String,
        /// One expression per dimension.
        index: Vec<Expr>,
        /// Value stored.
        value: Expr,
    },
    /// `if cond { … } else { … }`
    If {
        /// Branch condition.
        cond: Cond,
        /// Then-branch statements.
        then_body: Vec<Stmt>,
        /// Else-branch statements (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `LABEL: loop { … }` — an unconditional loop exited by `break`.
    Loop {
        /// Optional source label (the paper's `L7` names).
        label: Option<String>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `LABEL: for v = from to to [by step] { … }`
    For {
        /// Optional source label.
        label: Option<String>,
        /// Loop variable name.
        var: String,
        /// Initial value.
        from: Expr,
        /// Inclusive bound.
        to: Expr,
        /// Step (defaults to 1).
        by: Option<Expr>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `LABEL: while cond { … }`
    While {
        /// Optional source label.
        label: Option<String>,
        /// Continuation condition.
        cond: Cond,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `break [LABEL]` — exit the innermost (or named) loop.
    Break {
        /// Optional target loop label.
        label: Option<String>,
    },
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Scalar variable reference.
    Var(String),
    /// Array element read.
    Load {
        /// Array name.
        array: String,
        /// One expression per dimension.
        index: Vec<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
}

/// A comparison `lhs op rhs` used by `if` and `while`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left side.
    pub lhs: Expr,
    /// Right side.
    pub rhs: Expr,
}
