//! Compiler IR substrate for *Beyond Induction Variables*.
//!
//! The paper assumes "the program is represented by a CFG" whose basic
//! blocks hold tuples `(op, left, right, ssalink)`. This crate builds that
//! substrate from scratch:
//!
//! - a three-address **control-flow-graph IR** over named scalar variables
//!   and (multi-dimensional) arrays ([`Function`], [`Inst`],
//!   [`Terminator`]);
//! - a **mini loop language** front end (lexer, parser, AST, lowering) so
//!   every example loop in the paper can be written as source text
//!   ([`parser::parse_program`]);
//! - dense **CSR adjacency** over the CFG — flat predecessor/successor
//!   pools indexed by block, built once per analysis ([`cfg::Cfg`]);
//! - **dominator** / postdominator trees and dominance frontiers
//!   (Cooper–Harvey–Kennedy) — the inputs to SSA construction
//!   ([`dom::DomTree`]);
//! - **natural-loop detection** and a loop-nest forest, with a
//!   loop-simplify pass that guarantees preheaders and unique latches
//!   ([`loops::LoopForest`]);
//! - an iterative bit-vector **dataflow framework** with reaching
//!   definitions and liveness (used by the classical baseline detector and
//!   by SSA pruning) ([`dataflow`]);
//! - an IR **verifier** and a concrete **interpreter** used for
//!   differential testing of closed forms ([`interp::Interpreter`]).
//!
//! # Example
//!
//! ```
//! use biv_ir::parser::parse_program;
//!
//! let src = r#"
//!     func main(n) {
//!         j = n
//!         L7: loop {
//!             i = j + 1
//!             j = i + 2
//!             if j > 100 { break }
//!         }
//!     }
//! "#;
//! let program = parse_program(src)?;
//! let func = &program.functions[0];
//! assert_eq!(func.name(), "main");
//! # Ok::<(), biv_ir::parser::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entity;
mod function;

pub mod builder;
pub mod cfg;
pub mod dataflow;
pub mod dom;
pub mod dot;
pub mod interp;
pub mod loops;
pub mod parser;
pub mod print;
pub mod verify;

pub use cfg::Cfg;
pub use entity::{Arena, EntityId, EntityMap, EntitySet, IndexList, SecondaryMap, VecMap};
pub use function::{
    Array, ArrayData, BinOp, Block, BlockData, CmpOp, Function, Inst, Operand, Program, Successors,
    Terminator, Var, VarData,
};

// Functions (and whole programs) cross thread boundaries in the parallel
// batch driver; keep them `Send + Sync` by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Function>();
    assert_send_sync::<Program>();
};
