//! A concrete interpreter for CFG functions.
//!
//! The interpreter is the ground truth for differential testing: the
//! classifier predicts closed forms for variables at loop headers, and the
//! test suite replays the program concretely and checks the predictions
//! iteration by iteration.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::entity::EntityId;
use crate::function::{Array, BinOp, Block, Function, Inst, Operand, Terminator, Var};

/// Errors the interpreter can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Executed more block transitions than the configured limit.
    StepLimitExceeded,
    /// Integer overflow in checked arithmetic.
    Overflow,
    /// Division by zero.
    DivisionByZero,
    /// Negative exponent in `^`.
    NegativeExponent,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimitExceeded => write!(f, "step limit exceeded"),
            InterpError::Overflow => write!(f, "integer overflow"),
            InterpError::DivisionByZero => write!(f, "division by zero"),
            InterpError::NegativeExponent => write!(f, "negative exponent"),
        }
    }
}

impl std::error::Error for InterpError {}

/// A complete execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Sequence of `(block, variable snapshot at block entry)`.
    pub visits: Vec<(Block, Vec<i64>)>,
    /// Final variable values.
    pub final_vars: Vec<i64>,
    /// Final array contents.
    pub arrays: HashMap<(Array, Vec<i64>), i64>,
}

impl Trace {
    /// Values of `var` at each entry to `block`, in visit order — i.e. the
    /// per-iteration sequence for a loop header.
    pub fn values_at(&self, block: Block, var: Var) -> Vec<i64> {
        self.visits
            .iter()
            .filter(|(b, _)| *b == block)
            .map(|(_, snapshot)| snapshot[var.index()])
            .collect()
    }

    /// Number of times `block` was entered.
    pub fn visit_count(&self, block: Block) -> usize {
        self.visits.iter().filter(|(b, _)| *b == block).count()
    }

    /// The trace's *observable state*: final array contents keyed by
    /// array **name** and index vector, in deterministic order.
    ///
    /// Keying by name (not by [`Array`] id) makes the state comparable
    /// across different functions — in particular between a function and
    /// a transformed copy of it whose entity arenas have diverged.
    /// Scalars are deliberately excluded: at function end they are dead,
    /// and transformations (dead-IV elimination, strength reduction) are
    /// free to change or remove them.
    pub fn observable_arrays(&self, func: &Function) -> BTreeMap<(String, Vec<i64>), i64> {
        self.arrays
            .iter()
            .map(|((a, idx), &v)| ((func.array_name(*a).to_string(), idx.clone()), v))
            .collect()
    }
}

/// Interpreter configuration and entry point.
///
/// ```
/// use biv_ir::interp::Interpreter;
/// use biv_ir::parser::parse_program;
///
/// let program = parse_program("func f(n) { s = 0 L1: for i = 1 to n { s = s + i } }")?;
/// let func = &program.functions[0];
/// let trace = Interpreter::new().run(func, &[10]).unwrap();
/// let s = func.var_by_name("s").unwrap();
/// assert_eq!(trace.final_vars[biv_ir::EntityId::index(s)], 55);
/// # Ok::<(), biv_ir::parser::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter {
    /// Maximum number of block transitions before aborting.
    pub step_limit: usize,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter {
            step_limit: 100_000,
        }
    }
}

impl Interpreter {
    /// Creates an interpreter with the default step limit.
    pub fn new() -> Interpreter {
        Interpreter::default()
    }

    /// Runs `func` with the given parameter values (by position; missing
    /// parameters default to 0). Non-parameter variables start at 0 and
    /// array cells read before any write yield 0.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] on arithmetic faults or when the step
    /// limit is exceeded (e.g. a non-terminating loop).
    pub fn run(&self, func: &Function, args: &[i64]) -> Result<Trace, InterpError> {
        let mut vars = vec![0i64; func.vars.len()];
        for (i, &p) in func.params().iter().enumerate() {
            vars[p.index()] = args.get(i).copied().unwrap_or(0);
        }
        let mut arrays: HashMap<(Array, Vec<i64>), i64> = HashMap::new();
        let mut visits = Vec::new();
        let mut block = func.entry();
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > self.step_limit {
                return Err(InterpError::StepLimitExceeded);
            }
            visits.push((block, vars.clone()));
            let data = &func.blocks[block];
            for inst in &data.insts {
                self.exec_inst(inst, &mut vars, &mut arrays)?;
            }
            match &data.term {
                Terminator::Jump(b) => block = *b,
                Terminator::Branch {
                    op,
                    lhs,
                    rhs,
                    then_bb,
                    else_bb,
                } => {
                    let l = eval_operand(lhs, &vars);
                    let r = eval_operand(rhs, &vars);
                    block = if op.eval(l, r) { *then_bb } else { *else_bb };
                }
                Terminator::Return => {
                    return Ok(Trace {
                        visits,
                        final_vars: vars,
                        arrays,
                    })
                }
            }
        }
    }

    fn exec_inst(
        &self,
        inst: &Inst,
        vars: &mut [i64],
        arrays: &mut HashMap<(Array, Vec<i64>), i64>,
    ) -> Result<(), InterpError> {
        match inst {
            Inst::Copy { dst, src } => {
                vars[dst.index()] = eval_operand(src, vars);
            }
            Inst::Neg { dst, src } => {
                vars[dst.index()] = eval_operand(src, vars)
                    .checked_neg()
                    .ok_or(InterpError::Overflow)?;
            }
            Inst::Binary { dst, op, lhs, rhs } => {
                let l = eval_operand(lhs, vars);
                let r = eval_operand(rhs, vars);
                vars[dst.index()] = eval_binop(*op, l, r)?;
            }
            Inst::Load { dst, array, index } => {
                let idx: Vec<i64> = index.iter().map(|o| eval_operand(o, vars)).collect();
                vars[dst.index()] = arrays.get(&(*array, idx)).copied().unwrap_or(0);
            }
            Inst::Store {
                array,
                index,
                value,
            } => {
                let idx: Vec<i64> = index.iter().map(|o| eval_operand(o, vars)).collect();
                let v = eval_operand(value, vars);
                arrays.insert((*array, idx), v);
            }
        }
        Ok(())
    }
}

fn eval_operand(op: &Operand, vars: &[i64]) -> i64 {
    match op {
        Operand::Var(v) => vars[v.index()],
        Operand::Const(c) => *c,
    }
}

fn eval_binop(op: BinOp, l: i64, r: i64) -> Result<i64, InterpError> {
    match op {
        BinOp::Add => l.checked_add(r).ok_or(InterpError::Overflow),
        BinOp::Sub => l.checked_sub(r).ok_or(InterpError::Overflow),
        BinOp::Mul => l.checked_mul(r).ok_or(InterpError::Overflow),
        BinOp::Div => {
            if r == 0 {
                Err(InterpError::DivisionByZero)
            } else {
                l.checked_div(r).ok_or(InterpError::Overflow)
            }
        }
        BinOp::Exp => {
            if r < 0 {
                return Err(InterpError::NegativeExponent);
            }
            let exp = u32::try_from(r).map_err(|_| InterpError::Overflow)?;
            l.checked_pow(exp).ok_or(InterpError::Overflow)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run_src(src: &str, args: &[i64]) -> Trace {
        let program = parse_program(src).unwrap();
        Interpreter::new().run(&program.functions[0], args).unwrap()
    }

    #[test]
    fn counts_iterations() {
        let t = run_src("func f(n) { L1: for i = 1 to n { x = i } }", &[5]);
        let program = parse_program("func f(n) { L1: for i = 1 to n { x = i } }").unwrap();
        let f = &program.functions[0];
        let header = f.block_by_label("L1").unwrap();
        // Header executes n+1 times (n body trips + final exit test).
        assert_eq!(t.visit_count(header), 6);
        let i = f.var_by_name("i").unwrap();
        assert_eq!(t.values_at(header, i), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn l14_sequences_match_paper() {
        // Paper's loop L14: j = j+i, k = k+j+1, l = l*2+1.
        let src = r#"
            func l14(n) {
                j = 1
                k = 1
                l = 1
                L14: for i = 1 to n {
                    j = j + i
                    k = k + j + 1
                    l = l * 2 + 1
                }
            }
        "#;
        let t = run_src(src, &[4]);
        let program = parse_program(src).unwrap();
        let f = &program.functions[0];
        let header = f.block_by_label("L14").unwrap();
        let j = f.var_by_name("j").unwrap();
        let k = f.var_by_name("k").unwrap();
        let l = f.var_by_name("l").unwrap();
        // Header-entry sequences start with the initial value 1 and then
        // follow the paper's table: j: 2,4,7,11; k: 4,9,17,29; l: 3,7,15,31.
        assert_eq!(t.values_at(header, j), vec![1, 2, 4, 7, 11]);
        assert_eq!(t.values_at(header, k), vec![1, 4, 9, 17, 29]);
        assert_eq!(t.values_at(header, l), vec![1, 3, 7, 15, 31]);
    }

    #[test]
    fn arrays_read_write() {
        let t = run_src(
            "func f(n) { for i = 1 to n { A[i] = i * i } s = A[3] }",
            &[5],
        );
        let program =
            parse_program("func f(n) { for i = 1 to n { A[i] = i * i } s = A[3] }").unwrap();
        let f = &program.functions[0];
        let s = f.var_by_name("s").unwrap();
        assert_eq!(t.final_vars[s.index()], 9);
    }

    #[test]
    fn infinite_loop_hits_limit() {
        let program = parse_program("func f() { loop { x = 1 } }").unwrap();
        let interp = Interpreter { step_limit: 100 };
        assert_eq!(
            interp.run(&program.functions[0], &[]),
            Err(InterpError::StepLimitExceeded)
        );
    }

    #[test]
    fn division_by_zero_detected() {
        let program = parse_program("func f(n) { x = 1 / n }").unwrap();
        assert_eq!(
            Interpreter::new().run(&program.functions[0], &[0]),
            Err(InterpError::DivisionByZero)
        );
    }

    #[test]
    fn exponent_works() {
        let t = run_src("func f() { x = 2 ^ 10 }", &[]);
        let program = parse_program("func f() { x = 2 ^ 10 }").unwrap();
        let x = program.functions[0].var_by_name("x").unwrap();
        assert_eq!(t.final_vars[x.index()], 1024);
    }
}
