//! Human-readable printing of CFG functions.

use std::fmt::Write as _;

use crate::function::{Function, Inst, Operand, Terminator};

/// Renders a function as text, one block per paragraph.
pub fn function_to_string(func: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "func {}({}) {{",
        func.name(),
        func.params()
            .iter()
            .map(|&p| func.var_name(p).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (b, data) in func.blocks.iter() {
        match &data.label {
            Some(l) => {
                let _ = writeln!(out, "{b} ({l}):");
            }
            None => {
                let _ = writeln!(out, "{b}:");
            }
        }
        for inst in &data.insts {
            let _ = writeln!(out, "    {}", inst_to_string(func, inst));
        }
        let _ = writeln!(out, "    {}", term_to_string(func, &data.term));
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders one operand.
pub fn operand_to_string(func: &Function, op: &Operand) -> String {
    match op {
        Operand::Var(v) => func.var_name(*v).to_string(),
        Operand::Const(c) => c.to_string(),
    }
}

/// Renders one instruction.
pub fn inst_to_string(func: &Function, inst: &Inst) -> String {
    let op = |o: &Operand| operand_to_string(func, o);
    match inst {
        Inst::Copy { dst, src } => format!("{} = {}", func.var_name(*dst), op(src)),
        Inst::Neg { dst, src } => format!("{} = -{}", func.var_name(*dst), op(src)),
        Inst::Binary {
            dst,
            op: b,
            lhs,
            rhs,
        } => format!(
            "{} = {} {} {}",
            func.var_name(*dst),
            op(lhs),
            b.symbol(),
            op(rhs)
        ),
        Inst::Load { dst, array, index } => format!(
            "{} = {}[{}]",
            func.var_name(*dst),
            func.array_name(*array),
            index.iter().map(op).collect::<Vec<_>>().join(", ")
        ),
        Inst::Store {
            array,
            index,
            value,
        } => format!(
            "{}[{}] = {}",
            func.array_name(*array),
            index.iter().map(op).collect::<Vec<_>>().join(", "),
            op(value)
        ),
    }
}

/// Renders one terminator.
pub fn term_to_string(func: &Function, term: &Terminator) -> String {
    match term {
        Terminator::Jump(b) => format!("jump {b}"),
        Terminator::Branch {
            op,
            lhs,
            rhs,
            then_bb,
            else_bb,
        } => format!(
            "if {} {} {} then {then_bb} else {else_bb}",
            operand_to_string(func, lhs),
            op.symbol(),
            operand_to_string(func, rhs)
        ),
        Terminator::Return => "return".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn prints_readable_text() {
        let program = parse_program("func f(n) { L1: for i = 1 to n { A[i] = i * 2 } }").unwrap();
        let text = function_to_string(&program.functions[0]);
        assert!(text.contains("func f(n)"), "{text}");
        assert!(text.contains("(L1):"), "{text}");
        assert!(text.contains("i = i + 1"), "{text}");
        assert!(text.contains("A["), "{text}");
        assert!(text.contains("if i > n"), "{text}");
    }
}
