//! The three-address CFG IR.

use std::cell::RefCell;

use crate::entity::{Arena, IndexList};
use crate::entity_id;

entity_id!(
    /// A basic block.
    pub struct Block,
    "bb"
);
entity_id!(
    /// A named scalar variable.
    pub struct Var,
    "v"
);
entity_id!(
    /// A named array.
    pub struct Array,
    "a"
);

/// An instruction operand: a scalar variable or an integer constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A scalar variable read.
    Var(Var),
    /// An integer literal (the paper's `LT` tuples).
    Const(i64),
}

impl Operand {
    /// The variable read by this operand, when any.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Operand::Var(v) => Some(*v),
            Operand::Const(_) => None,
        }
    }
}

impl From<Var> for Operand {
    fn from(v: Var) -> Operand {
        Operand::Var(v)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Operand {
        Operand::Const(c)
    }
}

impl Default for Operand {
    /// The zero constant — used as inline-storage padding, never read.
    fn default() -> Operand {
        Operand::Const(0)
    }
}

/// Binary arithmetic operators (the paper's AD/SB/MP/DV/EX tuples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division (truncating toward zero).
    Div,
    /// Exponentiation.
    Exp,
}

impl BinOp {
    /// Human-readable operator symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Exp => "^",
        }
    }
}

/// Integer comparison operators used by branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Human-readable operator symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The comparison with both sides exchanged (`a < b` ⇔ `b > a`).
    pub fn swapped(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`a < b` ⇔ `!(a >= b)`).
    pub fn negated(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluates the comparison on concrete values.
    pub fn eval(&self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// A three-address instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = src`
    Copy {
        /// Destination variable.
        dst: Var,
        /// Source operand.
        src: Operand,
    },
    /// `dst = -src` (the paper's `NG` tuple).
    Neg {
        /// Destination variable.
        dst: Var,
        /// Source operand.
        src: Operand,
    },
    /// `dst = lhs op rhs`
    Binary {
        /// Destination variable.
        dst: Var,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = array[index…]` (the paper's indexed `LD`).
    Load {
        /// Destination variable.
        dst: Var,
        /// Array being read.
        array: Array,
        /// One operand per dimension, stored inline up to two dimensions.
        index: IndexList<Operand>,
    },
    /// `array[index…] = value` (the paper's indexed `ST`).
    Store {
        /// Array being written.
        array: Array,
        /// One operand per dimension, stored inline up to two dimensions.
        index: IndexList<Operand>,
        /// Value stored.
        value: Operand,
    },
}

impl Inst {
    /// The scalar variable defined by this instruction, if any.
    pub fn def(&self) -> Option<Var> {
        match self {
            Inst::Copy { dst, .. }
            | Inst::Neg { dst, .. }
            | Inst::Binary { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Store { .. } => None,
        }
    }

    /// Collects the scalar variables read by this instruction.
    pub fn uses(&self, out: &mut Vec<Var>) {
        let mut push = |op: &Operand| {
            if let Operand::Var(v) = op {
                out.push(*v);
            }
        };
        match self {
            Inst::Copy { src, .. } | Inst::Neg { src, .. } => push(src),
            Inst::Binary { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            Inst::Load { index, .. } => index.iter().for_each(&mut push),
            Inst::Store { index, value, .. } => {
                index.iter().for_each(&mut push);
                push(value);
            }
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(Block),
    /// Two-way conditional branch on an integer comparison.
    Branch {
        /// Comparison operator.
        op: CmpOp,
        /// Left comparison operand.
        lhs: Operand,
        /// Right comparison operand.
        rhs: Operand,
        /// Successor when the comparison holds.
        then_bb: Block,
        /// Successor when it does not.
        else_bb: Block,
    },
    /// Function return.
    Return,
}

/// The successor blocks of a terminator — at most two, stored inline so
/// CFG walks never allocate.
///
/// Dereferences to `[Block]` and iterates by value, so existing
/// `for succ in term.successors()` loops keep working unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Successors {
    items: [Block; 2],
    len: u8,
}

impl Successors {
    fn none() -> Successors {
        let filler = <Block as crate::EntityId>::from_index(0);
        Successors {
            items: [filler; 2],
            len: 0,
        }
    }

    fn one(b: Block) -> Successors {
        Successors {
            items: [b, b],
            len: 1,
        }
    }

    fn two(a: Block, b: Block) -> Successors {
        Successors {
            items: [a, b],
            len: 2,
        }
    }

    /// The successors as a slice, in terminator order.
    pub fn as_slice(&self) -> &[Block] {
        &self.items[..self.len as usize]
    }
}

impl std::ops::Deref for Successors {
    type Target = [Block];
    fn deref(&self) -> &[Block] {
        self.as_slice()
    }
}

impl IntoIterator for Successors {
    type Item = Block;
    type IntoIter = std::iter::Take<std::array::IntoIter<Block, 2>>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a Successors {
    type Item = &'a Block;
    type IntoIter = std::slice::Iter<'a, Block>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl Terminator {
    /// The successor blocks, in order.
    pub fn successors(&self) -> Successors {
        match self {
            Terminator::Jump(b) => Successors::one(*b),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => Successors::two(*then_bb, *else_bb),
            Terminator::Return => Successors::none(),
        }
    }

    /// Collects the scalar variables read by the terminator.
    pub fn uses(&self, out: &mut Vec<Var>) {
        if let Terminator::Branch { lhs, rhs, .. } = self {
            if let Operand::Var(v) = lhs {
                out.push(*v);
            }
            if let Operand::Var(v) = rhs {
                out.push(*v);
            }
        }
    }

    /// Rewrites successor `from` to `to`.
    pub fn replace_successor(&mut self, from: Block, to: Block) {
        match self {
            Terminator::Jump(b) => {
                if *b == from {
                    *b = to;
                }
            }
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if *then_bb == from {
                    *then_bb = to;
                }
                if *else_bb == from {
                    *else_bb = to;
                }
            }
            Terminator::Return => {}
        }
    }
}

/// Per-block payload: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockData {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// Terminator; every reachable block must end in one.
    pub term: Terminator,
    /// Optional source-level label (e.g. the paper's `L7`).
    pub label: Option<String>,
}

impl BlockData {
    /// A fresh block ending in `Return`.
    pub fn new() -> BlockData {
        BlockData {
            insts: Vec::new(),
            term: Terminator::Return,
            label: None,
        }
    }
}

impl Default for BlockData {
    fn default() -> Self {
        BlockData::new()
    }
}

/// A scalar variable's metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarData {
    /// Source-level name.
    pub name: String,
    /// Whether the variable is a function parameter (live on entry).
    pub is_param: bool,
}

/// An array's metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayData {
    /// Source-level name.
    pub name: String,
    /// Number of dimensions.
    pub dims: usize,
}

/// A function: a CFG over scalar variables and arrays.
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    /// Scalar variables.
    pub vars: Arena<Var, VarData>,
    /// Arrays.
    pub arrays: Arena<Array, ArrayData>,
    /// Basic blocks.
    pub blocks: Arena<Block, BlockData>,
    entry: Block,
    params: Vec<Var>,
}

impl Function {
    /// Creates an empty function with a fresh entry block.
    pub fn new(name: impl Into<String>) -> Function {
        let mut blocks = Arena::new();
        let entry = blocks.push(BlockData::new());
        Function {
            name: name.into(),
            vars: Arena::new(),
            arrays: Arena::new(),
            blocks,
            entry,
            params: Vec::new(),
        }
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    pub fn entry(&self) -> Block {
        self.entry
    }

    /// The declared parameters (variables live on entry).
    pub fn params(&self) -> &[Var] {
        &self.params
    }

    /// Declares a fresh scalar variable.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        self.vars.push(VarData {
            name: name.into(),
            is_param: false,
        })
    }

    /// Declares a parameter variable (live on entry, symbolic to the
    /// analyses).
    pub fn new_param(&mut self, name: impl Into<String>) -> Var {
        let v = self.vars.push(VarData {
            name: name.into(),
            is_param: true,
        });
        self.params.push(v);
        v
    }

    /// Declares an array.
    pub fn new_array(&mut self, name: impl Into<String>, dims: usize) -> Array {
        self.arrays.push(ArrayData {
            name: name.into(),
            dims,
        })
    }

    /// Adds an empty block.
    pub fn new_block(&mut self) -> Block {
        self.blocks.push(BlockData::new())
    }

    /// Adds an empty block carrying a source label.
    pub fn new_labeled_block(&mut self, label: impl Into<String>) -> Block {
        let mut data = BlockData::new();
        data.label = Some(label.into());
        self.blocks.push(data)
    }

    /// The successor blocks of `block`, inline — no allocation.
    pub fn successors(&self, block: Block) -> Successors {
        self.blocks[block].term.successors()
    }

    /// Blocks in reverse postorder from the entry. Unreachable blocks are
    /// omitted.
    pub fn reverse_postorder(&self) -> Vec<Block> {
        let mut po = self.postorder();
        po.reverse();
        po
    }

    /// Blocks in postorder from the entry (iterative DFS). The visited
    /// table and work stack live in thread-local scratch, so a
    /// steady-state call allocates only the returned order.
    pub fn postorder(&self) -> Vec<Block> {
        type PoScratch = (Vec<bool>, Vec<(Block, u8)>);
        thread_local! {
            static PO_SCRATCH: RefCell<PoScratch> =
                const { RefCell::new((Vec::new(), Vec::new())) };
        }
        let mut order = Vec::with_capacity(self.blocks.len());
        PO_SCRATCH.with(|cell| {
            let (visited, stack) = &mut *cell.borrow_mut();
            visited.clear();
            visited.resize(self.blocks.len(), false);
            debug_assert!(stack.is_empty());
            // Stack entries: (block, next successor index to explore).
            stack.push((self.entry, 0));
            visited[crate::EntityId::index(self.entry)] = true;
            while let Some((block, succ_idx)) = stack.pop() {
                let succs = self.successors(block);
                if (succ_idx as usize) < succs.len() {
                    stack.push((block, succ_idx + 1));
                    let next = succs[succ_idx as usize];
                    let idx = crate::EntityId::index(next);
                    if !visited[idx] {
                        visited[idx] = true;
                        stack.push((next, 0));
                    }
                } else {
                    order.push(block);
                }
            }
        });
        order
    }

    /// Looks up a variable by source name.
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.vars
            .iter()
            .find(|(_, d)| d.name == name)
            .map(|(v, _)| v)
    }

    /// Looks up an array by source name.
    pub fn array_by_name(&self, name: &str) -> Option<Array> {
        self.arrays
            .iter()
            .find(|(_, d)| d.name == name)
            .map(|(a, _)| a)
    }

    /// Looks up a block by source label.
    pub fn block_by_label(&self, label: &str) -> Option<Block> {
        self.blocks
            .iter()
            .find(|(_, d)| d.label.as_deref() == Some(label))
            .map(|(b, _)| b)
    }

    /// The source name of a variable.
    pub fn var_name(&self, var: Var) -> &str {
        &self.vars[var].name
    }

    /// The source name of an array.
    pub fn array_name(&self, array: Array) -> &str {
        &self.arrays[array].name
    }
}

/// A whole program: a set of functions.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The functions, in source order.
    pub functions: Vec<Function>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Function {
        // entry -> (then, else) -> join
        let mut f = Function::new("diamond");
        let x = f.new_var("x");
        let then_bb = f.new_block();
        let else_bb = f.new_block();
        let join = f.new_block();
        let entry = f.entry();
        f.blocks[entry].term = Terminator::Branch {
            op: CmpOp::Lt,
            lhs: Operand::Var(x),
            rhs: Operand::Const(0),
            then_bb,
            else_bb,
        };
        f.blocks[then_bb].term = Terminator::Jump(join);
        f.blocks[else_bb].term = Terminator::Jump(join);
        f.blocks[join].term = Terminator::Return;
        f
    }

    #[test]
    fn successors_and_predecessors() {
        let f = diamond();
        let entry = f.entry();
        let succs = f.successors(entry);
        assert_eq!(succs.len(), 2);
        let cfg = crate::cfg::Cfg::compute(&f);
        let join = f
            .blocks
            .ids()
            .find(|&b| f.successors(b).is_empty())
            .unwrap();
        assert_eq!(cfg.preds(join).len(), 2);
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let f = diamond();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), 4);
        // Join must come after both branches.
        let join_pos = rpo
            .iter()
            .position(|&b| f.successors(b).is_empty())
            .unwrap();
        assert_eq!(join_pos, 3);
    }

    #[test]
    fn cmp_op_algebra() {
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert!(CmpOp::Le.eval(3, 3));
        assert!(!CmpOp::Gt.eval(3, 3));
    }

    #[test]
    fn inst_def_use() {
        let mut f = Function::new("t");
        let a = f.new_var("a");
        let b = f.new_var("b");
        let inst = Inst::Binary {
            dst: a,
            op: BinOp::Add,
            lhs: Operand::Var(b),
            rhs: Operand::Const(1),
        };
        assert_eq!(inst.def(), Some(a));
        let mut uses = Vec::new();
        inst.uses(&mut uses);
        assert_eq!(uses, vec![b]);
    }

    #[test]
    fn terminator_replace_successor() {
        let f = diamond();
        let entry = f.entry();
        let mut term = f.blocks[entry].term.clone();
        let succs = term.successors();
        term.replace_successor(succs[0], succs[1]);
        assert_eq!(term.successors().as_slice(), &[succs[1], succs[1]]);
    }

    #[test]
    fn unreachable_blocks_skipped() {
        let mut f = Function::new("t");
        let _orphan = f.new_block();
        assert_eq!(f.postorder().len(), 1);
    }
}
