//! Natural-loop detection and the loop-nest forest.
//!
//! The classifier processes loops inner-to-outer (§5.3 of the paper), so we
//! build an explicit loop forest. A loop-simplify pass guarantees each
//! analyzed loop has a **preheader** (unique out-of-loop predecessor of the
//! header) and a **unique latch** (single back edge), which the SSA
//! loop-header φ shape relies on.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::entity::{Arena, EntityId};
use crate::entity_id;
use crate::function::{Block, Function, Terminator};

entity_id!(
    /// A natural loop in the loop forest.
    pub struct Loop,
    "L"
);

/// A natural loop: header, member blocks, and its place in the nest.
#[derive(Debug, Clone)]
pub struct LoopData {
    /// The loop header (target of the back edges).
    pub header: Block,
    /// All blocks in the loop, header first. Includes inner-loop blocks.
    pub blocks: Vec<Block>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<Block>,
    /// Enclosing loop, if any.
    pub parent: Option<Loop>,
    /// Directly nested loops.
    pub children: Vec<Loop>,
    /// Depth in the nest (outermost = 1).
    pub depth: usize,
}

/// The loop-nest forest of a function.
///
/// ```
/// use biv_ir::dom::DomTree;
/// use biv_ir::loops::LoopForest;
/// use biv_ir::parser::parse_program;
///
/// let program = parse_program(
///     "func f(n) { L1: for i = 1 to n { L2: for j = 1 to i { x = j } } }",
/// )?;
/// let func = &program.functions[0];
/// let dom = DomTree::compute(func);
/// let forest = LoopForest::compute(func, &dom);
/// assert_eq!(forest.len(), 2);
/// // Inner-to-outer order, as the nested-IV driver needs.
/// let order = forest.inner_to_outer();
/// assert_eq!(forest.name(func, order[0]), "L2");
/// assert_eq!(forest.name(func, order[1]), "L1");
/// # Ok::<(), biv_ir::parser::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Arena<Loop, LoopData>,
    /// Innermost loop containing each block, indexed by block.
    block_loop: Vec<Option<Loop>>,
    /// Flat per-loop membership bitset (`words_per_loop` words per
    /// loop) for O(1) containment tests.
    membership: Vec<u64>,
    words_per_loop: usize,
    /// Precomputed preheaders (unique outside predecessor whose only
    /// successor is the header).
    preheaders: Vec<Option<Block>>,
}

impl LoopForest {
    /// Detects all natural loops of `func` using its dominator tree.
    ///
    /// Back edges `latch → header` where `header` dominates `latch` define
    /// loops; loops sharing a header are merged (as in the classical
    /// construction).
    pub fn compute(func: &Function, dom: &DomTree) -> LoopForest {
        let cfg = Cfg::compute(func);
        LoopForest::compute_with(func, dom, &cfg)
    }

    /// [`LoopForest::compute`] with a caller-provided CFG, so callers
    /// that already built one (typically for the dominator tree) avoid
    /// rebuilding the predecessor lists.
    pub fn compute_with(func: &Function, dom: &DomTree, cfg: &Cfg) -> LoopForest {
        let nblocks = func.blocks.len();
        // Find back edges grouped by header, in RPO so outer headers come
        // first.
        let mut headers: Vec<Block> = Vec::new();
        let mut latch_lists: Vec<Vec<Block>> = vec![Vec::new(); nblocks];
        for &b in dom.reverse_postorder() {
            for succ in func.successors(b) {
                if dom.dominates(succ, b) {
                    let entry = &mut latch_lists[succ.index()];
                    if entry.is_empty() {
                        headers.push(succ);
                    }
                    entry.push(b);
                }
            }
        }
        // Compute the body of each loop: backwards reachability from the
        // latches without passing through the header. Membership is
        // tracked with an epoch stamp per block (one epoch per loop)
        // instead of a hash set.
        let mut loops: Arena<Loop, LoopData> = Arena::new();
        let mut in_body = vec![0u32; nblocks];
        let mut stack: Vec<Block> = Vec::new();
        for (epoch, &header) in headers.iter().enumerate() {
            let epoch = epoch as u32 + 1;
            let latches = std::mem::take(&mut latch_lists[header.index()]);
            let mut blocks: Vec<Block> = vec![header];
            in_body[header.index()] = epoch;
            stack.clear();
            for &l in &latches {
                if dom.is_reachable(l) && in_body[l.index()] != epoch {
                    in_body[l.index()] = epoch;
                    blocks.push(l);
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if dom.is_reachable(p) && in_body[p.index()] != epoch {
                        in_body[p.index()] = epoch;
                        blocks.push(p);
                        stack.push(p);
                    }
                }
            }
            blocks.sort_by_key(|b| b.index());
            // Put the header first for readability.
            if let Some(pos) = blocks.iter().position(|&b| b == header) {
                blocks.swap(0, pos);
            }
            loops.push(LoopData {
                header,
                blocks,
                latches,
                parent: None,
                children: Vec::new(),
                depth: 0,
            });
        }
        // Establish nesting: parent of `a` = smallest loop strictly
        // containing a's header other than `a` itself. Scanning each
        // loop's membership once (checking which headers it covers) is
        // linear in total membership, not quadratic in the loop count.
        let ids: Vec<Loop> = loops.ids().collect();
        let mut header_of: Vec<Option<Loop>> = vec![None; nblocks];
        for &a in &ids {
            header_of[loops[a].header.index()] = Some(a);
        }
        let mut parents: Vec<Option<Loop>> = vec![None; loops.len()];
        for &b in &ids {
            for i in 0..loops[b].blocks.len() {
                let blk = loops[b].blocks[i];
                let Some(a) = header_of[blk.index()] else {
                    continue;
                };
                if a == b {
                    continue;
                }
                parents[a.index()] = match parents[a.index()] {
                    None => Some(b),
                    Some(cur) => {
                        if loops[b].blocks.len() < loops[cur].blocks.len() {
                            Some(b)
                        } else {
                            Some(cur)
                        }
                    }
                };
            }
        }
        for &a in &ids {
            loops[a].parent = parents[a.index()];
        }
        for &a in &ids {
            if let Some(p) = loops[a].parent {
                loops[p].children.push(a);
            }
        }
        // Depths.
        for &a in &ids {
            let mut d = 1;
            let mut cur = loops[a].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p].parent;
            }
            loops[a].depth = d;
        }
        // Innermost loop of each block (smallest body wins; ties keep
        // the earlier loop).
        let mut block_loop: Vec<Option<Loop>> = vec![None; nblocks];
        for &a in &ids {
            for &b in &loops[a].blocks {
                match block_loop[b.index()] {
                    Some(cur) if loops[cur].blocks.len() <= loops[a].blocks.len() => {}
                    _ => block_loop[b.index()] = Some(a),
                }
            }
        }
        // Flat membership bitset: `words_per_loop` words per loop.
        let words_per_loop = nblocks.div_ceil(64);
        let mut membership = vec![0u64; loops.len() * words_per_loop];
        for &a in &ids {
            let base = a.index() * words_per_loop;
            for &b in &loops[a].blocks {
                let i = b.index();
                membership[base + i / 64] |= 1 << (i % 64);
            }
        }
        let loop_contains = |l: Loop, b: Block| {
            let i = b.index();
            membership[l.index() * words_per_loop + i / 64] >> (i % 64) & 1 != 0
        };
        // Precompute preheaders with the CSR adjacency built once.
        let preheaders = loops
            .iter()
            .map(|(l, d)| {
                let outside: Vec<Block> = cfg
                    .preds(d.header)
                    .iter()
                    .copied()
                    .filter(|&p| !loop_contains(l, p))
                    .collect();
                match outside.as_slice() {
                    [single] if func.successors(*single).as_slice() == [d.header] => Some(*single),
                    _ => None,
                }
            })
            .collect();
        LoopForest {
            loops,
            block_loop,
            membership,
            words_per_loop,
            preheaders,
        }
    }

    /// All loops, unordered.
    pub fn iter(&self) -> impl Iterator<Item = (Loop, &LoopData)> {
        self.loops.iter()
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether there are no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Loop data by ID.
    pub fn data(&self, l: Loop) -> &LoopData {
        &self.loops[l]
    }

    /// The innermost loop containing `block`, if any.
    pub fn innermost(&self, block: Block) -> Option<Loop> {
        self.block_loop.get(block.index()).copied().flatten()
    }

    /// Whether `block` belongs to loop `l` (including nested loops).
    /// Constant time.
    pub fn contains(&self, l: Loop, block: Block) -> bool {
        let i = block.index();
        self.membership[l.index() * self.words_per_loop + i / 64] >> (i % 64) & 1 != 0
    }

    /// Loops ordered inner-to-outer (children before parents), the order
    /// the paper's nested-IV driver requires.
    pub fn inner_to_outer(&self) -> Vec<Loop> {
        let mut order = Vec::with_capacity(self.loops.len());
        let mut visited = vec![false; self.loops.len()];
        // DFS from roots, emitting children first.
        let roots: Vec<Loop> = self
            .loops
            .iter()
            .filter(|(_, d)| d.parent.is_none())
            .map(|(l, _)| l)
            .collect();
        fn visit(
            forest: &Arena<Loop, LoopData>,
            l: Loop,
            visited: &mut [bool],
            order: &mut Vec<Loop>,
        ) {
            if visited[l.index()] {
                return;
            }
            visited[l.index()] = true;
            for &c in &forest[l].children {
                visit(forest, c, visited, order);
            }
            order.push(l);
        }
        for r in roots {
            visit(&self.loops, r, &mut visited, &mut order);
        }
        order
    }

    /// The loop's exit edges: `(inside_block, outside_block)` pairs.
    pub fn exit_edges(&self, func: &Function, l: Loop) -> Vec<(Block, Block)> {
        let data = &self.loops[l];
        let mut out = Vec::new();
        for &b in &data.blocks {
            for succ in func.successors(b) {
                if !self.contains(l, succ) {
                    out.push((b, succ));
                }
            }
        }
        out
    }

    /// The unique preheader of the loop: the single predecessor of the
    /// header from outside the loop, which must have the header as its
    /// only successor. Returns `None` when the CFG is not simplified.
    /// Precomputed — constant time; `_func` is kept for signature
    /// stability and must be the function the forest was built from.
    pub fn preheader(&self, _func: &Function, l: Loop) -> Option<Block> {
        self.preheaders[l.index()]
    }

    /// The unique latch, when the loop has exactly one back edge.
    pub fn single_latch(&self, l: Loop) -> Option<Block> {
        match self.loops[l].latches.as_slice() {
            [single] => Some(*single),
            _ => None,
        }
    }

    /// A human-readable name for the loop: the header block's source label
    /// when present, else `L#header`.
    pub fn name(&self, func: &Function, l: Loop) -> String {
        let header = self.loops[l].header;
        func.blocks[header]
            .label
            .clone()
            .unwrap_or_else(|| format!("L@{}", header))
    }
}

/// Rewrites the CFG so every natural loop has a preheader and a unique
/// latch. Returns `true` when the function was changed (in which case
/// dominators and the forest must be recomputed).
pub fn loop_simplify(func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let dom = DomTree::compute(func);
        let forest = LoopForest::compute(func, &dom);
        let mut did = false;
        for (l, data) in forest.iter() {
            let header = data.header;
            // Insert a preheader when missing.
            if forest.preheader(func, l).is_none() {
                let cfg = Cfg::compute(func);
                let outside: Vec<Block> = cfg
                    .preds(header)
                    .iter()
                    .copied()
                    .filter(|p| !data.blocks.contains(p))
                    .collect();
                if !outside.is_empty() {
                    let pre = func.new_block();
                    func.blocks[pre].term = Terminator::Jump(header);
                    for p in outside {
                        func.blocks[p].term.replace_successor(header, pre);
                    }
                    did = true;
                    break; // recompute structures
                }
            }
            // Merge multiple latches through a single forwarding block.
            if data.latches.len() > 1 {
                let latch = func.new_block();
                func.blocks[latch].term = Terminator::Jump(header);
                for &old in &data.latches {
                    func.blocks[old].term.replace_successor(header, latch);
                }
                did = true;
                break;
            }
        }
        if did {
            changed = true;
            continue;
        }
        break;
    }
    changed
}

/// Ensures the entry block is not itself a loop header by splitting an
/// empty pre-entry block when needed. (Lowered programs never need this,
/// but builder-made CFGs might.)
pub fn split_entry_if_header(func: &mut Function) -> bool {
    if Cfg::compute(func).preds(func.entry()).is_empty() {
        return false;
    }
    // Move entry contents into a fresh block; keep `entry` empty jumping
    // to it. Simplest correct approach: create new first block that holds
    // the old entry's instructions.
    let old_entry = func.entry();
    let moved = func.new_block();
    let data = std::mem::take(&mut func.blocks[old_entry]);
    func.blocks[moved] = data;
    // Redirect all edges that pointed at entry to the moved block.
    let ids: Vec<Block> = func.blocks.ids().collect();
    for b in ids {
        if b != old_entry {
            func.blocks[b].term.replace_successor(old_entry, moved);
        }
    }
    func.blocks[old_entry].term = Terminator::Jump(moved);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::{CmpOp, Operand};

    /// Two nested counting loops.
    fn nested() -> (Function, Block, Block) {
        let mut b = FunctionBuilder::new("nested");
        let i = b.new_var("i");
        let j = b.new_var("j");
        let outer_h = b.new_block();
        let inner_pre = b.new_block();
        let inner_h = b.new_block();
        let inner_body = b.new_block();
        let outer_latch = b.new_block();
        let exit = b.new_block();
        b.copy(i, Operand::Const(0));
        b.jump(outer_h);
        b.switch_to(outer_h);
        b.branch(
            CmpOp::Lt,
            Operand::Var(i),
            Operand::Const(10),
            inner_pre,
            exit,
        );
        b.switch_to(inner_pre);
        b.copy(j, Operand::Const(0));
        b.jump(inner_h);
        b.switch_to(inner_h);
        b.branch(
            CmpOp::Lt,
            Operand::Var(j),
            Operand::Const(5),
            inner_body,
            outer_latch,
        );
        b.switch_to(inner_body);
        b.add(j, Operand::Var(j), Operand::Const(1));
        b.jump(inner_h);
        b.switch_to(outer_latch);
        b.add(i, Operand::Var(i), Operand::Const(1));
        b.jump(outer_h);
        b.switch_to(exit);
        b.ret();
        (b.finish(), outer_h, inner_h)
    }

    #[test]
    fn detects_nested_loops() {
        let (f, outer_h, inner_h) = nested();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.len(), 2);
        let outer = forest
            .iter()
            .find(|(_, d)| d.header == outer_h)
            .map(|(l, _)| l)
            .unwrap();
        let inner = forest
            .iter()
            .find(|(_, d)| d.header == inner_h)
            .map(|(l, _)| l)
            .unwrap();
        assert_eq!(forest.data(inner).parent, Some(outer));
        assert_eq!(forest.data(outer).depth, 1);
        assert_eq!(forest.data(inner).depth, 2);
        assert!(forest.data(outer).blocks.contains(&inner_h));
    }

    #[test]
    fn inner_to_outer_order() {
        let (f, outer_h, inner_h) = nested();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let order = forest.inner_to_outer();
        assert_eq!(order.len(), 2);
        assert_eq!(forest.data(order[0]).header, inner_h);
        assert_eq!(forest.data(order[1]).header, outer_h);
    }

    #[test]
    fn innermost_lookup() {
        let (f, _, inner_h) = nested();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let il = forest.innermost(inner_h).unwrap();
        assert_eq!(forest.data(il).header, inner_h);
    }

    #[test]
    fn exit_edges_found() {
        let (f, outer_h, _) = nested();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let outer = forest
            .iter()
            .find(|(_, d)| d.header == outer_h)
            .map(|(l, _)| l)
            .unwrap();
        let exits = forest.exit_edges(&f, outer);
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].0, outer_h);
    }

    #[test]
    fn simplify_inserts_preheader() {
        // Build a loop whose header has two outside predecessors.
        let mut b = FunctionBuilder::new("messy");
        let x = b.new_var("x");
        let header = b.new_block();
        let alt = b.new_block();
        let exit = b.new_block();
        b.branch(CmpOp::Lt, Operand::Var(x), Operand::Const(0), header, alt);
        b.switch_to(alt);
        b.jump(header);
        b.switch_to(header);
        b.add(x, Operand::Var(x), Operand::Const(1));
        b.branch(CmpOp::Lt, Operand::Var(x), Operand::Const(9), header, exit);
        b.switch_to(exit);
        b.ret();
        let mut f = b.finish();
        assert!(loop_simplify(&mut f));
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.len(), 1);
        let (l, _) = forest.iter().next().unwrap();
        assert!(forest.preheader(&f, l).is_some());
        assert!(forest.single_latch(l).is_some());
    }

    #[test]
    fn simplify_merges_latches() {
        // Loop with two back edges.
        let mut b = FunctionBuilder::new("twolatch");
        let x = b.new_var("x");
        let header = b.new_block();
        let l1 = b.new_block();
        let l2 = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.branch(CmpOp::Lt, Operand::Var(x), Operand::Const(5), l1, l2);
        b.switch_to(l1);
        b.add(x, Operand::Var(x), Operand::Const(1));
        b.jump(header);
        b.switch_to(l2);
        b.add(x, Operand::Var(x), Operand::Const(2));
        b.branch(
            CmpOp::Lt,
            Operand::Var(x),
            Operand::Const(100),
            header,
            exit,
        );
        b.switch_to(exit);
        b.ret();
        let mut f = b.finish();
        assert!(loop_simplify(&mut f));
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.len(), 1);
        let (l, _) = forest.iter().next().unwrap();
        assert!(forest.single_latch(l).is_some(), "latches merged");
        assert!(forest.preheader(&f, l).is_some());
    }

    #[test]
    fn no_loops_in_straight_line() {
        let mut b = FunctionBuilder::new("s");
        let x = b.new_var("x");
        b.copy(x, Operand::Const(1));
        b.ret();
        let f = b.finish();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert!(forest.is_empty());
    }
}
