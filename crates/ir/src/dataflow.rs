//! An iterative bit-vector dataflow framework with the two classical
//! problems the rest of the system needs: **reaching definitions** (used by
//! the classical induction-variable baseline) and **live variables** (used
//! for pruned SSA construction).
//!
//! All per-block state is stored in dense block-indexed vectors — no
//! hashing on the fixpoint path.

use crate::cfg::Cfg;
use crate::entity::{EntityId, EntityMap};
use crate::function::{Block, Function, Var};

/// A fixed-width bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set over a universe of `len` elements.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of elements in the universe.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts `idx`. Returns `true` if newly inserted.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index out of range");
        let (w, b) = (idx / 64, idx % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn remove(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index out of range");
        self.words[idx / 64] &= !(1 << (idx % 64));
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn contains(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index out of range");
        self.words[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// `self |= other`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            if new != *a {
                changed = true;
                *a = new;
            }
        }
        changed
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterates over set members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// A definition site: block plus instruction index within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DefSite {
    /// Containing block.
    pub block: Block,
    /// Index of the defining instruction in the block.
    pub inst: usize,
    /// The variable defined.
    pub var: Var,
}

/// Reaching-definitions analysis results.
#[derive(Debug)]
pub struct ReachingDefs {
    /// All definition sites, indexed by their bit position.
    pub defs: Vec<DefSite>,
    /// Reaching set at block entry, indexed by block. Unreachable blocks
    /// keep empty sets.
    pub live_in: Vec<BitSet>,
    /// Reaching set at block exit, indexed by block.
    pub live_out: Vec<BitSet>,
    /// Definition bits per variable.
    pub defs_of_var: EntityMap<Var, Vec<usize>>,
}

impl ReachingDefs {
    /// Runs the classical forward may-analysis.
    pub fn compute(func: &Function) -> ReachingDefs {
        // Enumerate definition sites.
        let mut defs = Vec::new();
        let mut defs_of_var: EntityMap<Var, Vec<usize>> = EntityMap::new();
        for (b, data) in func.blocks.iter() {
            for (i, inst) in data.insts.iter().enumerate() {
                if let Some(var) = inst.def() {
                    let bit = defs.len();
                    defs.push(DefSite {
                        block: b,
                        inst: i,
                        var,
                    });
                    defs_of_var.get_or_insert_with(var, Vec::new).push(bit);
                }
            }
        }
        let n = defs.len();
        let nblocks = func.blocks.len();
        // GEN/KILL per block.
        let mut gen: Vec<BitSet> = Vec::with_capacity(nblocks);
        let mut kill: Vec<BitSet> = Vec::with_capacity(nblocks);
        for (b, data) in func.blocks.iter() {
            let mut g = BitSet::new(n);
            let mut k = BitSet::new(n);
            // Walk forward; later defs of the same var kill earlier ones.
            for (i, inst) in data.insts.iter().enumerate() {
                if let Some(var) = inst.def() {
                    for &bit in &defs_of_var[var] {
                        if defs[bit].block != b || defs[bit].inst != i {
                            k.insert(bit);
                        }
                        if defs[bit].block == b && defs[bit].inst == i {
                            g.insert(bit);
                        }
                    }
                    // A later def in the same block kills this one from GEN.
                    for &bit in &defs_of_var[var] {
                        if defs[bit].block == b && defs[bit].inst < i {
                            g.remove(bit);
                        }
                    }
                }
            }
            gen.push(g);
            kill.push(k);
        }
        // Iterate to fixpoint in RPO.
        let rpo = func.reverse_postorder();
        let cfg = Cfg::compute(func);
        let mut rin: Vec<BitSet> = (0..nblocks).map(|_| BitSet::new(n)).collect();
        let mut rout: Vec<BitSet> = (0..nblocks).map(|_| BitSet::new(n)).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let bi = b.index();
                let mut input = BitSet::new(n);
                for p in cfg.preds(b) {
                    input.union_with(&rout[p.index()]);
                }
                let mut out = input.clone();
                out.subtract(&kill[bi]);
                out.union_with(&gen[bi]);
                if rin[bi] != input {
                    rin[bi] = input;
                }
                if rout[bi] != out {
                    rout[bi] = out;
                    changed = true;
                }
            }
        }
        ReachingDefs {
            defs,
            live_in: rin,
            live_out: rout,
            defs_of_var,
        }
    }

    /// The definitions of `var` that reach the entry of `block`.
    pub fn reaching_defs_of(&self, block: Block, var: Var) -> Vec<DefSite> {
        let Some(set) = self.live_in.get(block.index()) else {
            return Vec::new();
        };
        self.defs_of_var
            .get(var)
            .map(|bits| {
                bits.iter()
                    .filter(|&&b| set.contains(b))
                    .map(|&b| self.defs[b])
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Live-variables analysis results (backward may-analysis).
#[derive(Debug)]
pub struct Liveness {
    /// Variables live at block entry, indexed by block. Unreachable
    /// blocks keep empty sets.
    pub live_in: Vec<BitSet>,
    /// Variables live at block exit, indexed by block.
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// Runs the classical backward liveness analysis over scalar variables.
    pub fn compute(func: &Function) -> Liveness {
        let n = func.vars.len();
        let nblocks = func.blocks.len();
        // USE/DEF per block (USE = used before any def in the block).
        let mut use_set: Vec<BitSet> = Vec::with_capacity(nblocks);
        let mut def_set: Vec<BitSet> = Vec::with_capacity(nblocks);
        let mut scratch = Vec::new();
        for (_, data) in func.blocks.iter() {
            let mut u = BitSet::new(n);
            let mut d = BitSet::new(n);
            for inst in &data.insts {
                scratch.clear();
                inst.uses(&mut scratch);
                for &v in &scratch {
                    if !d.contains(v.index()) {
                        u.insert(v.index());
                    }
                }
                if let Some(v) = inst.def() {
                    d.insert(v.index());
                }
            }
            scratch.clear();
            data.term.uses(&mut scratch);
            for &v in &scratch {
                if !d.contains(v.index()) {
                    u.insert(v.index());
                }
            }
            use_set.push(u);
            def_set.push(d);
        }
        let po = func.postorder();
        let mut lin: Vec<BitSet> = (0..nblocks).map(|_| BitSet::new(n)).collect();
        let mut lout: Vec<BitSet> = (0..nblocks).map(|_| BitSet::new(n)).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &po {
                let bi = b.index();
                let mut out = BitSet::new(n);
                for s in func.successors(b) {
                    out.union_with(&lin[s.index()]);
                }
                let mut input = out.clone();
                input.subtract(&def_set[bi]);
                input.union_with(&use_set[bi]);
                if lout[bi] != out {
                    lout[bi] = out;
                }
                if lin[bi] != input {
                    lin[bi] = input;
                    changed = true;
                }
            }
        }
        Liveness {
            live_in: lin,
            live_out: lout,
        }
    }

    /// Whether `var` is live at the entry of `block`.
    pub fn live_at_entry(&self, block: Block, var: Var) -> bool {
        self.live_in
            .get(block.index())
            .map(|s| s.contains(var.index()))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        s.remove(0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn bitset_union_subtract() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        b.insert(2);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        a.subtract(&b);
        assert!(a.contains(1));
        assert!(!a.contains(2));
    }

    #[test]
    fn reaching_defs_in_loop() {
        // i has a def before the loop and one inside; both reach the
        // header.
        let program =
            parse_program("func f(n) { i = 0 L1: loop { i = i + 1 if i > n { break } } }").unwrap();
        let f = &program.functions[0];
        let rd = ReachingDefs::compute(f);
        let header = f.block_by_label("L1").unwrap();
        let i = f.var_by_name("i").unwrap();
        let reaching = rd.reaching_defs_of(header, i);
        assert_eq!(reaching.len(), 2, "init def + loop def");
    }

    #[test]
    fn liveness_through_loop() {
        let program =
            parse_program("func f(n) { i = 0 L1: loop { i = i + 1 if i > n { break } } x = i }")
                .unwrap();
        let f = &program.functions[0];
        let live = Liveness::compute(f);
        let header = f.block_by_label("L1").unwrap();
        let i = f.var_by_name("i").unwrap();
        let n = f.var_by_name("n").unwrap();
        assert!(live.live_at_entry(header, i));
        assert!(live.live_at_entry(header, n));
    }

    #[test]
    fn dead_variable_not_live() {
        let program = parse_program("func f() { x = 1 y = 2 }").unwrap();
        let f = &program.functions[0];
        let live = Liveness::compute(f);
        let x = f.var_by_name("x").unwrap();
        assert!(!live.live_at_entry(f.entry(), x));
    }
}
