//! Dominator and postdominator trees, and dominance frontiers.
//!
//! Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple,
//! Fast Dominance Algorithm"), which is near-linear in practice and
//! produces exactly the structures SSA construction needs: immediate
//! dominators and dominance frontiers.

use std::collections::HashMap;

use crate::entity::EntityId;
use crate::function::{Block, Function};

/// The dominator tree of a function's CFG.
///
/// ```
/// use biv_ir::dom::DomTree;
/// use biv_ir::parser::parse_program;
///
/// let program = parse_program("func f(n) { L1: for i = 1 to n { x = i } }")?;
/// let func = &program.functions[0];
/// let dom = DomTree::compute(func);
/// let header = func.block_by_label("L1").unwrap();
/// assert!(dom.dominates(func.entry(), header));
/// # Ok::<(), biv_ir::parser::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` — immediate dominator; the entry maps to itself.
    idom: HashMap<Block, Block>,
    /// Reverse postorder used for iteration and ordering queries.
    rpo: Vec<Block>,
    /// Position of each block in `rpo`.
    rpo_index: HashMap<Block, usize>,
    /// Dominator-tree children, precomputed.
    children: HashMap<Block, Vec<Block>>,
    entry: Block,
}

impl DomTree {
    /// Computes the dominator tree of `func` (forward CFG).
    pub fn compute(func: &Function) -> DomTree {
        let rpo = func.reverse_postorder();
        let preds = func.predecessors();
        Self::compute_generic(func.entry(), &rpo, |b| {
            preds.get(&b).cloned().unwrap_or_default()
        })
    }

    /// Core CHK iteration over an arbitrary edge function — shared with
    /// [`PostDomTree`].
    fn compute_generic<F>(entry: Block, rpo: &[Block], preds_of: F) -> DomTree
    where
        F: Fn(Block) -> Vec<Block>,
    {
        let mut rpo_index = HashMap::with_capacity(rpo.len());
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index.insert(b, i);
        }
        let mut idom: HashMap<Block, Block> = HashMap::with_capacity(rpo.len());
        idom.insert(entry, entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<Block> = None;
                for p in preds_of(b) {
                    if !rpo_index.contains_key(&p) {
                        continue; // unreachable predecessor
                    }
                    if idom.contains_key(&p) {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => Self::intersect(&idom, &rpo_index, p, cur),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        let mut children: HashMap<Block, Vec<Block>> = HashMap::new();
        for (&b, &d) in &idom {
            if b != d {
                children.entry(d).or_default().push(b);
            }
        }
        for kids in children.values_mut() {
            kids.sort_by_key(|b| b.index());
        }
        DomTree {
            idom,
            rpo: rpo.to_vec(),
            rpo_index,
            children,
            entry,
        }
    }

    fn intersect(
        idom: &HashMap<Block, Block>,
        rpo_index: &HashMap<Block, usize>,
        mut a: Block,
        mut b: Block,
    ) -> Block {
        while a != b {
            while rpo_index[&a] > rpo_index[&b] {
                a = idom[&a];
            }
            while rpo_index[&b] > rpo_index[&a] {
                b = idom[&b];
            }
        }
        a
    }

    /// The root of the tree (the CFG entry).
    pub fn root(&self) -> Block {
        self.entry
    }

    /// The immediate dominator of `block`; `None` for the entry or for
    /// unreachable blocks.
    pub fn idom(&self, block: Block) -> Option<Block> {
        if block == self.entry {
            return None;
        }
        self.idom.get(&block).copied()
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: Block, b: Block) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: Block, b: Block) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: Block) -> bool {
        block == self.entry || self.idom.contains_key(&block)
    }

    /// Blocks in reverse postorder.
    pub fn reverse_postorder(&self) -> &[Block] {
        &self.rpo
    }

    /// The position of `block` in reverse postorder, when reachable.
    pub fn rpo_position(&self, block: Block) -> Option<usize> {
        self.rpo_index.get(&block).copied()
    }

    /// Children of `block` in the dominator tree. Constant time (the
    /// adjacency is precomputed).
    pub fn children(&self, block: Block) -> Vec<Block> {
        self.children.get(&block).cloned().unwrap_or_default()
    }

    /// Computes the dominance frontier of every reachable block
    /// (Cytron et al.'s definition, via the CHK two-finger method).
    pub fn dominance_frontiers(&self, func: &Function) -> HashMap<Block, Vec<Block>> {
        let preds = func.predecessors();
        let mut df: HashMap<Block, Vec<Block>> = HashMap::new();
        for &b in &self.rpo {
            let bpreds = match preds.get(&b) {
                Some(p) if p.len() >= 2 => p,
                _ => continue,
            };
            let Some(b_idom) = self.idom(b) else {
                continue;
            };
            for &p in bpreds {
                if !self.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != b_idom {
                    let entry = df.entry(runner).or_default();
                    if !entry.contains(&b) {
                        entry.push(b);
                    }
                    match self.idom(runner) {
                        Some(next) if next != runner => runner = next,
                        _ => break,
                    }
                }
            }
        }
        df
    }
}

/// The postdominator tree (dominators of the reversed CFG).
///
/// Functions may have several `Return` blocks; they are all treated as
/// predecessors of a virtual exit, which becomes the tree root.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    /// `ipdom[b]` — immediate postdominator; blocks postdominated only by
    /// the virtual exit map to `None`.
    ipdom: HashMap<Block, Option<Block>>,
}

impl PostDomTree {
    /// Computes the postdominator tree of `func`.
    pub fn compute(func: &Function) -> PostDomTree {
        // Reverse CFG: successors become predecessors. We run a reverse
        // DFS from all return blocks to get a reverse-graph RPO.
        let returns: Vec<Block> = func
            .blocks
            .iter()
            .filter(|(_, d)| d.term.successors().is_empty())
            .map(|(b, _)| b)
            .collect();
        let preds = func.predecessors();
        // Postorder over the reversed graph starting from each return.
        let mut visited = vec![false; func.blocks.len()];
        let mut post = Vec::new();
        for &ret in &returns {
            if visited[ret.index()] {
                continue;
            }
            visited[ret.index()] = true;
            let mut stack: Vec<(Block, usize)> = vec![(ret, 0)];
            while let Some((block, idx)) = stack.pop() {
                let ps = preds.get(&block).cloned().unwrap_or_default();
                if idx < ps.len() {
                    stack.push((block, idx + 1));
                    let next = ps[idx];
                    if !visited[next.index()] {
                        visited[next.index()] = true;
                        stack.push((next, 0));
                    }
                } else {
                    post.push(block);
                }
            }
        }
        post.reverse(); // reverse postorder of the reversed graph

        // Iterate CHK with an explicit virtual exit: `None` in the idom
        // map denotes it. Every return block's immediate postdominator is
        // the virtual exit.
        let mut rpo_index: HashMap<Block, usize> = HashMap::new();
        for (i, &b) in post.iter().enumerate() {
            rpo_index.insert(b, i);
        }
        // `idom[b] = None` means the virtual exit; absent means unknown.
        let mut idom: HashMap<Block, Option<Block>> = HashMap::new();
        for &r in &returns {
            idom.insert(r, None);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &post {
                if returns.contains(&b) {
                    continue;
                }
                let succs = func.successors(b);
                let mut new_idom: Option<Option<Block>> = None;
                for s in succs {
                    if !rpo_index.contains_key(&s) || !idom.contains_key(&s) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => Some(s),
                        Some(cur) => Self::intersect(&idom, &rpo_index, Some(s), cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        PostDomTree { ipdom: idom }
    }

    /// Two-finger intersection where `None` denotes the virtual exit (the
    /// root of the postdominator tree): once either side walks past a
    /// return, the meet is the virtual exit.
    fn intersect(
        idom: &HashMap<Block, Option<Block>>,
        rpo_index: &HashMap<Block, usize>,
        mut a: Option<Block>,
        mut b: Option<Block>,
    ) -> Option<Block> {
        loop {
            let (x, y) = match (a, b) {
                (None, _) | (_, None) => return None,
                (Some(x), Some(y)) => (x, y),
            };
            if x == y {
                return Some(x);
            }
            if rpo_index[&x] > rpo_index[&y] {
                a = idom[&x];
            } else {
                b = idom[&y];
            }
        }
    }

    /// The immediate postdominator of `block`, or `None` when it is only
    /// postdominated by the virtual exit.
    pub fn ipdom(&self, block: Block) -> Option<Block> {
        self.ipdom.get(&block).copied().flatten()
    }

    /// Whether `a` postdominates `b` (reflexively).
    pub fn postdominates(&self, a: Block, b: Block) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::{CmpOp, Operand};

    /// entry -> header; header -> (body, exit); body -> header.
    fn simple_loop() -> (Function, Block, Block, Block) {
        let mut b = FunctionBuilder::new("loop");
        let i = b.new_var("i");
        b.copy(i, Operand::Const(0));
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.branch(CmpOp::Lt, Operand::Var(i), Operand::Const(10), body, exit);
        b.switch_to(body);
        b.add(i, Operand::Var(i), Operand::Const(1));
        b.jump(header);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        (f, header, body, exit)
    }

    fn diamond() -> (Function, Block, Block, Block) {
        let mut b = FunctionBuilder::new("diamond");
        let x = b.new_var("x");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(CmpOp::Lt, Operand::Var(x), Operand::Const(0), t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret();
        (b.finish(), t, e, j)
    }

    #[test]
    fn loop_dominators() {
        let (f, header, body, exit) = simple_loop();
        let dom = DomTree::compute(&f);
        assert_eq!(dom.idom(header), Some(f.entry()));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(header, body));
        assert!(dom.dominates(header, exit));
        assert!(!dom.dominates(body, exit));
        assert!(dom.strictly_dominates(f.entry(), header));
        assert!(!dom.strictly_dominates(header, header));
    }

    #[test]
    fn diamond_dominators_and_frontier() {
        let (f, t, e, j) = diamond();
        let dom = DomTree::compute(&f);
        assert_eq!(dom.idom(j), Some(f.entry()));
        assert_eq!(dom.idom(t), Some(f.entry()));
        let df = dom.dominance_frontiers(&f);
        assert_eq!(df[&t], vec![j]);
        assert_eq!(df[&e], vec![j]);
        assert!(!df.contains_key(&j));
    }

    #[test]
    fn loop_header_in_own_frontier() {
        let (f, header, body, _) = simple_loop();
        let dom = DomTree::compute(&f);
        let df = dom.dominance_frontiers(&f);
        // The body's frontier contains the header (back edge), and the
        // header's own frontier contains itself.
        assert!(df[&body].contains(&header));
        assert!(df[&header].contains(&header));
    }

    #[test]
    fn dom_children() {
        let (f, header, body, exit) = simple_loop();
        let dom = DomTree::compute(&f);
        let kids = dom.children(header);
        assert!(kids.contains(&body));
        assert!(kids.contains(&exit));
    }

    #[test]
    fn postdominators_diamond() {
        let (f, t, e, j) = diamond();
        let pdom = PostDomTree::compute(&f);
        assert_eq!(pdom.ipdom(t), Some(j));
        assert_eq!(pdom.ipdom(e), Some(j));
        assert_eq!(pdom.ipdom(f.entry()), Some(j));
        assert!(pdom.postdominates(j, f.entry()));
        assert!(!pdom.postdominates(t, f.entry()));
    }

    #[test]
    fn postdominators_loop() {
        let (f, header, body, exit) = simple_loop();
        let pdom = PostDomTree::compute(&f);
        assert!(pdom.postdominates(exit, f.entry()));
        assert!(pdom.postdominates(header, body));
        assert_eq!(pdom.ipdom(body), Some(header));
    }

    #[test]
    fn unreachable_block_not_reachable() {
        let (mut f, _, _, _) = simple_loop();
        let orphan = f.new_block();
        let dom = DomTree::compute(&f);
        assert!(!dom.is_reachable(orphan));
        assert_eq!(dom.idom(orphan), None);
    }
}
