//! Dominator and postdominator trees, and dominance frontiers.
//!
//! Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple,
//! Fast Dominance Algorithm"), which is near-linear in practice and
//! produces exactly the structures SSA construction needs: immediate
//! dominators and dominance frontiers.
//!
//! All state is flat and block-indexed: immediate dominators, reverse
//! postorder positions, dominator-tree children, and dominance frontiers
//! each live in one dense array (children and frontiers CSR-packed), so
//! queries never hash and construction allocates a bounded handful of
//! pools.

use crate::cfg::Cfg;
use crate::entity::EntityId;
use crate::function::{Block, Function};

/// Sentinel for "no value" in block-indexed `u32` tables.
const NONE: u32 = u32::MAX;
/// Sentinel for the virtual exit in the postdominator table.
const VIRTUAL_EXIT: u32 = u32::MAX - 1;

/// The dominator tree of a function's CFG.
///
/// ```
/// use biv_ir::dom::DomTree;
/// use biv_ir::parser::parse_program;
///
/// let program = parse_program("func f(n) { L1: for i = 1 to n { x = i } }")?;
/// let func = &program.functions[0];
/// let dom = DomTree::compute(func);
/// let header = func.block_by_label("L1").unwrap();
/// assert!(dom.dominates(func.entry(), header));
/// # Ok::<(), biv_ir::parser::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator by block index; the entry maps to itself and
    /// unreachable blocks to `NONE`.
    idom: Vec<u32>,
    /// Reverse postorder used for iteration and ordering queries.
    rpo: Vec<Block>,
    /// Position of each block in `rpo` (`NONE` when unreachable).
    rpo_pos: Vec<u32>,
    /// Dominator-tree children, CSR-packed by parent block index and
    /// sorted by child block index within each parent.
    child_off: Vec<u32>,
    child_data: Vec<Block>,
    entry: Block,
}

impl DomTree {
    /// Computes the dominator tree of `func` (forward CFG).
    pub fn compute(func: &Function) -> DomTree {
        let cfg = Cfg::compute(func);
        Self::compute_with(func, &cfg)
    }

    /// Computes the dominator tree reusing an existing [`Cfg`].
    pub fn compute_with(func: &Function, cfg: &Cfg) -> DomTree {
        let n = func.blocks.len();
        let rpo = func.reverse_postorder();
        let mut rpo_pos = vec![NONE; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i as u32;
        }
        // CHK iteration in reverse-postorder position space: `doms[i]` is
        // the rpo position of the immediate dominator of `rpo[i]`.
        let mut doms = vec![NONE; rpo.len()];
        if !rpo.is_empty() {
            doms[0] = 0;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for i in 1..rpo.len() {
                let mut new_idom = NONE;
                for &p in cfg.preds(rpo[i]) {
                    let pp = rpo_pos[p.index()];
                    if pp == NONE || doms[pp as usize] == NONE {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = if new_idom == NONE {
                        pp
                    } else {
                        Self::intersect(&doms, pp, new_idom)
                    };
                }
                if new_idom != NONE && doms[i] != new_idom {
                    doms[i] = new_idom;
                    changed = true;
                }
            }
        }
        // Translate to block-index space.
        let mut idom = vec![NONE; n];
        for (i, &b) in rpo.iter().enumerate() {
            if doms[i] != NONE {
                idom[b.index()] = rpo[doms[i] as usize].index() as u32;
            }
        }
        // Children CSR: counting sort by parent. Iterating blocks in
        // ascending index order keeps each child list sorted by index.
        let mut child_off = vec![0u32; n + 1];
        for (b, &d) in idom.iter().enumerate() {
            if d != NONE && d as usize != b {
                child_off[d as usize + 1] += 1;
            }
        }
        for i in 0..n {
            child_off[i + 1] += child_off[i];
        }
        let mut child_data = vec![func.entry(); child_off[n] as usize];
        let mut cursor: Vec<u32> = child_off[..n].to_vec();
        for (b, &d) in idom.iter().enumerate() {
            if d != NONE && d as usize != b {
                let slot = &mut cursor[d as usize];
                child_data[*slot as usize] = Block::from_index(b);
                *slot += 1;
            }
        }
        DomTree {
            idom,
            rpo,
            rpo_pos,
            child_off,
            child_data,
            entry: func.entry(),
        }
    }

    /// Two-finger intersection in rpo-position space.
    fn intersect(doms: &[u32], mut a: u32, mut b: u32) -> u32 {
        while a != b {
            while a > b {
                a = doms[a as usize];
            }
            while b > a {
                b = doms[b as usize];
            }
        }
        a
    }

    /// The root of the tree (the CFG entry).
    pub fn root(&self) -> Block {
        self.entry
    }

    /// The immediate dominator of `block`; `None` for the entry or for
    /// unreachable blocks.
    pub fn idom(&self, block: Block) -> Option<Block> {
        if block == self.entry {
            return None;
        }
        match self.idom.get(block.index()).copied() {
            Some(d) if d != NONE => Some(Block::from_index(d as usize)),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: Block, b: Block) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom.get(cur.index()).copied() {
                Some(d) if d != NONE && d as usize != cur.index() => {
                    cur = Block::from_index(d as usize);
                }
                _ => return false, // entry (self-mapped) or unreachable
            }
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: Block, b: Block) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: Block) -> bool {
        matches!(self.rpo_pos.get(block.index()), Some(&p) if p != NONE)
    }

    /// Blocks in reverse postorder.
    pub fn reverse_postorder(&self) -> &[Block] {
        &self.rpo
    }

    /// The position of `block` in reverse postorder, when reachable.
    pub fn rpo_position(&self, block: Block) -> Option<usize> {
        match self.rpo_pos.get(block.index()).copied() {
            Some(p) if p != NONE => Some(p as usize),
            _ => None,
        }
    }

    /// Children of `block` in the dominator tree, sorted by block index.
    /// Constant time — a CSR slice into the precomputed adjacency.
    pub fn children(&self, block: Block) -> &[Block] {
        let i = block.index();
        if i + 1 >= self.child_off.len() {
            return &[];
        }
        &self.child_data[self.child_off[i] as usize..self.child_off[i + 1] as usize]
    }

    /// Computes the dominance frontier of every reachable block
    /// (Cytron et al.'s definition, via the CHK two-finger method).
    pub fn dominance_frontiers(&self, func: &Function) -> DomFrontiers {
        let cfg = Cfg::compute(func);
        self.dominance_frontiers_with(&cfg)
    }

    /// Computes all dominance frontiers in one batched pass over an
    /// existing [`Cfg`], CSR-packing the result.
    pub fn dominance_frontiers_with(&self, cfg: &Cfg) -> DomFrontiers {
        let n = cfg.num_blocks();
        let mut lists: Vec<Vec<Block>> = vec![Vec::new(); n];
        for &b in &self.rpo {
            let bpreds = cfg.preds(b);
            if bpreds.len() < 2 {
                continue;
            }
            let Some(b_idom) = self.idom(b) else {
                continue;
            };
            for &p in bpreds {
                if !self.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != b_idom {
                    let list = &mut lists[runner.index()];
                    if !list.contains(&b) {
                        list.push(b);
                    }
                    match self.idom(runner) {
                        Some(next) if next != runner => runner = next,
                        _ => break,
                    }
                }
            }
        }
        // Flatten into CSR, preserving each block's discovery order —
        // φ placement order (and with it SSA value numbering) depends on
        // it.
        let mut off = vec![0u32; n + 1];
        for (i, list) in lists.iter().enumerate() {
            off[i + 1] = off[i] + list.len() as u32;
        }
        let mut data = Vec::with_capacity(off[n] as usize);
        for list in &lists {
            data.extend_from_slice(list);
        }
        DomFrontiers { off, data }
    }
}

/// Dominance frontiers of every block, CSR-packed by block index.
#[derive(Debug, Clone)]
pub struct DomFrontiers {
    off: Vec<u32>,
    data: Vec<Block>,
}

impl DomFrontiers {
    /// The dominance frontier of `b`, in discovery order.
    pub fn frontier(&self, b: Block) -> &[Block] {
        let i = b.index();
        if i + 1 >= self.off.len() {
            return &[];
        }
        &self.data[self.off[i] as usize..self.off[i + 1] as usize]
    }
}

/// The postdominator tree (dominators of the reversed CFG).
///
/// Functions may have several `Return` blocks; they are all treated as
/// predecessors of a virtual exit, which becomes the tree root.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    /// Immediate postdominator by block index: `VIRTUAL_EXIT` for blocks
    /// postdominated only by the virtual exit, `NONE` when unknown.
    ipdom: Vec<u32>,
}

impl PostDomTree {
    /// Computes the postdominator tree of `func`.
    pub fn compute(func: &Function) -> PostDomTree {
        let n = func.blocks.len();
        let cfg = Cfg::compute(func);
        // Reverse CFG: successors become predecessors. We run a reverse
        // DFS from all return blocks to get a reverse-graph RPO.
        let returns: Vec<Block> = func
            .blocks
            .iter()
            .filter(|(_, d)| d.term.successors().is_empty())
            .map(|(b, _)| b)
            .collect();
        // Postorder over the reversed graph starting from each return.
        let mut visited = vec![false; n];
        let mut post = Vec::new();
        for &ret in &returns {
            if visited[ret.index()] {
                continue;
            }
            visited[ret.index()] = true;
            let mut stack: Vec<(Block, usize)> = vec![(ret, 0)];
            while let Some((block, idx)) = stack.pop() {
                let ps = cfg.preds(block);
                if idx < ps.len() {
                    stack.push((block, idx + 1));
                    let next = ps[idx];
                    if !visited[next.index()] {
                        visited[next.index()] = true;
                        stack.push((next, 0));
                    }
                } else {
                    post.push(block);
                }
            }
        }
        post.reverse(); // reverse postorder of the reversed graph

        // Iterate CHK with an explicit virtual exit, all state dense:
        // every return block's immediate postdominator is the virtual
        // exit.
        let mut rpo_pos = vec![NONE; n];
        for (i, &b) in post.iter().enumerate() {
            rpo_pos[b.index()] = i as u32;
        }
        let mut ipdom = vec![NONE; n];
        let mut is_return = vec![false; n];
        for &r in &returns {
            ipdom[r.index()] = VIRTUAL_EXIT;
            is_return[r.index()] = true;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &post {
                if is_return[b.index()] {
                    continue;
                }
                let mut new_idom = NONE;
                for s in func.successors(b) {
                    if rpo_pos[s.index()] == NONE || ipdom[s.index()] == NONE {
                        continue;
                    }
                    let s = s.index() as u32;
                    new_idom = if new_idom == NONE {
                        s
                    } else {
                        Self::intersect(&ipdom, &rpo_pos, s, new_idom)
                    };
                }
                if new_idom != NONE && ipdom[b.index()] != new_idom {
                    ipdom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        PostDomTree { ipdom }
    }

    /// Two-finger intersection where `VIRTUAL_EXIT` denotes the virtual
    /// exit (the root of the postdominator tree): once either side walks
    /// past a return, the meet is the virtual exit.
    fn intersect(ipdom: &[u32], rpo_pos: &[u32], mut a: u32, mut b: u32) -> u32 {
        loop {
            if a == VIRTUAL_EXIT || b == VIRTUAL_EXIT {
                return VIRTUAL_EXIT;
            }
            if a == b {
                return a;
            }
            if rpo_pos[a as usize] > rpo_pos[b as usize] {
                a = ipdom[a as usize];
            } else {
                b = ipdom[b as usize];
            }
        }
    }

    /// The immediate postdominator of `block`, or `None` when it is only
    /// postdominated by the virtual exit.
    pub fn ipdom(&self, block: Block) -> Option<Block> {
        match self.ipdom.get(block.index()).copied() {
            Some(d) if d != NONE && d != VIRTUAL_EXIT => Some(Block::from_index(d as usize)),
            _ => None,
        }
    }

    /// Whether `a` postdominates `b` (reflexively).
    pub fn postdominates(&self, a: Block, b: Block) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::{CmpOp, Operand};

    /// entry -> header; header -> (body, exit); body -> header.
    fn simple_loop() -> (Function, Block, Block, Block) {
        let mut b = FunctionBuilder::new("loop");
        let i = b.new_var("i");
        b.copy(i, Operand::Const(0));
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.branch(CmpOp::Lt, Operand::Var(i), Operand::Const(10), body, exit);
        b.switch_to(body);
        b.add(i, Operand::Var(i), Operand::Const(1));
        b.jump(header);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        (f, header, body, exit)
    }

    fn diamond() -> (Function, Block, Block, Block) {
        let mut b = FunctionBuilder::new("diamond");
        let x = b.new_var("x");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(CmpOp::Lt, Operand::Var(x), Operand::Const(0), t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret();
        (b.finish(), t, e, j)
    }

    #[test]
    fn loop_dominators() {
        let (f, header, body, exit) = simple_loop();
        let dom = DomTree::compute(&f);
        assert_eq!(dom.idom(header), Some(f.entry()));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(header, body));
        assert!(dom.dominates(header, exit));
        assert!(!dom.dominates(body, exit));
        assert!(dom.strictly_dominates(f.entry(), header));
        assert!(!dom.strictly_dominates(header, header));
    }

    #[test]
    fn diamond_dominators_and_frontier() {
        let (f, t, e, j) = diamond();
        let dom = DomTree::compute(&f);
        assert_eq!(dom.idom(j), Some(f.entry()));
        assert_eq!(dom.idom(t), Some(f.entry()));
        let df = dom.dominance_frontiers(&f);
        assert_eq!(df.frontier(t), &[j]);
        assert_eq!(df.frontier(e), &[j]);
        assert!(df.frontier(j).is_empty());
    }

    #[test]
    fn loop_header_in_own_frontier() {
        let (f, header, body, _) = simple_loop();
        let dom = DomTree::compute(&f);
        let df = dom.dominance_frontiers(&f);
        // The body's frontier contains the header (back edge), and the
        // header's own frontier contains itself.
        assert!(df.frontier(body).contains(&header));
        assert!(df.frontier(header).contains(&header));
    }

    #[test]
    fn dom_children() {
        let (f, header, body, exit) = simple_loop();
        let dom = DomTree::compute(&f);
        let kids = dom.children(header);
        assert!(kids.contains(&body));
        assert!(kids.contains(&exit));
    }

    #[test]
    fn postdominators_diamond() {
        let (f, t, e, j) = diamond();
        let pdom = PostDomTree::compute(&f);
        assert_eq!(pdom.ipdom(t), Some(j));
        assert_eq!(pdom.ipdom(e), Some(j));
        assert_eq!(pdom.ipdom(f.entry()), Some(j));
        assert!(pdom.postdominates(j, f.entry()));
        assert!(!pdom.postdominates(t, f.entry()));
    }

    #[test]
    fn postdominators_loop() {
        let (f, header, body, exit) = simple_loop();
        let pdom = PostDomTree::compute(&f);
        assert!(pdom.postdominates(exit, f.entry()));
        assert!(pdom.postdominates(header, body));
        assert_eq!(pdom.ipdom(body), Some(header));
    }

    #[test]
    fn unreachable_block_not_reachable() {
        let (mut f, _, _, _) = simple_loop();
        let orphan = f.new_block();
        let dom = DomTree::compute(&f);
        assert!(!dom.is_reachable(orphan));
        assert_eq!(dom.idom(orphan), None);
    }
}
