//! A convenience builder for constructing CFG functions programmatically.
//!
//! The parser covers most needs; the builder exists for generated
//! workloads and for tests that want precise control over block shape.

use crate::function::{Array, BinOp, Block, CmpOp, Function, Inst, Operand, Terminator, Var};

/// Incrementally builds a [`Function`].
///
/// The builder keeps a *current block*; instruction-emitting methods append
/// to it, and terminator-emitting methods seal it and move on.
///
/// # Example
///
/// ```
/// use biv_ir::builder::FunctionBuilder;
/// use biv_ir::{CmpOp, Operand};
///
/// let mut b = FunctionBuilder::new("count");
/// let i = b.new_var("i");
/// b.copy(i, 0.into());
/// let header = b.new_block();
/// b.jump(header);
/// b.switch_to(header);
/// b.add(i, i.into(), 1.into());
/// let exit = b.new_block();
/// b.branch(CmpOp::Lt, i.into(), 10.into(), header, exit);
/// b.switch_to(exit);
/// b.ret();
/// let f = b.finish();
/// assert_eq!(f.blocks.len(), 3);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: Block,
}

impl FunctionBuilder {
    /// Starts a new function positioned at its entry block.
    pub fn new(name: impl Into<String>) -> FunctionBuilder {
        let func = Function::new(name);
        let current = func.entry();
        FunctionBuilder { func, current }
    }

    /// Declares a scalar variable.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        self.func.new_var(name)
    }

    /// Declares a parameter (symbolic loop-entry value).
    pub fn new_param(&mut self, name: impl Into<String>) -> Var {
        self.func.new_param(name)
    }

    /// Declares an array.
    pub fn new_array(&mut self, name: impl Into<String>, dims: usize) -> Array {
        self.func.new_array(name, dims)
    }

    /// Creates a new (unsealed) block without switching to it.
    pub fn new_block(&mut self) -> Block {
        self.func.new_block()
    }

    /// Creates a new labeled block without switching to it.
    pub fn new_labeled_block(&mut self, label: impl Into<String>) -> Block {
        self.func.new_labeled_block(label)
    }

    /// Moves the insertion point.
    pub fn switch_to(&mut self, block: Block) {
        self.current = block;
    }

    /// The current insertion block.
    pub fn current(&self) -> Block {
        self.current
    }

    /// Emits `dst = src`.
    pub fn copy(&mut self, dst: Var, src: Operand) {
        self.push(Inst::Copy { dst, src });
    }

    /// Emits `dst = -src`.
    pub fn neg(&mut self, dst: Var, src: Operand) {
        self.push(Inst::Neg { dst, src });
    }

    /// Emits `dst = lhs op rhs`.
    pub fn binary(&mut self, op: BinOp, dst: Var, lhs: Operand, rhs: Operand) {
        self.push(Inst::Binary { dst, op, lhs, rhs });
    }

    /// Emits `dst = lhs + rhs`.
    pub fn add(&mut self, dst: Var, lhs: Operand, rhs: Operand) {
        self.binary(BinOp::Add, dst, lhs, rhs);
    }

    /// Emits `dst = lhs - rhs`.
    pub fn sub(&mut self, dst: Var, lhs: Operand, rhs: Operand) {
        self.binary(BinOp::Sub, dst, lhs, rhs);
    }

    /// Emits `dst = lhs * rhs`.
    pub fn mul(&mut self, dst: Var, lhs: Operand, rhs: Operand) {
        self.binary(BinOp::Mul, dst, lhs, rhs);
    }

    /// Emits `dst = array[index…]`.
    pub fn load(&mut self, dst: Var, array: Array, index: Vec<Operand>) {
        self.push(Inst::Load {
            dst,
            array,
            index: index.into(),
        });
    }

    /// Emits `array[index…] = value`.
    pub fn store(&mut self, array: Array, index: Vec<Operand>, value: Operand) {
        self.push(Inst::Store {
            array,
            index: index.into(),
            value,
        });
    }

    /// Seals the current block with an unconditional jump.
    pub fn jump(&mut self, target: Block) {
        self.func.blocks[self.current].term = Terminator::Jump(target);
    }

    /// Seals the current block with a conditional branch.
    pub fn branch(
        &mut self,
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
        then_bb: Block,
        else_bb: Block,
    ) {
        self.func.blocks[self.current].term = Terminator::Branch {
            op,
            lhs,
            rhs,
            then_bb,
            else_bb,
        };
    }

    /// Seals the current block with a return.
    pub fn ret(&mut self) {
        self.func.blocks[self.current].term = Terminator::Return;
    }

    /// Finishes construction and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }

    fn push(&mut self, inst: Inst) {
        self.func.blocks[self.current].insts.push(inst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_counting_loop() {
        let mut b = FunctionBuilder::new("count");
        let i = b.new_var("i");
        b.copy(i, Operand::Const(0));
        let header = b.new_labeled_block("L1");
        b.jump(header);
        b.switch_to(header);
        b.add(i, Operand::Var(i), Operand::Const(1));
        let exit = b.new_block();
        b.branch(CmpOp::Lt, Operand::Var(i), Operand::Const(10), header, exit);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.block_by_label("L1"), Some(header));
        assert_eq!(f.successors(header).as_slice(), &[header, exit]);
    }

    #[test]
    fn params_are_recorded() {
        let mut b = FunctionBuilder::new("p");
        let n = b.new_param("n");
        b.ret();
        let f = b.finish();
        assert_eq!(f.params(), &[n]);
        assert!(f.vars[n].is_param);
    }
}
