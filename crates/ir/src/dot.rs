//! Graphviz DOT export for CFGs — handy when inspecting how loops and
//! dominators interact on a nontrivial function.

use std::fmt::Write as _;

use crate::function::Function;
use crate::print::{inst_to_string, term_to_string};

/// Renders the CFG as a Graphviz digraph. Blocks show their label (when
/// any), instructions, and terminator; edges follow the terminators.
pub fn cfg_to_dot(func: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", func.name());
    let _ = writeln!(out, "    node [shape=box, fontname=\"monospace\"];");
    for (b, data) in func.blocks.iter() {
        let mut label = match &data.label {
            Some(l) => format!("{b} ({l})\\l"),
            None => format!("{b}\\l"),
        };
        for inst in &data.insts {
            let _ = write!(label, "{}\\l", escape(&inst_to_string(func, inst)));
        }
        let _ = write!(label, "{}\\l", escape(&term_to_string(func, &data.term)));
        let _ = writeln!(out, "    \"{b}\" [label=\"{label}\"];");
        for succ in data.term.successors() {
            let _ = writeln!(out, "    \"{b}\" -> \"{succ}\";");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn dot_contains_blocks_and_edges() {
        let program = parse_program("func f(n) { L1: for i = 1 to n { A[i] = i } }").unwrap();
        let dot = cfg_to_dot(&program.functions[0]);
        assert!(dot.starts_with("digraph \"f\""), "{dot}");
        assert!(dot.contains("(L1)"), "{dot}");
        assert!(dot.contains("->"), "{dot}");
        assert!(dot.contains("i = i + 1"), "{dot}");
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
