//! Typed entity identifiers and arenas.
//!
//! Every IR object (block, variable, array, loop, SSA value, …) is referred
//! to by a small typed index into an [`Arena`]. The newtype indices keep
//! the different namespaces from being confused at compile time.

use std::fmt;
use std::marker::PhantomData;

/// A typed index into an [`Arena`].
///
/// Implemented by the ID newtypes generated with the `entity_id!` macro.
pub trait EntityId: Copy + Eq + std::hash::Hash + fmt::Debug {
    /// Creates an ID from a raw index.
    fn from_index(index: usize) -> Self;
    /// The raw index.
    fn index(self) -> usize;
}

/// Declares an entity ID newtype with a display prefix.
#[macro_export]
macro_rules! entity_id {
    ($(#[$meta:meta])* $vis:vis struct $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis struct $name(u32);

        impl $crate::EntityId for $name {
            fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("entity index overflow"))
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

/// A growable store of `T` addressed by a typed ID.
#[derive(Clone, PartialEq, Eq)]
pub struct Arena<I, T> {
    items: Vec<T>,
    _marker: PhantomData<I>,
}

impl<I: EntityId, T> Arena<I, T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            items: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Adds an item, returning its ID.
    pub fn push(&mut self, item: T) -> I {
        let id = I::from_index(self.items.len());
        self.items.push(item);
        id
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `id` is a valid index into this arena.
    pub fn contains(&self, id: I) -> bool {
        id.index() < self.items.len()
    }

    /// Iterates over `(id, &item)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates over the IDs.
    pub fn ids(&self) -> impl Iterator<Item = I> {
        (0..self.items.len()).map(I::from_index)
    }
}

impl<I: EntityId, T> Default for Arena<I, T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<I: EntityId, T> std::ops::Index<I> for Arena<I, T> {
    type Output = T;
    fn index(&self, id: I) -> &T {
        &self.items[id.index()]
    }
}

impl<I: EntityId, T> std::ops::IndexMut<I> for Arena<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.index()]
    }
}

impl<I: EntityId, T: fmt::Debug> fmt::Debug for Arena<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    entity_id!(struct TestId, "t");

    #[test]
    fn push_and_index() {
        let mut arena: Arena<TestId, &str> = Arena::new();
        let a = arena.push("alpha");
        let b = arena.push("beta");
        assert_eq!(arena[a], "alpha");
        assert_eq!(arena[b], "beta");
        assert_eq!(arena.len(), 2);
        assert!(!arena.is_empty());
        assert!(arena.contains(a));
    }

    #[test]
    fn iter_preserves_order() {
        let mut arena: Arena<TestId, i32> = Arena::new();
        for v in 0..5 {
            arena.push(v);
        }
        let collected: Vec<i32> = arena.iter().map(|(_, &v)| v).collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn display_uses_prefix() {
        let id = TestId::from_index(7);
        assert_eq!(id.to_string(), "t7");
        assert_eq!(format!("{:?}", id), "t7");
    }
}
