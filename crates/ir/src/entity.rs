//! Typed entity identifiers and arenas.
//!
//! Every IR object (block, variable, array, loop, SSA value, …) is referred
//! to by a small typed index into an [`Arena`]. The newtype indices keep
//! the different namespaces from being confused at compile time.

use std::fmt;
use std::marker::PhantomData;

/// A typed index into an [`Arena`].
///
/// Implemented by the ID newtypes generated with the `entity_id!` macro.
pub trait EntityId: Copy + Eq + std::hash::Hash + fmt::Debug {
    /// Creates an ID from a raw index.
    fn from_index(index: usize) -> Self;
    /// The raw index.
    fn index(self) -> usize;
}

/// Declares an entity ID newtype with a display prefix.
#[macro_export]
macro_rules! entity_id {
    ($(#[$meta:meta])* $vis:vis struct $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis struct $name(u32);

        impl $crate::EntityId for $name {
            fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("entity index overflow"))
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

/// A growable store of `T` addressed by a typed ID.
#[derive(Clone, PartialEq, Eq)]
pub struct Arena<I, T> {
    items: Vec<T>,
    _marker: PhantomData<I>,
}

impl<I: EntityId, T> Arena<I, T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            items: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Adds an item, returning its ID.
    pub fn push(&mut self, item: T) -> I {
        let id = I::from_index(self.items.len());
        self.items.push(item);
        id
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `id` is a valid index into this arena.
    pub fn contains(&self, id: I) -> bool {
        id.index() < self.items.len()
    }

    /// Iterates over `(id, &item)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates over the IDs.
    pub fn ids(&self) -> impl Iterator<Item = I> {
        (0..self.items.len()).map(I::from_index)
    }
}

impl<I: EntityId, T> Default for Arena<I, T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<I: EntityId, T> std::ops::Index<I> for Arena<I, T> {
    type Output = T;
    fn index(&self, id: I) -> &T {
        &self.items[id.index()]
    }
}

impl<I: EntityId, T> std::ops::IndexMut<I> for Arena<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.index()]
    }
}

impl<I: EntityId, T: fmt::Debug> fmt::Debug for Arena<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// A dense side-table over an entity namespace, total over all IDs.
///
/// Every key maps to a value: slots that were never written read as the
/// default. Writing through `IndexMut` grows the table on demand.
/// Iteration visits materialized slots in index order, so any output
/// derived from it is deterministic by construction — no hash seeds
/// involved. This is the table of choice when "absent" and "default" mean
/// the same thing (memo tables, counters, per-value scratch state).
#[derive(Clone, PartialEq, Eq)]
pub struct SecondaryMap<K, V> {
    items: Vec<V>,
    default: V,
    _marker: PhantomData<K>,
}

impl<K: EntityId, V: Clone + Default> SecondaryMap<K, V> {
    /// Creates an empty map whose unwritten slots read as `V::default()`.
    pub fn new() -> Self {
        SecondaryMap::with_default(V::default())
    }
}

impl<K: EntityId, V: Clone> SecondaryMap<K, V> {
    /// Creates an empty map whose unwritten slots read as `default`.
    pub fn with_default(default: V) -> Self {
        SecondaryMap {
            items: Vec::new(),
            default,
            _marker: PhantomData,
        }
    }

    /// Creates an empty map with space reserved for `capacity` slots.
    pub fn with_capacity(capacity: usize, default: V) -> Self {
        SecondaryMap {
            items: Vec::with_capacity(capacity),
            default,
            _marker: PhantomData,
        }
    }

    /// The value for `key`; the default when the slot was never written.
    pub fn get(&self, key: K) -> &V {
        self.items.get(key.index()).unwrap_or(&self.default)
    }

    /// Mutable access to `key`'s slot, growing the table as needed.
    pub fn get_mut(&mut self, key: K) -> &mut V {
        let index = key.index();
        if index >= self.items.len() {
            self.items.resize(index + 1, self.default.clone());
        }
        &mut self.items[index]
    }

    /// Writes `value` at `key`, growing the table as needed.
    pub fn insert(&mut self, key: K, value: V) {
        *self.get_mut(key) = value;
    }

    /// Number of materialized slots (indices `0..capacity`), not a count
    /// of "present" entries — a total map has no notion of presence.
    pub fn capacity(&self) -> usize {
        self.items.len()
    }

    /// Iterates over materialized `(id, &value)` slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// Resets every slot to the default, keeping the allocation.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<K: EntityId, V: Clone + Default> Default for SecondaryMap<K, V> {
    fn default() -> Self {
        SecondaryMap::new()
    }
}

impl<K: EntityId, V: Clone> std::ops::Index<K> for SecondaryMap<K, V> {
    type Output = V;
    fn index(&self, key: K) -> &V {
        self.get(key)
    }
}

impl<K: EntityId, V: Clone> std::ops::IndexMut<K> for SecondaryMap<K, V> {
    fn index_mut(&mut self, key: K) -> &mut V {
        self.get_mut(key)
    }
}

impl<K: EntityId, V: Clone + fmt::Debug> fmt::Debug for SecondaryMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// A dense map over an entity namespace that tracks key presence.
///
/// The drop-in replacement for `HashMap<K, V>` when keys are entity IDs:
/// same `get`/`insert`/`remove`/`contains_key` surface, but backed by a
/// `Vec<Option<V>>` so lookups are an index, not a hash, and iteration is
/// in index order — deterministic without sorting. Use this (not
/// [`SecondaryMap`]) when absence is meaningful, e.g. "this value has no
/// class yet" vs "this value's class is the default".
#[derive(Clone, PartialEq, Eq)]
pub struct EntityMap<K, V> {
    slots: Vec<Option<V>>,
    len: usize,
    _marker: PhantomData<K>,
}

impl<K: EntityId, V> EntityMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        EntityMap {
            slots: Vec::new(),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Creates an empty map with space reserved for `capacity` keys.
    pub fn with_capacity(capacity: usize) -> Self {
        EntityMap {
            slots: Vec::with_capacity(capacity),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: K) -> Option<&V> {
        self.slots.get(key.index()).and_then(|s| s.as_ref())
    }

    /// Mutable access to the value at `key`, if present.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.slots.get_mut(key.index()).and_then(|s| s.as_mut())
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let index = key.index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        let old = self.slots[index].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value at `key`, if present.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let old = self.slots.get_mut(key.index()).and_then(|s| s.take());
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The value at `key`, inserting `make()` first if absent.
    pub fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> &mut V {
        let index = key.index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        let slot = &mut self.slots[index];
        if slot.is_none() {
            *slot = Some(make());
            self.len += 1;
        }
        slot.as_mut().expect("slot just filled")
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over present `(id, &value)` entries in index order.
    pub fn iter(&self) -> EntityMapIter<'_, K, V> {
        EntityMapIter {
            inner: self.slots.iter().enumerate(),
            _marker: PhantomData,
        }
    }

    /// Iterates over present `(id, &mut value)` entries in index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (K::from_index(i), v)))
    }

    /// Iterates over present keys in index order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over present values in key-index order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }
}

impl<K: EntityId, V> Default for EntityMap<K, V> {
    fn default() -> Self {
        EntityMap::new()
    }
}

impl<K: EntityId, V> FromIterator<(K, V)> for EntityMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = EntityMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K: EntityId, V: fmt::Debug> fmt::Debug for EntityMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: EntityId, V> std::ops::Index<K> for EntityMap<K, V> {
    type Output = V;
    /// # Panics
    ///
    /// Panics when `key` is absent, mirroring `HashMap`'s indexing.
    fn index(&self, key: K) -> &V {
        self.get(key).expect("no entry for key in EntityMap")
    }
}

/// Iterator over the present entries of an [`EntityMap`], in index order.
pub struct EntityMapIter<'a, K, V> {
    inner: std::iter::Enumerate<std::slice::Iter<'a, Option<V>>>,
    _marker: PhantomData<K>,
}

impl<'a, K: EntityId, V> Iterator for EntityMapIter<'a, K, V> {
    type Item = (K, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        for (i, slot) in self.inner.by_ref() {
            if let Some(v) = slot {
                return Some((K::from_index(i), v));
            }
        }
        None
    }
}

impl<'a, K: EntityId, V> IntoIterator for &'a EntityMap<K, V> {
    type Item = (K, &'a V);
    type IntoIter = EntityMapIter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A compact map over an entity namespace, sorted by key index.
///
/// Backed by a `Vec<(K, V)>` kept in ascending key order: lookups are a
/// binary search, iteration is index order (deterministic, like
/// [`EntityMap`]), and — unlike the dense maps — memory and iteration
/// cost are proportional to the number of *entries*, not to the largest
/// key index. This is the container for analysis *products* that outlive
/// the pass that computed them: a function with many loops stores one
/// small sorted table per loop instead of many max-index-sized vectors.
#[derive(Clone, PartialEq, Eq)]
pub struct VecMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: EntityId, V> VecMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        VecMap {
            entries: Vec::new(),
        }
    }

    /// Creates an empty map with space reserved for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        VecMap {
            entries: Vec::with_capacity(capacity),
        }
    }

    fn position(&self, key: K) -> Result<usize, usize> {
        self.entries
            .binary_search_by_key(&key.index(), |(k, _)| k.index())
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: K) -> Option<&V> {
        self.position(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value at `key`, if present.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        match self.position(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: K) -> bool {
        self.position(key).is_ok()
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes and returns the value at `key`, if present.
    pub fn remove(&mut self, key: K) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, &value)` entries in ascending key order.
    pub fn iter(&self) -> VecMapIter<'_, K, V> {
        VecMapIter {
            inner: self.entries.iter(),
        }
    }

    /// Iterates over keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.entries.iter().map(|(k, _)| *k)
    }

    /// Iterates over values in key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<K: EntityId, V> Default for VecMap<K, V> {
    fn default() -> Self {
        VecMap::new()
    }
}

impl<K: EntityId, V> FromIterator<(K, V)> for VecMap<K, V> {
    /// Collects entries, sorting by key; on duplicate keys the last
    /// yielded value wins, mirroring repeated `insert`s.
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut entries: Vec<(K, V)> = iter.into_iter().collect();
        entries.sort_by_key(|(k, _)| k.index());
        // Keep the last of each run of equal keys.
        let mut out: Vec<(K, V)> = Vec::with_capacity(entries.len());
        for (k, v) in entries {
            match out.last_mut() {
                Some(last) if last.0 == k => last.1 = v,
                _ => out.push((k, v)),
            }
        }
        VecMap { entries: out }
    }
}

impl<K: EntityId, V: fmt::Debug> fmt::Debug for VecMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

impl<K: EntityId, V> std::ops::Index<K> for VecMap<K, V> {
    type Output = V;
    /// # Panics
    ///
    /// Panics when `key` is absent, mirroring `HashMap`'s indexing.
    fn index(&self, key: K) -> &V {
        self.get(key).expect("no entry for key in VecMap")
    }
}

/// Iterator over the entries of a [`VecMap`], in ascending key order.
pub struct VecMapIter<'a, K, V> {
    inner: std::slice::Iter<'a, (K, V)>,
}

impl<'a, K: EntityId, V> Iterator for VecMapIter<'a, K, V> {
    type Item = (K, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(k, v)| (*k, v))
    }
}

impl<'a, K: EntityId, V> IntoIterator for &'a VecMap<K, V> {
    type Item = (K, &'a V);
    type IntoIter = VecMapIter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A set of entity IDs backed by a bitset.
///
/// One bit per possible ID: membership tests are a shift and a mask, and
/// iteration yields members in ascending index order.
#[derive(Clone, PartialEq, Eq)]
pub struct EntitySet<K> {
    words: Vec<u64>,
    len: usize,
    _marker: PhantomData<K>,
}

impl<K: EntityId> EntitySet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        EntitySet {
            words: Vec::new(),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Adds `key`; returns `true` if it was not already present.
    pub fn insert(&mut self, key: K) -> bool {
        let (word, bit) = (key.index() / 64, key.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Whether `key` is in the set.
    pub fn contains(&self, key: K) -> bool {
        let (word, bit) = (key.index() / 64, key.index() % 64);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: K) -> bool {
        let (word, bit) = (key.index() / 64, key.index() % 64);
        let Some(w) = self.words.get_mut(word) else {
            return false;
        };
        let mask = 1u64 << bit;
        let present = *w & mask != 0;
        *w &= !mask;
        if present {
            self.len -= 1;
        }
        present
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over members in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(K::from_index(wi * 64 + bit))
            })
        })
    }

    /// Removes all members, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }
}

impl<K> Default for EntitySet<K> {
    fn default() -> Self {
        EntitySet {
            words: Vec::new(),
            len: 0,
            _marker: PhantomData,
        }
    }
}

impl<K: EntityId> FromIterator<K> for EntitySet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut set = EntitySet::new();
        for k in iter {
            set.insert(k);
        }
        set
    }
}

impl<K: EntityId> fmt::Debug for EntitySet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A short list of copyable items stored inline — no heap allocation for
/// up to two elements, the common case for array subscript lists (arrays
/// in the loop language are one- or two-dimensional almost everywhere).
/// Longer lists spill to a boxed slice.
///
/// Dereferences to `[T]`, so consumers read it exactly like a `Vec<T>`.
#[derive(Clone)]
pub struct IndexList<T: Copy + Default>(IndexListRepr<T>);

#[derive(Clone)]
enum IndexListRepr<T: Copy + Default> {
    /// `items[len..]` hold `T::default()` padding.
    Inline {
        len: u8,
        items: [T; 2],
    },
    Spilled(Box<[T]>),
}

impl<T: Copy + Default> IndexList<T> {
    /// An empty list.
    pub fn new() -> IndexList<T> {
        IndexList(IndexListRepr::Inline {
            len: 0,
            items: [T::default(); 2],
        })
    }

    /// Builds a list from a slice, inline when it fits.
    pub fn from_slice(slice: &[T]) -> IndexList<T> {
        if slice.len() <= 2 {
            let mut items = [T::default(); 2];
            items[..slice.len()].copy_from_slice(slice);
            IndexList(IndexListRepr::Inline {
                len: slice.len() as u8,
                items,
            })
        } else {
            IndexList(IndexListRepr::Spilled(slice.into()))
        }
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.0 {
            IndexListRepr::Inline { len, items } => &items[..*len as usize],
            IndexListRepr::Spilled(items) => items,
        }
    }
}

impl<T: Copy + Default> Default for IndexList<T> {
    fn default() -> Self {
        IndexList::new()
    }
}

impl<T: Copy + Default> std::ops::Deref for IndexList<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default> std::ops::DerefMut for IndexList<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        match &mut self.0 {
            IndexListRepr::Inline { len, items } => &mut items[..*len as usize],
            IndexListRepr::Spilled(items) => items,
        }
    }
}

impl<T: Copy + Default> From<Vec<T>> for IndexList<T> {
    fn from(v: Vec<T>) -> Self {
        IndexList::from_slice(&v)
    }
}

impl<T: Copy + Default> FromIterator<T> for IndexList<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut items = [T::default(); 2];
        let mut it = iter.into_iter();
        let mut len = 0usize;
        for slot in items.iter_mut() {
            match it.next() {
                Some(x) => {
                    *slot = x;
                    len += 1;
                }
                None => {
                    return IndexList(IndexListRepr::Inline {
                        len: len as u8,
                        items,
                    })
                }
            }
        }
        match it.next() {
            None => IndexList(IndexListRepr::Inline {
                len: len as u8,
                items,
            }),
            Some(third) => {
                let mut v: Vec<T> = items.to_vec();
                v.push(third);
                v.extend(it);
                IndexList(IndexListRepr::Spilled(v.into()))
            }
        }
    }
}

impl<'a, T: Copy + Default> IntoIterator for &'a IndexList<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// Equality and hashing see only the logical elements, never the
// representation, so an inline and a spilled list with the same contents
// are indistinguishable.
impl<T: Copy + Default + PartialEq> PartialEq for IndexList<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq> Eq for IndexList<T> {}

impl<T: Copy + Default + std::hash::Hash> std::hash::Hash for IndexList<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T: Copy + Default + fmt::Debug> fmt::Debug for IndexList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    entity_id!(struct TestId, "t");

    #[test]
    fn push_and_index() {
        let mut arena: Arena<TestId, &str> = Arena::new();
        let a = arena.push("alpha");
        let b = arena.push("beta");
        assert_eq!(arena[a], "alpha");
        assert_eq!(arena[b], "beta");
        assert_eq!(arena.len(), 2);
        assert!(!arena.is_empty());
        assert!(arena.contains(a));
    }

    #[test]
    fn iter_preserves_order() {
        let mut arena: Arena<TestId, i32> = Arena::new();
        for v in 0..5 {
            arena.push(v);
        }
        let collected: Vec<i32> = arena.iter().map(|(_, &v)| v).collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn display_uses_prefix() {
        let id = TestId::from_index(7);
        assert_eq!(id.to_string(), "t7");
        assert_eq!(format!("{:?}", id), "t7");
    }

    #[test]
    fn secondary_map_defaults_and_grows() {
        let mut map: SecondaryMap<TestId, i32> = SecondaryMap::new();
        // Out-of-range reads return the default without growing.
        assert_eq!(*map.get(TestId::from_index(100)), 0);
        assert_eq!(map.capacity(), 0);
        // IndexMut grows and fills the gap with defaults.
        map[TestId::from_index(5)] = 42;
        assert_eq!(map.capacity(), 6);
        assert_eq!(map[TestId::from_index(5)], 42);
        assert_eq!(map[TestId::from_index(3)], 0);
        // Custom defaults.
        let mut m = SecondaryMap::<TestId, i32>::with_default(-1);
        assert_eq!(*m.get(TestId::from_index(9)), -1);
        m.insert(TestId::from_index(2), 7);
        assert_eq!(m[TestId::from_index(0)], -1);
        assert_eq!(m[TestId::from_index(2)], 7);
    }

    #[test]
    fn secondary_map_iterates_in_index_order() {
        let mut map: SecondaryMap<TestId, u32> = SecondaryMap::new();
        // Insert out of order; iteration is index order regardless.
        for i in [4usize, 1, 3, 0, 2] {
            map[TestId::from_index(i)] = i as u32 * 10;
        }
        let pairs: Vec<(usize, u32)> = map.iter().map(|(k, &v)| (k.index(), v)).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
    }

    #[test]
    fn entity_map_tracks_presence() {
        let mut map: EntityMap<TestId, String> = EntityMap::new();
        assert!(map.is_empty());
        assert_eq!(map.get(TestId::from_index(3)), None);
        assert_eq!(map.insert(TestId::from_index(3), "c".into()), None);
        assert_eq!(
            map.insert(TestId::from_index(3), "c2".into()),
            Some("c".into())
        );
        map.insert(TestId::from_index(0), "a".into());
        assert_eq!(map.len(), 2);
        assert!(map.contains_key(TestId::from_index(0)));
        assert!(!map.contains_key(TestId::from_index(1)));
        // Slot 1 and 2 exist in the backing vec but are absent.
        assert_eq!(map.get(TestId::from_index(2)), None);
        assert_eq!(map.remove(TestId::from_index(3)), Some("c2".into()));
        assert_eq!(map.remove(TestId::from_index(3)), None);
        assert_eq!(map.len(), 1);
        // Out-of-range removals are a no-op.
        assert_eq!(map.remove(TestId::from_index(50)), None);
    }

    #[test]
    fn entity_map_iterates_in_index_order() {
        let mut map: EntityMap<TestId, u32> = EntityMap::new();
        for i in [7usize, 2, 9, 0] {
            map.insert(TestId::from_index(i), i as u32);
        }
        let keys: Vec<usize> = map.keys().map(|k| k.index()).collect();
        assert_eq!(keys, vec![0, 2, 7, 9]);
        let values: Vec<u32> = map.values().copied().collect();
        assert_eq!(values, vec![0, 2, 7, 9]);
        let from_iter: EntityMap<TestId, u32> =
            [(TestId::from_index(1), 1u32)].into_iter().collect();
        assert_eq!(from_iter.len(), 1);
    }

    #[test]
    fn entity_map_get_or_insert_with() {
        let mut map: EntityMap<TestId, Vec<u32>> = EntityMap::new();
        map.get_or_insert_with(TestId::from_index(2), Vec::new)
            .push(5);
        map.get_or_insert_with(TestId::from_index(2), Vec::new)
            .push(6);
        assert_eq!(map.get(TestId::from_index(2)), Some(&vec![5, 6]));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn vec_map_sorted_semantics() {
        let mut map: VecMap<TestId, u32> = VecMap::new();
        assert!(map.is_empty());
        assert_eq!(map.insert(TestId::from_index(7), 70), None);
        assert_eq!(map.insert(TestId::from_index(2), 20), None);
        assert_eq!(map.insert(TestId::from_index(7), 71), Some(70));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(TestId::from_index(7)), Some(&71));
        assert_eq!(map.get(TestId::from_index(3)), None);
        assert!(map.contains_key(TestId::from_index(2)));
        // Iteration is key order regardless of insertion order.
        let keys: Vec<usize> = map.keys().map(|k| k.index()).collect();
        assert_eq!(keys, vec![2, 7]);
        assert_eq!(map.remove(TestId::from_index(2)), Some(20));
        assert_eq!(map.remove(TestId::from_index(2)), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn vec_map_from_iter_sorts_and_dedups_last_wins() {
        let map: VecMap<TestId, u32> = [
            (TestId::from_index(5), 50),
            (TestId::from_index(1), 10),
            (TestId::from_index(5), 51),
            (TestId::from_index(3), 30),
        ]
        .into_iter()
        .collect();
        let pairs: Vec<(usize, u32)> = map.iter().map(|(k, &v)| (k.index(), v)).collect();
        assert_eq!(pairs, vec![(1, 10), (3, 30), (5, 51)]);
        assert_eq!(map[TestId::from_index(5)], 51);
    }

    #[test]
    fn entity_set_insert_contains_remove() {
        let mut set: EntitySet<TestId> = EntitySet::new();
        assert!(!set.contains(TestId::from_index(65)));
        assert!(set.insert(TestId::from_index(65)));
        assert!(!set.insert(TestId::from_index(65)));
        assert!(set.insert(TestId::from_index(1)));
        assert_eq!(set.len(), 2);
        assert!(set.contains(TestId::from_index(65)));
        assert!(set.contains(TestId::from_index(1)));
        assert!(!set.contains(TestId::from_index(64)));
        assert!(set.remove(TestId::from_index(65)));
        assert!(!set.remove(TestId::from_index(65)));
        assert_eq!(set.len(), 1);
        // Members iterate in ascending order across word boundaries.
        set.insert(TestId::from_index(200));
        set.insert(TestId::from_index(63));
        let members: Vec<usize> = set.iter().map(|k| k.index()).collect();
        assert_eq!(members, vec![1, 63, 200]);
    }
}
