//! Wrap-around loop peeling (§4.1).
//!
//! "The standard compiler trick, once a wrap-around variable is found,
//! is to peel off the first iteration of the loop and replace the
//! wrap-around variable with the appropriate induction variable." The
//! body is duplicated before the loop and the duplicate's back edge
//! enters the original header, so after one peeled trip every
//! wrap-around variable's value lies on its steady induction sequence
//! and re-analysis refines it.

use biv_core::{Analysis, Class};
use biv_ir::dom::DomTree;
use biv_ir::loops::LoopForest;
use biv_ir::{Block, Function};

use crate::util::clone_loop_blocks;

/// Typed result of a peeling request, so callers cannot mistake "label
/// was a typo" for "loop was peeled".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeelOutcome {
    /// The first iteration was peeled.
    Peeled {
        /// The loop's header block.
        header: Block,
        /// How many blocks were cloned.
        cloned_blocks: usize,
    },
    /// No block carries the requested label.
    UnknownLabel,
    /// The labeled block is not a natural-loop header.
    NotALoopHeader,
    /// The loop lacks a unique preheader (run loop simplification first).
    NoPreheader,
}

impl PeelOutcome {
    /// Whether the loop was actually peeled.
    pub fn peeled(&self) -> bool {
        matches!(self, PeelOutcome::Peeled { .. })
    }
}

/// Peels the first iteration of the loop whose header carries
/// `header_label`.
pub fn peel_first_iteration(func: &mut Function, header_label: &str) -> PeelOutcome {
    let Some(header) = func.block_by_label(header_label) else {
        return PeelOutcome::UnknownLabel;
    };
    peel_header(func, header)
}

/// Peels the loop headed at `header` (which must be a loop header).
pub fn peel_header(func: &mut Function, header: Block) -> PeelOutcome {
    let dom = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dom);
    let Some((l, _)) = forest.iter().find(|(_, d)| d.header == header) else {
        return PeelOutcome::NotALoopHeader;
    };
    let Some(preheader) = forest.preheader(func, l) else {
        return PeelOutcome::NoPreheader;
    };
    let blocks: Vec<Block> = forest.data(l).blocks.clone();
    // Clone the body; the clones' back edges already target the original
    // header, so routing the preheader into the cloned header peels
    // exactly one iteration.
    let clone_of = clone_loop_blocks(func, &blocks, header);
    func.blocks[preheader]
        .term
        .replace_successor(header, clone_of[&header]);
    PeelOutcome::Peeled {
        header,
        cloned_blocks: blocks.len(),
    }
}

/// Classification-driven peeling: peels every loop whose classes include
/// a wrap-around variable, resolving headers from the analysis (loops
/// are matched back to the function by their source label; unlabeled
/// loops are skipped). Returns the number of loops peeled.
pub fn peel_wraparounds(func: &mut Function, analysis: &Analysis) -> usize {
    let mut labels: Vec<String> = Vec::new();
    for (_, info) in analysis.loops() {
        let has_wrap = info
            .classes
            .values()
            .any(|c| matches!(c, Class::WrapAround { .. }));
        if has_wrap && !labels.contains(&info.name) {
            labels.push(info.name.clone());
        }
    }
    let mut peeled = 0;
    for label in labels {
        let Some(header) = func.block_by_label(&label) else {
            continue; // analysis-internal name (unlabeled loop)
        };
        if peel_header(func, header).peeled() {
            peeled += 1;
        }
    }
    peeled
}

/// Inserts the canonical loop counter `h = (L, 0, 1)` for the labeled
/// loop: `h = 0` in the preheader and `h = h + 1` at the top of the
/// latch. Returns the new variable, or `None` when the label does not
/// name a simplified single-latch loop.
pub fn insert_canonical_counter(func: &mut Function, header_label: &str) -> Option<biv_ir::Var> {
    use biv_ir::{BinOp, Inst, Operand};
    let dom = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dom);
    let header = func.block_by_label(header_label)?;
    let (l, _) = forest.iter().find(|(_, d)| d.header == header)?;
    let preheader = forest.preheader(func, l)?;
    let latch = forest.single_latch(l)?;
    let h = func.new_var(format!("%h_{header_label}"));
    func.blocks[preheader].insts.push(Inst::Copy {
        dst: h,
        src: Operand::Const(0),
    });
    func.blocks[latch].insts.push(Inst::Binary {
        dst: h,
        op: BinOp::Add,
        lhs: Operand::Var(h),
        rhs: Operand::Const(1),
    });
    Some(h)
}
