//! Flip-flop unrolling (§4.2).
//!
//! A loop carrying a period-2 periodic family (a flip-flop) is unrolled
//! by two: consecutive iterations then see the *same* member of the
//! family in each copy, turning the alternation into straight-line
//! values that forward substitution or dependence testing can exploit.
//!
//! The unroll is a pure CFG duplication — both copies keep their exit
//! tests, so odd trip counts (and any other early exit) remain correct
//! unconditionally.

use biv_core::{Analysis, Class};
use biv_ir::dom::DomTree;
use biv_ir::loops::LoopForest;
use biv_ir::{Block, Function};

use crate::util::clone_loop_blocks;

/// Unrolls by two every innermost loop whose classes include a period-2
/// periodic (flip-flop) family. Loops are resolved from the analysis by
/// source label; unlabeled loops are skipped. Returns the number of
/// loops unrolled.
pub fn unroll_flip_flops(func: &mut Function, analysis: &Analysis) -> usize {
    let mut labels: Vec<String> = Vec::new();
    for (_, info) in analysis.loops() {
        let has_flip_flop = info
            .classes
            .values()
            .any(|c| matches!(c, Class::Periodic(p) if p.period() == 2));
        if has_flip_flop && !labels.contains(&info.name) {
            labels.push(info.name.clone());
        }
    }
    let mut unrolled = 0;
    for label in labels {
        let Some(header) = func.block_by_label(&label) else {
            continue;
        };
        if unroll_by_two(func, header) {
            unrolled += 1;
        }
    }
    unrolled
}

/// Unrolls the loop headed at `header` by two. Only innermost loops are
/// unrolled (duplicating an outer loop would duplicate its inner loops
/// wholesale). Returns whether the loop was unrolled.
pub fn unroll_by_two(func: &mut Function, header: Block) -> bool {
    let dom = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dom);
    let Some((l, data)) = forest.iter().find(|(_, d)| d.header == header) else {
        return false;
    };
    if !data.children.is_empty() {
        return false;
    }
    if forest.preheader(func, l).is_none() {
        return false;
    }
    let blocks: Vec<Block> = forest.data(l).blocks.clone();
    // Clone the body. The clones' edges to the header already target the
    // *original* header; retargeting the originals' back edges into the
    // cloned header chains the two copies: header → … → header′ → … →
    // header. Exit edges are preserved in both copies.
    let clone_of = clone_loop_blocks(func, &blocks, header);
    let cloned_header = clone_of[&header];
    for &b in &blocks {
        // Only in-loop edges to the header are back edges (the preheader
        // is outside the loop and untouched).
        func.blocks[b].term.replace_successor(header, cloned_header);
    }
    true
}
