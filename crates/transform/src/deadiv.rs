//! Linear-function test replacement and dead-IV elimination (§1, §6).
//!
//! After strength reduction, an induction variable is often left with a
//! single purpose: driving its own exit test. When a strength-reduced
//! temporary `t == i * f` (with `f > 0`) exists, the exit test
//! `i cmp bound` rewrites to `t cmp bound * f` — linear-function test
//! replacement — after which `i`'s update is dead and is deleted.
//!
//! The rewrite is justified point-wise: `t` is initialized to `i * f` in
//! the preheader and updated immediately after `i`'s single additive
//! update, so `t == i * f` holds at the header, and multiplying both
//! sides of any comparison by a positive constant preserves it.

use std::collections::HashSet;

use biv_core::Analysis;
use biv_ir::dom::DomTree;
use biv_ir::loops::LoopForest;
use biv_ir::{BinOp, Block, Function, Inst, Operand, Terminator, Var};

use crate::util::{additive_iv_vars, invariant_in};

/// Replaces exit tests and deletes dead induction variables across every
/// loop. The candidate set comes from the classifier (only variables
/// whose values carry additive closed forms are considered); the
/// rewrite's soundness is established syntactically per loop. Returns
/// the number of induction variables eliminated.
pub fn eliminate_dead_ivs(func: &mut Function, analysis: &Analysis) -> usize {
    let candidates = additive_iv_vars(analysis);
    if candidates.is_empty() {
        return 0;
    }
    let dom = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dom);
    let mut eliminated = 0;
    for l in forest.inner_to_outer() {
        let Some(preheader) = forest.preheader(func, l) else {
            continue;
        };
        let header = forest.data(l).header;
        let blocks: Vec<Block> = forest.data(l).blocks.clone();
        if let Some(()) = try_eliminate(func, &candidates, preheader, header, &blocks) {
            eliminated += 1;
        }
    }
    eliminated
}

/// The single additive constant-step update of `var` inside `blocks`,
/// when there is exactly one def and it has that shape.
fn single_const_update(func: &Function, blocks: &[Block], var: Var) -> Option<(Block, usize, i64)> {
    let mut found: Option<(Block, usize, i64)> = None;
    for &b in blocks {
        for (i, inst) in func.blocks[b].insts.iter().enumerate() {
            if inst.def() != Some(var) {
                continue;
            }
            if found.is_some() {
                return None; // more than one def
            }
            let step = match inst {
                Inst::Binary {
                    op: BinOp::Add,
                    lhs,
                    rhs,
                    ..
                } => match (lhs, rhs) {
                    (Operand::Var(v), Operand::Const(c)) if *v == var => Some(*c),
                    (Operand::Const(c), Operand::Var(v)) if *v == var => Some(*c),
                    _ => None,
                },
                Inst::Binary {
                    op: BinOp::Sub,
                    lhs: Operand::Var(v),
                    rhs: Operand::Const(c),
                    ..
                } if *v == var => c.checked_neg(),
                _ => None,
            }?;
            found = Some((b, i, step));
        }
    }
    found
}

fn try_eliminate(
    func: &mut Function,
    candidates: &HashSet<Var>,
    preheader: Block,
    header: Block,
    blocks: &[Block],
) -> Option<()> {
    // Exit test at the header over a candidate IV and an invariant bound.
    let (i_var, bound) = match &func.blocks[header].term {
        Terminator::Branch {
            lhs: Operand::Var(v),
            rhs,
            then_bb,
            ..
        } if candidates.contains(v)
            && !blocks.contains(then_bb)
            && invariant_in(func, blocks, rhs) =>
        {
            (*v, *rhs)
        }
        _ => return None,
    };
    // Exactly one in-loop update `i = i + c`.
    let (upd_block, upd_idx, step) = single_const_update(func, blocks, i_var)?;
    if step == 0 {
        return None;
    }
    // A strength-reduced companion: `t = i * f` in the preheader with
    // `f > 0`, whose own single update sits in the same cluster directly
    // after `i`'s update.
    let (t_var, factor, t_init_idx) = find_companion(func, preheader, blocks, i_var)?;
    let (t_block, t_idx, t_step) = single_const_update(func, blocks, t_var)?;
    if t_block != upd_block || t_idx <= upd_idx {
        return None;
    }
    if t_step != step.checked_mul(factor)? {
        return None;
    }
    // Between the two updates only other maintenance updates may appear
    // (additive self-updates by a constant), so no one observes the
    // briefly-broken invariant.
    for inst in &func.blocks[upd_block].insts[upd_idx + 1..t_idx] {
        let Inst::Binary {
            dst,
            op: BinOp::Add | BinOp::Sub,
            lhs: Operand::Var(v),
            rhs: Operand::Const(_),
        } = inst
        else {
            return None;
        };
        if dst != v {
            return None;
        }
    }
    // `i` must not be read after its init except by: its own update, the
    // header exit test, instructions in the preheader (they run before
    // the loop), and blocks that cannot observe a post-update value.
    if !only_dead_uses(func, blocks, preheader, header, upd_block, upd_idx, i_var) {
        return None;
    }
    // `t` must have exactly two defs in the whole function: the
    // preheader init and the in-loop update.
    let t_defs: usize = func
        .blocks
        .iter()
        .map(|(_, d)| d.insts.iter().filter(|i| i.def() == Some(t_var)).count())
        .sum();
    if t_defs != 2 {
        return None;
    }
    // No def of `i` in the preheader after `t`'s init (the init must
    // read `i`'s initial value).
    if func.blocks[preheader].insts[t_init_idx + 1..]
        .iter()
        .any(|inst| inst.def() == Some(i_var))
    {
        return None;
    }
    // Materialize the replaced bound.
    let new_bound = match bound {
        Operand::Const(b) => Operand::Const(b.checked_mul(factor)?),
        Operand::Var(bv) => {
            let nb = func.new_var(format!("%lftr_{}", func.vars[i_var].name.replace('%', "")));
            func.blocks[preheader].insts.push(Inst::Binary {
                dst: nb,
                op: BinOp::Mul,
                lhs: Operand::Var(bv),
                rhs: Operand::Const(factor),
            });
            Operand::Var(nb)
        }
    };
    // Linear-function test replacement, then delete the dead update.
    if let Terminator::Branch { lhs, rhs, .. } = &mut func.blocks[header].term {
        *lhs = Operand::Var(t_var);
        *rhs = new_bound;
    }
    func.blocks[upd_block].insts.remove(upd_idx);
    Some(())
}

/// Finds a preheader instruction `t = i * f` (either operand order) with
/// a positive constant factor. Returns `(t, f, init index)`.
fn find_companion(
    func: &Function,
    preheader: Block,
    blocks: &[Block],
    i_var: Var,
) -> Option<(Var, i64, usize)> {
    for (idx, inst) in func.blocks[preheader].insts.iter().enumerate() {
        let Inst::Binary {
            dst,
            op: BinOp::Mul,
            lhs,
            rhs,
        } = inst
        else {
            continue;
        };
        let f = match (lhs, rhs) {
            (Operand::Var(v), Operand::Const(f)) if *v == i_var => *f,
            (Operand::Const(f), Operand::Var(v)) if *v == i_var => *f,
            _ => continue,
        };
        if f > 0 && single_const_update(func, blocks, *dst).is_some() {
            return Some((*dst, f, idx));
        }
    }
    None
}

/// Whether every read of `var` is one the elimination tolerates: its own
/// update, the header branch, the preheader, or a block that can never
/// execute after the loop body ran.
fn only_dead_uses(
    func: &Function,
    blocks: &[Block],
    preheader: Block,
    header: Block,
    upd_block: Block,
    upd_idx: usize,
    var: Var,
) -> bool {
    // Blocks that may observe a post-update value of `var`: everything
    // reachable from the loop's blocks (including the loop itself).
    let mut tainted: HashSet<Block> = blocks.iter().copied().collect();
    let mut work: Vec<Block> = blocks.to_vec();
    while let Some(b) = work.pop() {
        for succ in func.successors(b) {
            if tainted.insert(succ) {
                work.push(succ);
            }
        }
    }
    // When an enclosing loop re-runs the preheader, a preheader read is
    // only safe after a re-initialization of `var` that does not itself
    // read `var` (e.g. the for-loop's `i = from`).
    let preheader_reinit = func.blocks[preheader].insts.iter().position(|inst| {
        let mut used = Vec::new();
        inst.uses(&mut used);
        inst.def() == Some(var) && !used.contains(&var)
    });
    for (b, data) in func.blocks.iter() {
        let observes = tainted.contains(&b);
        for (i, inst) in data.insts.iter().enumerate() {
            let mut used = Vec::new();
            inst.uses(&mut used);
            if !used.contains(&var) {
                continue;
            }
            if b == upd_block && i == upd_idx {
                continue; // the update reads itself
            }
            if b == preheader && (!observes || preheader_reinit.is_some_and(|r| r < i)) {
                continue; // runs with the freshly (re)initialized value
            }
            if observes {
                return false;
            }
        }
        let mut used = Vec::new();
        data.term.uses(&mut used);
        if used.contains(&var) && b != header && observes {
            return false;
        }
    }
    true
}
