//! Dependence-driven loop interchange (§6).
//!
//! For a canonical rectangular two-deep `for` nest, the interchange swaps
//! the roles of the two loop variables — initialization, exit test, and
//! increment travel together to the other level, while the body is left
//! untouched. The iteration space is the same rectangle traversed in
//! transposed order, so legality reduces to the classical direction-
//! vector rule: no dependence may have a `(<, >)` component in the two
//! positions ([`biv_depend::interchange_legal_in_nest`]).
//!
//! Profitability is the transposed-access heuristic: interchange when
//! more two-dimensional accesses index their *first* (slowest)
//! dimension with the inner variable than with the outer one.

use biv_core::Analysis;
use biv_depend::{interchange_legal_in_nest, Dependence, DependenceTester};
use biv_ir::dom::DomTree;
use biv_ir::loops::{Loop, LoopForest};
use biv_ir::{BinOp, Block, Function, Inst, Operand, Terminator, Var};

use crate::util::never_defined;

/// Interchanges every legal, profitable canonical two-deep nest.
/// Returns the number of nests interchanged.
pub fn interchange_nests(func: &mut Function, analysis: &Analysis) -> usize {
    let dom = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dom);
    let tester = DependenceTester::new(analysis);
    let deps = tester.all_dependences();
    let mut count = 0;
    for (outer, od) in forest.iter() {
        if od.children.len() != 1 {
            continue;
        }
        let inner = od.children[0];
        if !forest.data(inner).children.is_empty() {
            continue;
        }
        if try_interchange(func, &forest, outer, inner, analysis, &tester, &deps).is_some() {
            count += 1;
        }
    }
    count
}

/// The canonical nest's moving parts, recognized before any rewrite.
struct NestShape {
    ho: Block,
    hi: Block,
    p_o: Block,
    pre_i: Block,
    latch_o: Block,
    latch_i: Block,
    io_init_idx: usize,
    io: Var,
    ii: Var,
    from_o: Operand,
    from_i: Operand,
    step_o: i64,
    step_i: i64,
}

#[allow(clippy::too_many_arguments)]
fn try_interchange(
    func: &mut Function,
    forest: &LoopForest,
    outer: Loop,
    inner: Loop,
    analysis: &Analysis,
    tester: &DependenceTester,
    deps: &[Dependence],
) -> Option<()> {
    let shape = recognize(func, forest, outer, inner)?;
    // Profitability: transposed two-dimensional accesses dominate.
    let (mut bad, mut good) = (0usize, 0usize);
    for &b in &forest.data(inner).blocks {
        for inst in &func.blocks[b].insts {
            let index = match inst {
                Inst::Load { index, .. } | Inst::Store { index, .. } => index,
                _ => continue,
            };
            if index.len() != 2 {
                continue;
            }
            if index[0].as_var() == Some(shape.ii) {
                bad += 1;
            } else if index[0].as_var() == Some(shape.io) {
                good += 1;
            }
        }
    }
    if bad <= good {
        return None;
    }
    // Legality over this nest's dependences: map both loops into the
    // analysis (by source label) and filter the tester's global
    // dependence list down to accesses inside the nest.
    let outer_label = func.blocks[shape.ho].label.clone()?;
    let inner_label = func.blocks[shape.hi].label.clone()?;
    let a_outer = analysis.loop_by_label(&outer_label)?;
    let a_inner = analysis.loop_by_label(&inner_label)?;
    let af = analysis.forest();
    if af.data(a_inner).parent != Some(a_outer) {
        return None;
    }
    let pos_outer = ancestor_count(af, a_outer);
    let accesses = tester.accesses();
    let legal = interchange_legal_in_nest(deps, pos_outer, pos_outer + 1, |acc| {
        af.contains(a_outer, accesses[acc].block)
    });
    if !legal {
        return None;
    }
    apply(func, &shape);
    Some(())
}

/// Number of loops strictly enclosing `l` — `l`'s position in a
/// direction vector over its own nest.
fn ancestor_count(forest: &LoopForest, mut l: Loop) -> usize {
    let mut n = 0;
    while let Some(p) = forest.data(l).parent {
        n += 1;
        l = p;
    }
    n
}

/// Matches the canonical shape `lower_for` emits for a rectangular
/// two-deep nest and collects its moving parts.
fn recognize(func: &Function, forest: &LoopForest, outer: Loop, inner: Loop) -> Option<NestShape> {
    let od = forest.data(outer);
    let ho = od.header;
    let hi = forest.data(inner).header;
    let p_o = forest.preheader(func, outer)?;
    let latch_o = forest.single_latch(outer)?;
    let latch_i = forest.single_latch(inner)?;
    // Outer header: `branch io > bound_o ? exit : pre_i`.
    let Terminator::Branch {
        lhs: Operand::Var(io),
        then_bb: exit_o,
        else_bb: pre_i,
        ..
    } = func.blocks[ho].term
    else {
        return None;
    };
    if forest.contains(outer, exit_o) || !forest.contains(outer, pre_i) || pre_i == ho {
        return None;
    }
    // Inner header: `branch ii > bound_i ? latch_o : body`.
    let Terminator::Branch {
        lhs: Operand::Var(ii),
        then_bb: inner_exit,
        else_bb: body0,
        ..
    } = func.blocks[hi].term
    else {
        return None;
    };
    if inner_exit != latch_o || forest.contains(inner, inner_exit) || !forest.contains(inner, body0)
    {
        return None;
    }
    if io == ii {
        return None;
    }
    // The outer loop is exactly header + inner preheader + inner loop +
    // latch: no other outer-level computation whose trip count would
    // change.
    for &b in &od.blocks {
        if b != ho && b != pre_i && b != latch_o && !forest.contains(inner, b) {
            return None;
        }
    }
    // `pre_i` holds exactly the inner initialization.
    let [Inst::Copy {
        dst: ii_dst,
        src: from_i,
    }] = func.blocks[pre_i].insts.as_slice()
    else {
        return None;
    };
    if *ii_dst != ii || func.blocks[pre_i].term != Terminator::Jump(hi) {
        return None;
    }
    // `latch_o` holds exactly the outer increment.
    let [outer_inc] = func.blocks[latch_o].insts.as_slice() else {
        return None;
    };
    let step_o = const_self_increment(outer_inc, io)?;
    if func.blocks[latch_o].term != Terminator::Jump(ho) {
        return None;
    }
    // The inner increment is the last instruction of the inner latch.
    let inner_inc = func.blocks[latch_i].insts.last()?;
    let step_i = const_self_increment(inner_inc, ii)?;
    if func.blocks[latch_i].term != Terminator::Jump(hi) {
        return None;
    }
    // Each variable has exactly the defs the shape accounts for.
    if count_defs(func, &od.blocks, io) != 1 || count_defs(func, &od.blocks, ii) != 2 {
        return None;
    }
    // The outer initialization is the last def of `io` in the preheader.
    let io_init_idx = func.blocks[p_o]
        .insts
        .iter()
        .rposition(|inst| inst.def() == Some(io))?;
    let Inst::Copy { src: from_o, .. } = &func.blocks[p_o].insts[io_init_idx] else {
        return None;
    };
    let (from_o, from_i) = (*from_o, *from_i);
    // All four range operands must be readable from either init point:
    // constants, or variables never written anywhere.
    let bounds = [
        &from_o,
        &from_i,
        branch_rhs(func, ho)?,
        branch_rhs(func, hi)?,
    ];
    for op in bounds {
        match op {
            Operand::Const(_) => {}
            Operand::Var(v) => {
                if !never_defined(func, *v) {
                    return None;
                }
            }
        }
    }
    // Neither variable may be observed outside the nest.
    if used_outside(func, &od.blocks, p_o, io) || used_outside(func, &od.blocks, p_o, ii) {
        return None;
    }
    Some(NestShape {
        ho,
        hi,
        p_o,
        pre_i,
        latch_o,
        latch_i,
        io_init_idx,
        io,
        ii,
        from_o,
        from_i,
        step_o,
        step_i,
    })
}

/// Swaps the init / exit-test / increment triples between the two
/// levels. The body and the CFG edges are untouched: the two variables
/// simply trade which level drives them.
fn apply(func: &mut Function, s: &NestShape) {
    func.blocks[s.p_o].insts[s.io_init_idx] = Inst::Copy {
        dst: s.ii,
        src: s.from_i,
    };
    func.blocks[s.pre_i].insts[0] = Inst::Copy {
        dst: s.io,
        src: s.from_o,
    };
    func.blocks[s.latch_o].insts[0] = Inst::Binary {
        dst: s.ii,
        op: BinOp::Add,
        lhs: Operand::Var(s.ii),
        rhs: Operand::Const(s.step_i),
    };
    let last = func.blocks[s.latch_i].insts.len() - 1;
    func.blocks[s.latch_i].insts[last] = Inst::Binary {
        dst: s.io,
        op: BinOp::Add,
        lhs: Operand::Var(s.io),
        rhs: Operand::Const(s.step_o),
    };
    // Swap the exit tests (conditions only; the edges stay).
    let (op_o, bound_o) = branch_cond(func, s.ho);
    let (op_i, bound_i) = branch_cond(func, s.hi);
    set_branch_cond(func, s.ho, op_i, Operand::Var(s.ii), bound_i);
    set_branch_cond(func, s.hi, op_o, Operand::Var(s.io), bound_o);
}

fn branch_rhs(func: &Function, b: Block) -> Option<&Operand> {
    match &func.blocks[b].term {
        Terminator::Branch { rhs, .. } => Some(rhs),
        _ => None,
    }
}

fn branch_cond(func: &Function, b: Block) -> (biv_ir::CmpOp, Operand) {
    match &func.blocks[b].term {
        Terminator::Branch { op, rhs, .. } => (*op, *rhs),
        _ => unreachable!("recognized shape has a branch"),
    }
}

fn set_branch_cond(func: &mut Function, b: Block, op: biv_ir::CmpOp, l: Operand, r: Operand) {
    if let Terminator::Branch {
        op: o, lhs, rhs, ..
    } = &mut func.blocks[b].term
    {
        *o = op;
        *lhs = l;
        *rhs = r;
    }
}

/// Matches `v = v + Const(c)` (either operand order), returning `c`.
fn const_self_increment(inst: &Inst, v: Var) -> Option<i64> {
    match inst {
        Inst::Binary {
            dst,
            op: BinOp::Add,
            lhs,
            rhs,
        } if *dst == v => match (lhs, rhs) {
            (Operand::Var(a), Operand::Const(c)) if *a == v => Some(*c),
            (Operand::Const(c), Operand::Var(a)) if *a == v => Some(*c),
            _ => None,
        },
        _ => None,
    }
}

fn count_defs(func: &Function, blocks: &[Block], v: Var) -> usize {
    blocks
        .iter()
        .map(|&b| {
            func.blocks[b]
                .insts
                .iter()
                .filter(|i| i.def() == Some(v))
                .count()
        })
        .sum()
}

/// Whether `v` is read by any instruction or terminator outside the nest
/// blocks (reads in the preheader are forbidden too — the init moves).
fn used_outside(func: &Function, nest: &[Block], p_o: Block, v: Var) -> bool {
    for (b, data) in func.blocks.iter() {
        if nest.contains(&b) {
            continue;
        }
        for inst in &data.insts {
            let mut used = Vec::new();
            inst.uses(&mut used);
            if used.contains(&v) {
                return true;
            }
        }
        let mut used = Vec::new();
        data.term.uses(&mut used);
        if used.contains(&v) && b != p_o {
            return true;
        }
    }
    false
}
