//! Classified strength reduction (§1, §6).
//!
//! The classical companion transformation, generalized: instead of the
//! syntactic "basic induction variable times constant" pattern, the
//! candidate set comes from the paper's classifier — every CFG variable
//! whose SSA values carry an additive (linear *or* polynomial) closed
//! form is eligible, and the multiplier may be any loop-invariant
//! operand, not just a literal constant.
//!
//! Soundness does not rest on the classification (which only *selects*
//! candidates): for each reduced variable `x`, every in-loop definition
//! of `x` must be `x = x ± e`, and the temporary `t` is updated
//! immediately after each such definition, so `t == x * factor` holds at
//! every other program point in the loop, no dominance argument needed.
//!
//! Polynomial IVs reduce by *chaining*: when the step `e` is itself
//! loop-varying (`j = j + i`), the pass leaves a multiplication
//! `e * factor` next to the update — which the next pass strength-reduces
//! in turn, because `e` is an induction variable one degree lower. The
//! driver iterates to a fixed point (bounded by [`MAX_PASSES`]).

use std::collections::BTreeMap;

use biv_core::Analysis;
use biv_ir::dom::DomTree;
use biv_ir::loops::LoopForest;
use biv_ir::{BinOp, Block, EntityId, Function, Inst, Operand, Var};

use crate::util::{additive_iv_vars, invariant_in};

/// Pass bound for the polynomial chain: each pass lowers remaining
/// multiplications by one polynomial degree.
pub const MAX_PASSES: usize = 4;

/// Applies classified strength reduction to a fixed point (at most
/// [`MAX_PASSES`] analyze-and-rewrite rounds). Returns the total number
/// of multiplications eliminated.
pub fn strength_reduce(func: &mut Function) -> usize {
    let mut total = 0;
    for _ in 0..MAX_PASSES {
        let analysis = biv_core::analyze(func);
        let n = strength_reduce_with(func, &analysis);
        if n == 0 {
            break;
        }
        total += n;
    }
    total
}

/// One strength-reduction pass against an existing analysis of `func`.
/// Returns the number of multiplications eliminated by this pass.
pub fn strength_reduce_with(func: &mut Function, analysis: &Analysis) -> usize {
    strength_reduce_pass(func, analysis, 0)
}

/// Sort key for grouping multiplication sites by their invariant factor.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FactorKey {
    Const(i64),
    Var(usize),
}

fn factor_key(op: &Operand) -> FactorKey {
    match op {
        Operand::Const(c) => FactorKey::Const(*c),
        Operand::Var(v) => FactorKey::Var(v.index()),
    }
}

/// The additive step of `inst` when it is `var = var ± e` with `e` not
/// `var` itself: `(step operand, +1 | -1)`.
fn additive_step(inst: &Inst, var: Var) -> Option<(Operand, i64)> {
    let Inst::Binary { dst, op, lhs, rhs } = inst else {
        return None;
    };
    if *dst != var {
        return None;
    }
    match op {
        BinOp::Add => match (lhs, rhs) {
            (Operand::Var(v), e) if *v == var && e.as_var() != Some(var) => Some((*e, 1)),
            (e, Operand::Var(v)) if *v == var && e.as_var() != Some(var) => Some((*e, 1)),
            _ => None,
        },
        BinOp::Sub => match (lhs, rhs) {
            (Operand::Var(v), e) if *v == var && e.as_var() != Some(var) => Some((*e, -1)),
            _ => None,
        },
        _ => None,
    }
}

/// The internal pass, parameterized by `skew` for the canary module: a
/// nonzero skew deliberately mis-initializes every temporary, producing
/// a guaranteed miscompile the differential harness must catch.
pub(crate) fn strength_reduce_pass(func: &mut Function, analysis: &Analysis, skew: i64) -> usize {
    let candidates = additive_iv_vars(analysis);
    if candidates.is_empty() {
        return 0;
    }
    let dom = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dom);
    let mut reduced = 0;
    for l in forest.inner_to_outer() {
        let Some(preheader) = forest.preheader(func, l) else {
            continue;
        };
        let blocks: Vec<Block> = forest.data(l).blocks.clone();
        // Deterministic variable order.
        let mut vars: Vec<Var> = candidates.iter().copied().collect();
        vars.sort_by_key(|v| v.index());
        for var in vars {
            reduced += reduce_var(func, &blocks, preheader, var, skew);
        }
    }
    reduced
}

/// Reduces every multiplication of `var` by a loop-invariant factor
/// inside one loop. Returns the number of multiplications eliminated.
fn reduce_var(
    func: &mut Function,
    blocks: &[Block],
    preheader: Block,
    var: Var,
    skew: i64,
) -> usize {
    // Every in-loop definition of `var` must be additive, or the
    // temporary cannot be maintained.
    let mut steps: Vec<(Block, usize)> = Vec::new();
    for &b in blocks {
        for (i, inst) in func.blocks[b].insts.iter().enumerate() {
            if inst.def() == Some(var) {
                if additive_step(inst, var).is_none() {
                    return 0;
                }
                steps.push((b, i));
            }
        }
    }
    if steps.is_empty() {
        return 0; // invariant here; nothing to maintain
    }
    // Find the multiplications `dst = var * factor` with an invariant
    // factor, grouped by factor.
    let mut groups: BTreeMap<FactorKey, (Operand, usize)> = BTreeMap::new();
    for &b in blocks {
        for inst in &func.blocks[b].insts {
            if let Some((dst, factor)) = mul_by(inst, var) {
                if dst != var && invariant_in(func, blocks, &factor) {
                    let entry = groups
                        .entry(factor_key(&factor))
                        .or_insert_with(|| (factor, 0));
                    entry.1 += 1;
                }
            }
        }
    }
    // Pre-check constant deltas: a group whose constant-folded update
    // would overflow is left alone entirely.
    groups.retain(|_, (factor, _)| all_const_deltas_fit(func, &steps, factor));
    if groups.is_empty() {
        return 0;
    }
    let var_tag = func.vars[var].name.replace('%', "");
    // One temporary per factor, initialized `t = var * factor` in the
    // preheader (plus the canary's deliberate skew, when set).
    let mut temp_for: BTreeMap<FactorKey, Var> = BTreeMap::new();
    for (key, (factor, _)) in &groups {
        let tag = match factor {
            Operand::Const(c) => format!("{c}"),
            Operand::Var(v) => func.vars[*v].name.replace('%', ""),
        };
        let t = func.new_var(format!("%sr_{var_tag}_{tag}"));
        func.blocks[preheader].insts.push(Inst::Binary {
            dst: t,
            op: BinOp::Mul,
            lhs: Operand::Var(var),
            rhs: *factor,
        });
        if skew != 0 {
            func.blocks[preheader].insts.push(Inst::Binary {
                dst: t,
                op: BinOp::Add,
                lhs: Operand::Var(t),
                rhs: Operand::Const(skew),
            });
        }
        temp_for.insert(*key, t);
    }
    // Maintain the temporaries after every additive definition of `var`.
    for &b in blocks {
        let mut i = 0;
        while i < func.blocks[b].insts.len() {
            let inst = func.blocks[b].insts[i].clone();
            let Some((step, sign)) = (inst.def() == Some(var))
                .then(|| additive_step(&inst, var))
                .flatten()
            else {
                i += 1;
                continue;
            };
            let mut insert_at = i + 1;
            for (factor, _) in groups.clone().values() {
                let t = temp_for[&factor_key(factor)];
                match (&step, factor) {
                    (Operand::Const(c), Operand::Const(f)) => {
                        // Pre-checked to fit.
                        let delta = c.checked_mul(*f).and_then(|d| d.checked_mul(sign)).unwrap();
                        func.blocks[b].insts.insert(
                            insert_at,
                            Inst::Binary {
                                dst: t,
                                op: BinOp::Add,
                                lhs: Operand::Var(t),
                                rhs: Operand::Const(delta),
                            },
                        );
                        insert_at += 1;
                    }
                    _ => {
                        // Symbolic delta: `d = step * factor` right after
                        // the update (when the step is loop-varying this
                        // multiplication is one polynomial degree lower
                        // and the next pass reduces it in turn).
                        let d = func.new_var(format!("%srd_{var_tag}"));
                        func.blocks[b].insts.insert(
                            insert_at,
                            Inst::Binary {
                                dst: d,
                                op: BinOp::Mul,
                                lhs: step,
                                rhs: *factor,
                            },
                        );
                        func.blocks[b].insts.insert(
                            insert_at + 1,
                            Inst::Binary {
                                dst: t,
                                op: if sign > 0 { BinOp::Add } else { BinOp::Sub },
                                lhs: Operand::Var(t),
                                rhs: Operand::Var(d),
                            },
                        );
                        insert_at += 2;
                    }
                }
            }
            i = insert_at;
        }
    }
    // Replace the multiplications with copies from the temporaries.
    let mut count = 0;
    for &b in blocks {
        for inst in &mut func.blocks[b].insts {
            let Some((dst, factor)) = mul_by(inst, var) else {
                continue;
            };
            if let Some(&t) = temp_for.get(&factor_key(&factor)) {
                if dst != var && dst != t {
                    *inst = Inst::Copy {
                        dst,
                        src: Operand::Var(t),
                    };
                    count += 1;
                }
            }
        }
    }
    count
}

/// Matches `dst = var * factor` (either operand order); the factor is
/// the other operand.
fn mul_by(inst: &Inst, var: Var) -> Option<(Var, Operand)> {
    let Inst::Binary {
        dst,
        op: BinOp::Mul,
        lhs,
        rhs,
    } = inst
    else {
        return None;
    };
    match (lhs, rhs) {
        (Operand::Var(v), f) if *v == var && f.as_var() != Some(var) => Some((*dst, *f)),
        (f, Operand::Var(v)) if *v == var && f.as_var() != Some(var) => Some((*dst, *f)),
        _ => None,
    }
}

/// Whether every constant-step × constant-factor delta for this group
/// fits in `i64`.
fn all_const_deltas_fit(func: &Function, steps: &[(Block, usize)], factor: &Operand) -> bool {
    let Operand::Const(f) = factor else {
        return true;
    };
    steps.iter().all(|&(b, i)| {
        let inst = &func.blocks[b].insts[i];
        let var = inst.def().expect("def site");
        match additive_step(inst, var) {
            Some((Operand::Const(c), sign)) => c
                .checked_mul(*f)
                .and_then(|d| d.checked_mul(sign))
                .is_some(),
            _ => true,
        }
    })
}
