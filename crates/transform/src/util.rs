//! Shared helpers for the transformation passes.

use std::collections::{HashMap, HashSet};

use biv_core::{Analysis, Class};
use biv_ir::{Block, Function, Operand, Terminator, Var};

/// Whether `op` is invariant in the given blocks: a constant, or a
/// variable with no definition inside them.
pub(crate) fn invariant_in(func: &Function, blocks: &[Block], op: &Operand) -> bool {
    match op {
        Operand::Const(_) => true,
        Operand::Var(v) => !blocks
            .iter()
            .any(|&b| func.blocks[b].insts.iter().any(|i| i.def() == Some(*v))),
    }
}

/// Whether `v` has no defining instruction anywhere in the function — a
/// parameter or an implicitly-zero live-in, so its value is fixed for the
/// whole execution and it can be read from any program point.
pub(crate) fn never_defined(func: &Function, v: Var) -> bool {
    func.blocks
        .iter()
        .all(|(_, data)| data.insts.iter().all(|i| i.def() != Some(v)))
}

/// The CFG variables whose SSA values classify as *additive* induction
/// variables (linear or polynomial closed forms; geometric excluded —
/// their update is multiplicative and strength reduction does not apply).
pub(crate) fn additive_iv_vars(analysis: &Analysis) -> HashSet<Var> {
    let mut out = HashSet::new();
    for (_, info) in analysis.loops() {
        for (v, class) in info.classes.iter() {
            if let Class::Induction(cf) = class {
                if cf.geo.is_empty() {
                    if let Some(var) = analysis.ssa().values[v].var {
                        out.insert(var);
                    }
                }
            }
        }
    }
    out
}

/// Clones every block of a loop: instructions and terminators are
/// copied, and in-loop successors are retargeted to their clones —
/// except the header, which the clones keep pointing at (the caller
/// decides how the copies are wired into the CFG). Returns the
/// original→clone map.
pub(crate) fn clone_loop_blocks(
    func: &mut Function,
    blocks: &[Block],
    header: Block,
) -> HashMap<Block, Block> {
    let mut clone_of: HashMap<Block, Block> = HashMap::new();
    for &b in blocks {
        clone_of.insert(b, func.new_block());
    }
    for &b in blocks {
        let copy = clone_of[&b];
        let insts = func.blocks[b].insts.clone();
        let mut term = func.blocks[b].term.clone();
        match &mut term {
            Terminator::Jump(t) => {
                if *t != header {
                    if let Some(&c) = clone_of.get(t) {
                        *t = c;
                    }
                }
            }
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                for t in [then_bb, else_bb] {
                    if *t != header {
                        if let Some(&c) = clone_of.get(t) {
                            *t = c;
                        }
                    }
                }
            }
            Terminator::Return => {}
        }
        func.blocks[copy].insts = insts;
        func.blocks[copy].term = term;
    }
    clone_of
}
