//! A deliberately broken transform, kept compiled (not test-gated) so
//! integration tests in other crates can prove the differential harness
//! detects miscompiles. Never called from the pipeline.

/// Miscompiling strength reduction: every temporary is initialized one
/// off (`t = x * f + 1`), so each reduced multiplication site observes a
/// skewed value. Returns the number of (mis)reduced multiplications —
/// when positive, a differential check against the original function
/// must fail on any input whose reduced loop runs and stores.
#[doc(hidden)]
pub fn broken_strength_reduce(func: &mut biv_ir::Function) -> usize {
    let analysis = biv_core::analyze(func);
    crate::sr::strength_reduce_pass(func, &analysis, 1)
}
