//! Loop transformations enabled by induction-variable analysis.
//!
//! The paper motivates classification with the optimizations it unlocks;
//! this crate implements five of them on the CFG, each *triggered* by the
//! classifier's result and *justified* syntactically per loop:
//!
//! - [`strength_reduce`] — the classical companion transformation (§1),
//!   generalized: any variable whose SSA values carry an additive closed
//!   form (linear **or** polynomial) is a candidate, and the multiplier
//!   may be any loop-invariant operand. Polynomial IVs reduce by
//!   chaining across passes.
//! - [`peel_first_iteration`] / [`peel_wraparounds`] — "the standard
//!   compiler trick, once a wrap-around variable is found, is to peel off
//!   the first iteration of the loop and replace the wrap-around variable
//!   with the appropriate induction variable" (§4.1).
//! - [`unroll_flip_flops`] — unroll-by-two for loops carrying a period-2
//!   periodic family (§4.2), so each copy sees one member of the family.
//! - [`eliminate_dead_ivs`] — linear-function test replacement followed
//!   by deletion of the now-dead induction variable (§1, §6).
//! - [`interchange_nests`] — dependence-driven loop interchange over
//!   canonical rectangular nests, legal when no direction vector has a
//!   `(<, >)` component in the two positions (§6, via `biv-depend`).
//!
//! [`optimize`] runs the whole pipeline in dependency order and returns a
//! [`TransformReport`]; [`optimize_batch`] adds differential-execution
//! validation ([`biv_core::validate`]) against the original function on
//! seeded inputs — every rewritten function is executed and its final
//! array state compared with the original's.
//!
//! [`insert_canonical_counter`] materializes the paper's basic loop
//! counter `h = (L, 0, 1)` that all induction expressions are implicitly
//! normalized to (§6.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canary;
mod deadiv;
mod interchange;
mod peel;
mod pipeline;
mod sr;
mod unroll;
mod util;

pub use deadiv::eliminate_dead_ivs;
pub use interchange::interchange_nests;
pub use peel::{
    insert_canonical_counter, peel_first_iteration, peel_header, peel_wraparounds, PeelOutcome,
};
pub use pipeline::{
    optimize, optimize_batch, optimize_with, FunctionOptimization, Optimized, TransformReport,
};
pub use sr::{strength_reduce, strength_reduce_with, MAX_PASSES};
pub use unroll::{unroll_by_two, unroll_flip_flops};

#[cfg(test)]
mod tests {
    use super::*;
    use biv_core::validate::{differential_check, ValidationOptions};
    use biv_ir::dom::DomTree;
    use biv_ir::interp::Interpreter;
    use biv_ir::loops::LoopForest;
    use biv_ir::parser::parse_program;
    use biv_ir::verify::verify_function;
    use biv_ir::{BinOp, Function, Inst};

    fn parse_one(src: &str) -> Function {
        parse_program(src).unwrap().functions[0].clone()
    }

    /// Differential check: identical final state on several inputs
    /// (arrays and the original's variables; new temporaries excluded).
    fn assert_equivalent(original: &Function, transformed: &Function, max_arg: i64) {
        let interp = Interpreter::new();
        for arg in [0, 1, 2, 3, 7, max_arg] {
            let a = interp.run(original, &[arg]).expect("original runs");
            let b = interp.run(transformed, &[arg]).expect("transformed runs");
            assert_eq!(a.arrays, b.arrays, "arrays differ for n={arg}");
            for (v, _) in original.vars.iter() {
                assert_eq!(
                    a.final_vars[biv_ir::EntityId::index(v)],
                    b.final_vars[biv_ir::EntityId::index(v)],
                    "variable {} differs for n={arg}",
                    original.var_name(v)
                );
            }
        }
    }

    /// Array-only differential check via the validation harness (for
    /// transforms that legitimately change scalar values, like dead-IV
    /// elimination).
    fn assert_observably_equivalent(original: &Function, transformed: &Function) {
        let verdict = differential_check(original, transformed, &ValidationOptions::default());
        assert!(verdict.passed(), "differential check: {}", verdict.render());
    }

    #[test]
    fn strength_reduction_eliminates_muls() {
        let src = r#"
            func f(n) {
                L1: for i = 1 to n {
                    j = 4 * i
                    A[j] = i
                    k = i * 8
                    B[k] = j
                }
            }
        "#;
        let original = parse_one(src);
        let mut transformed = original.clone();
        let reduced = strength_reduce(&mut transformed);
        assert_eq!(reduced, 2);
        verify_function(&transformed).unwrap();
        assert_equivalent(&original, &transformed, 25);
        // No multiplication by i remains in the loop.
        let header = transformed.block_by_label("L1").unwrap();
        let dom = DomTree::compute(&transformed);
        let forest = LoopForest::compute(&transformed, &dom);
        let (l, _) = forest.iter().find(|(_, d)| d.header == header).unwrap();
        let i_var = transformed.var_by_name("i").unwrap();
        for &b in &forest.data(l).blocks {
            for inst in &transformed.blocks[b].insts {
                if let Inst::Binary {
                    op: BinOp::Mul,
                    lhs,
                    rhs,
                    ..
                } = inst
                {
                    assert!(
                        lhs.as_var() != Some(i_var) && rhs.as_var() != Some(i_var),
                        "mul by i remains: {inst:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn strength_reduction_with_negative_step() {
        let src = r#"
            func f(n) {
                L1: for i = n to 1 by -1 {
                    j = 3 * i
                    A[j] = i
                }
            }
        "#;
        let original = parse_one(src);
        let mut transformed = original.clone();
        assert_eq!(strength_reduce(&mut transformed), 1);
        assert_equivalent(&original, &transformed, 13);
    }

    #[test]
    fn strength_reduction_reduces_polynomial_by_chaining() {
        // j accumulates i: a second-order (polynomial) IV. The first pass
        // leaves `%srd = i * 5` next to j's update; the second pass
        // reduces that multiplication of the *linear* IV i.
        let src = r#"
            func f(n) {
                j = 0
                L1: for i = 1 to n {
                    j = j + i
                    k = j * 5
                    A[k] = i
                }
            }
        "#;
        let original = parse_one(src);
        let mut transformed = original.clone();
        let reduced = strength_reduce(&mut transformed);
        assert!(reduced >= 2, "chained reduction, got {reduced}");
        verify_function(&transformed).unwrap();
        assert_equivalent(&original, &transformed, 9);
    }

    #[test]
    fn strength_reduction_with_invariant_factor() {
        let src = r#"
            func f(n, m) {
                L1: for i = 1 to n {
                    j = i * m
                    A[j] = i
                }
            }
        "#;
        let original = parse_one(src);
        let mut transformed = original.clone();
        assert_eq!(strength_reduce(&mut transformed), 1);
        verify_function(&transformed).unwrap();
        let interp = Interpreter::new();
        for (n, m) in [(0, 3), (1, 7), (5, 2), (9, 0)] {
            let a = interp.run(&original, &[n, m]).unwrap();
            let b = interp.run(&transformed, &[n, m]).unwrap();
            assert_eq!(a.arrays, b.arrays, "arrays differ for n={n}, m={m}");
        }
    }

    #[test]
    fn peel_preserves_semantics() {
        let src = r#"
            func f(n) {
                iml = n
                s = 0
                L9: for i = 1 to n {
                    A[i] = A[iml] + i
                    iml = i
                    s = s + A[i]
                }
            }
        "#;
        let original = parse_one(src);
        let mut transformed = original.clone();
        assert!(peel_first_iteration(&mut transformed, "L9").peeled());
        verify_function(&transformed).unwrap();
        assert_equivalent(&original, &transformed, 11);
    }

    #[test]
    fn peel_refines_wraparound_to_iv() {
        // Before peeling: j2 is a wrap-around; after peeling the paper's
        // trick applies and the in-loop phi refines to a plain IV.
        let src = r#"
            func f(n) {
                j = 100
                i = 1
                L10: loop {
                    A[j] = i
                    j = i
                    i = i + 1
                    if i > n { break }
                }
            }
        "#;
        let mut func = parse_one(src);
        let before = biv_core::analyze(&func);
        let j2 = before.ssa().value_by_name("j2").unwrap();
        assert!(matches!(
            before.class_of(j2).unwrap().1,
            biv_core::Class::WrapAround { .. }
        ));
        assert!(peel_first_iteration(&mut func, "L10").peeled());
        let after = biv_core::analyze(&func);
        // The loop's header phi for j is now a linear IV.
        let l10 = after.loop_by_label("L10").unwrap();
        let info = after.info(l10);
        let j_var = after.ssa().func().var_by_name("j").unwrap();
        let refined = info.classes.iter().any(|(v, c)| {
            after.ssa().values[v].var == Some(j_var)
                && matches!(c, biv_core::Class::Induction(cf) if cf.is_linear())
        });
        assert!(refined, "j should refine to a linear IV after peeling");
    }

    #[test]
    fn peel_wraparounds_is_classification_driven() {
        let src = r#"
            func f(n) {
                j = 100
                L10: for i = 1 to n {
                    A[j] = i
                    j = i
                }
                L20: for k = 1 to n {
                    B[k] = k
                }
            }
        "#;
        let original = parse_one(src);
        let mut transformed = original.clone();
        let analysis = biv_core::analyze(&transformed);
        // Only the wrap-around loop is peeled, not the plain one.
        assert_eq!(peel_wraparounds(&mut transformed, &analysis), 1);
        verify_function(&transformed).unwrap();
        assert_observably_equivalent(&original, &transformed);
    }

    #[test]
    fn unroll_flip_flop_by_two() {
        // The copy-swap idiom is the one the classifier recognizes as a
        // period-2 periodic family (`1 - ff` resolves to a geometric
        // closed form instead and needs no unrolling).
        let src = r#"
            func f(n) {
                a = 3
                b = 5
                L1: for i = 1 to n {
                    A[i] = a
                    t = a
                    a = b
                    b = t
                }
            }
        "#;
        let original = parse_one(src);
        let mut transformed = original.clone();
        let analysis = biv_core::analyze(&transformed);
        assert_eq!(unroll_flip_flops(&mut transformed, &analysis), 1);
        verify_function(&transformed).unwrap();
        // Both copies keep their exit tests, so odd and even trip counts
        // (and zero) must all agree.
        assert_equivalent(&original, &transformed, 11);
        assert_equivalent(&original, &transformed, 12);
    }

    #[test]
    fn dead_iv_eliminated_after_test_replacement() {
        let src = r#"
            func f(n) {
                L1: for i = 1 to n {
                    j = i * 4
                    A[j] = j
                }
            }
        "#;
        let original = parse_one(src);
        let result = optimize(&original);
        assert!(result.report.strength_reduced >= 1);
        assert_eq!(result.report.dead_ivs, 1, "{}", result.report.render());
        verify_function(&result.func).unwrap();
        assert_observably_equivalent(&original, &result.func);
        // i's update is gone: no definition of i remains inside the loop.
        let transformed = &result.func;
        let header = transformed.block_by_label("L1").unwrap();
        let dom = DomTree::compute(transformed);
        let forest = LoopForest::compute(transformed, &dom);
        let (l, _) = forest.iter().find(|(_, d)| d.header == header).unwrap();
        let i_var = transformed.var_by_name("i").unwrap();
        for &b in &forest.data(l).blocks {
            for inst in &transformed.blocks[b].insts {
                assert_ne!(inst.def(), Some(i_var), "def of i remains: {inst:?}");
            }
        }
    }

    #[test]
    fn dead_iv_kept_when_observed_after_loop() {
        let src = r#"
            func f(n) {
                L1: for i = 1 to n {
                    j = i * 4
                    A[j] = j
                }
                B[0] = i
            }
        "#;
        let original = parse_one(src);
        let result = optimize(&original);
        assert_eq!(result.report.dead_ivs, 0, "i is live-out");
        assert_observably_equivalent(&original, &result.func);
    }

    #[test]
    fn interchange_transposes_column_major_nest() {
        let src = r#"
            func f(n) {
                L1: for i = 1 to n {
                    L2: for j = 1 to n {
                        A[j, i] = i + j
                    }
                }
            }
        "#;
        let original = parse_one(src);
        let mut transformed = original.clone();
        let analysis = biv_core::analyze(&transformed);
        assert_eq!(interchange_nests(&mut transformed, &analysis), 1);
        verify_function(&transformed).unwrap();
        assert_observably_equivalent(&original, &transformed);
        // The outer header now tests the (formerly inner) variable j.
        let ho = transformed.block_by_label("L1").unwrap();
        let j_var = transformed.var_by_name("j").unwrap();
        match &transformed.blocks[ho].term {
            biv_ir::Terminator::Branch { lhs, .. } => {
                assert_eq!(lhs.as_var(), Some(j_var), "outer test drives j");
            }
            t => panic!("outer header should branch, got {t:?}"),
        }
    }

    #[test]
    fn interchange_rejects_row_major_nest() {
        // Already row-major: not profitable, so the nest is left alone.
        let src = r#"
            func f(n) {
                L1: for i = 1 to n {
                    L2: for j = 1 to n {
                        A[i, j] = i + j
                    }
                }
            }
        "#;
        let mut func = parse_one(src);
        let analysis = biv_core::analyze(&func);
        assert_eq!(interchange_nests(&mut func, &analysis), 0);
    }

    #[test]
    fn interchange_rejects_carried_dependence() {
        // A[j+1, i] written, A[j, i] read: carried by the inner loop with
        // direction (=, <); after interchange it would flip to (<, >) —
        // illegal, so the nest must be left alone even though the access
        // order looks column-major.
        let src = r#"
            func f(n) {
                L1: for i = 1 to n {
                    L2: for j = 1 to n {
                        t = A[j, i]
                        A[j + 1, i] = t + 1
                    }
                }
            }
        "#;
        let mut func = parse_one(src);
        let analysis = biv_core::analyze(&func);
        let before = func.clone();
        interchange_nests(&mut func, &analysis);
        // Whether rejected for legality or shape, semantics must hold.
        assert_observably_equivalent(&before, &func);
    }

    #[test]
    fn pipeline_reports_and_validates() {
        let src = r#"
            func f(n) {
                j = 100
                L10: for i = 1 to n {
                    A[j] = i
                    j = i
                    k = i * 8
                    B[k] = i
                }
            }
        "#;
        let original = parse_one(src);
        let result = optimize(&original);
        assert!(result.report.peeled >= 1, "{}", result.report.render());
        assert!(
            result.report.strength_reduced >= 1,
            "{}",
            result.report.render()
        );
        verify_function(&result.func).unwrap();
        assert_observably_equivalent(&original, &result.func);
    }

    #[test]
    fn optimize_batch_is_deterministic_across_jobs() {
        let srcs = [
            "func a(n) { L1: for i = 1 to n { j = i * 4  A[j] = i } }",
            "func b(n) { x = 3  y = 5  L1: for i = 1 to n { A[i] = x  t = x  x = y  y = t } }",
            "func c(n) { j = 100  L1: for i = 1 to n { A[j] = i  j = i } }",
            "func d(n) { L1: for i = 1 to n { L2: for j = 1 to n { M[j, i] = i } } }",
        ];
        let funcs: Vec<Function> = srcs.iter().map(|s| parse_one(s)).collect();
        let vopts = ValidationOptions::default();
        let config = biv_core::AnalysisConfig::default();
        let base = optimize_batch(&funcs, 1, &vopts, config);
        for jobs in [2, 4] {
            let other = optimize_batch(&funcs, jobs, &vopts, config);
            assert_eq!(base.len(), other.len());
            for (a, b) in base.iter().zip(&other) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.report, b.report);
                assert_eq!(
                    biv_ir::print::function_to_string(&a.func),
                    biv_ir::print::function_to_string(&b.func),
                    "function {} differs across job counts",
                    a.name
                );
            }
        }
        for r in &base {
            assert!(r.verdict.passed(), "{}: {}", r.name, r.verdict.render());
        }
    }

    #[test]
    fn canary_miscompile_is_caught() {
        let src = r#"
            func f(n) {
                L1: for i = 1 to n {
                    j = i * 4
                    A[j] = i
                }
            }
        "#;
        let original = parse_one(src);
        let mut broken = original.clone();
        assert!(canary::broken_strength_reduce(&mut broken) > 0);
        let verdict = differential_check(&original, &broken, &ValidationOptions::default());
        assert!(
            verdict.failed(),
            "harness must catch the canary: {}",
            verdict.render()
        );
    }

    #[test]
    fn canonical_counter_matches_iteration_index() {
        let src = r#"
            func f(n) {
                L1: for i = 5 to n by 3 {
                    A[i] = i
                }
            }
        "#;
        let mut func = parse_one(src);
        let h = insert_canonical_counter(&mut func, "L1").unwrap();
        verify_function(&func).unwrap();
        let trace = Interpreter::new().run(&func, &[20]).unwrap();
        // i takes 5, 8, 11, 14, 17, 20 → 6 iterations; h ends at 6.
        assert_eq!(trace.final_vars[biv_ir::EntityId::index(h)], 6);
        // And the classifier sees h = (L1, 0, 1).
        let analysis = biv_core::analyze(&func);
        let l1 = analysis.loop_by_label("L1").unwrap();
        let info = analysis.info(l1);
        let found = info.classes.iter().any(|(v, c)| {
            analysis.ssa().values[v].var == analysis.ssa().func().var_by_name("%h_L1")
                && matches!(c, biv_core::Class::Induction(cf)
                    if cf.is_linear()
                    && cf.coeffs[0].is_zero()
                    && cf.coeffs[1].constant_value()
                        == Some(biv_algebra::Rational::ONE))
        });
        assert!(found, "h classifies as (L1, 0, 1)");
    }

    #[test]
    fn peel_unknown_label_is_noop() {
        let src = "func f(n) { L1: for i = 1 to n { x = i } }";
        let mut func = parse_one(src);
        assert_eq!(
            peel_first_iteration(&mut func, "NOPE"),
            PeelOutcome::UnknownLabel
        );
        assert!(!peel_first_iteration(&mut func, "NOPE").peeled());
    }
}
