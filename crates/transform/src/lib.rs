//! Loop transformations enabled by induction-variable analysis.
//!
//! The paper motivates classification with the optimizations it unlocks;
//! this crate implements three of them on the CFG:
//!
//! - [`strength_reduce`] — the classical companion transformation (§1):
//!   `j = c * i` with `i` a basic induction variable becomes an
//!   incremented temporary;
//! - [`peel_first_iteration`] — "the standard compiler trick, once a
//!   wrap-around variable is found, is to peel off the first iteration of
//!   the loop and replace the wrap-around variable with the appropriate
//!   induction variable" (§4.1);
//! - [`insert_canonical_counter`] — materializes the paper's basic loop
//!   counter `h = (L, 0, 1)` that all induction expressions are
//!   implicitly normalized to (§6.1).
//!
//! Every transformation preserves semantics; the test suite checks this
//! by differential interpretation against the original function.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use biv_classic::{detect, IvKind};
use biv_ir::dom::DomTree;
use biv_ir::loops::{Loop, LoopForest};
use biv_ir::{BinOp, Block, Function, Inst, Operand, Terminator, Var};

/// Applies classical strength reduction to every loop: multiplications of
/// a basic induction variable by a constant become additively maintained
/// temporaries. Returns the number of multiplications eliminated.
///
/// Soundness: the temporary is initialized in the preheader and updated
/// immediately after every definition of the induction variable, so
/// `t == i*c` holds at every point where the original multiplication
/// executed.
pub fn strength_reduce(func: &mut Function) -> usize {
    let dom = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dom);
    let report = detect(func);
    let mut reduced = 0;
    for loop_report in &report.loops {
        let l = loop_report.loop_id;
        let Some(preheader) = forest.preheader(func, l) else {
            continue;
        };
        let basic: Vec<Var> = loop_report
            .ivs
            .iter()
            .filter(|iv| matches!(iv.kind, IvKind::Basic { step: Some(_) }))
            .map(|iv| iv.var)
            .collect();
        for var in basic {
            reduced += reduce_var(func, &forest, l, preheader, var);
        }
    }
    reduced
}

fn reduce_var(
    func: &mut Function,
    forest: &LoopForest,
    l: Loop,
    preheader: Block,
    var: Var,
) -> usize {
    // Find candidate multiplications `dst = var * c` / `dst = c * var`
    // inside the loop.
    let blocks: Vec<Block> = forest.data(l).blocks.clone();
    let mut candidates: Vec<(Block, usize, i64)> = Vec::new();
    for &b in &blocks {
        for (i, inst) in func.blocks[b].insts.iter().enumerate() {
            if let Inst::Binary {
                op: BinOp::Mul,
                lhs,
                rhs,
                ..
            } = inst
            {
                let c = match (lhs, rhs) {
                    (Operand::Var(v), Operand::Const(c)) if *v == var => Some(*c),
                    (Operand::Const(c), Operand::Var(v)) if *v == var => Some(*c),
                    _ => None,
                };
                if let Some(c) = c {
                    candidates.push((b, i, c));
                }
            }
        }
    }
    if candidates.is_empty() {
        return 0;
    }
    let count = candidates.len();
    // One temporary per distinct constant.
    let mut temp_for: HashMap<i64, Var> = HashMap::new();
    let constants: Vec<i64> = {
        let mut cs: Vec<i64> = candidates.iter().map(|&(_, _, c)| c).collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    };
    for &c in &constants {
        let t = func.new_var(format!("%sr_{}_{c}", func.vars[var].name.replace('%', "")));
        temp_for.insert(c, t);
        // Initialize in the preheader: t = var * c.
        func.blocks[preheader].insts.push(Inst::Binary {
            dst: t,
            op: BinOp::Mul,
            lhs: Operand::Var(var),
            rhs: Operand::Const(c),
        });
    }
    // Update after every in-loop definition of var: t = t + step*c where
    // step is that definition's increment. Walk and rewrite each block.
    for &b in &blocks {
        let mut i = 0;
        while i < func.blocks[b].insts.len() {
            let inst = func.blocks[b].insts[i].clone();
            let step: Option<i64> = match &inst {
                Inst::Binary {
                    dst,
                    op: BinOp::Add,
                    lhs,
                    rhs,
                } if *dst == var => match (lhs, rhs) {
                    (Operand::Var(v), Operand::Const(c)) if *v == var => Some(*c),
                    (Operand::Const(c), Operand::Var(v)) if *v == var => Some(*c),
                    _ => None,
                },
                Inst::Binary {
                    dst,
                    op: BinOp::Sub,
                    lhs,
                    rhs,
                } if *dst == var => match (lhs, rhs) {
                    (Operand::Var(v), Operand::Const(c)) if *v == var => c.checked_neg(),
                    _ => None,
                },
                _ => None,
            };
            if let Some(step) = step {
                // Insert updates right after the increment.
                let mut insert_at = i + 1;
                for &c in &constants {
                    let t = temp_for[&c];
                    let Some(delta) = step.checked_mul(c) else {
                        continue;
                    };
                    func.blocks[b].insts.insert(
                        insert_at,
                        Inst::Binary {
                            dst: t,
                            op: BinOp::Add,
                            lhs: Operand::Var(t),
                            rhs: Operand::Const(delta),
                        },
                    );
                    insert_at += 1;
                }
                i = insert_at;
                continue;
            }
            i += 1;
        }
    }
    // Replace the multiplications by copies from the temporaries.
    for &b in &blocks {
        for inst in &mut func.blocks[b].insts {
            if let Inst::Binary {
                dst,
                op: BinOp::Mul,
                lhs,
                rhs,
            } = inst
            {
                let c = match (&lhs, &rhs) {
                    (Operand::Var(v), Operand::Const(c)) if *v == var => Some(*c),
                    (Operand::Const(c), Operand::Var(v)) if *v == var => Some(*c),
                    _ => None,
                };
                if let Some(c) = c {
                    *inst = Inst::Copy {
                        dst: *dst,
                        src: Operand::Var(temp_for[&c]),
                    };
                }
            }
        }
    }
    count
}

/// Peels the first iteration of the loop whose header carries
/// `header_label`: the loop body is duplicated before the loop, with the
/// duplicate's back edge targeting the original header. Returns `false`
/// when the label does not name a simplified loop.
///
/// This is the §4.1 enabling transformation: after peeling, a wrap-around
/// variable's initial value lies on the induction sequence, so the
/// classifier refines it to a plain induction variable.
pub fn peel_first_iteration(func: &mut Function, header_label: &str) -> bool {
    let dom = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dom);
    let Some(header) = func.block_by_label(header_label) else {
        return false;
    };
    let Some((l, _)) = forest.iter().find(|(_, d)| d.header == header) else {
        return false;
    };
    let Some(preheader) = forest.preheader(func, l) else {
        return false;
    };
    let loop_blocks: Vec<Block> = forest.data(l).blocks.clone();
    // Clone each loop block (instructions + terminator).
    let mut clone_of: HashMap<Block, Block> = HashMap::new();
    for &b in &loop_blocks {
        let copy = func.new_block();
        clone_of.insert(b, copy);
    }
    for &b in &loop_blocks {
        let copy = clone_of[&b];
        let insts = func.blocks[b].insts.clone();
        let mut term = func.blocks[b].term.clone();
        // In-loop successors map to their clones — except the header: the
        // clone's back edge enters the original loop.
        match &mut term {
            Terminator::Jump(t) => {
                if *t != header {
                    if let Some(&c) = clone_of.get(t) {
                        *t = c;
                    }
                }
            }
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                for t in [then_bb, else_bb] {
                    if *t != header {
                        if let Some(&c) = clone_of.get(t) {
                            *t = c;
                        }
                    }
                }
            }
            Terminator::Return => {}
        }
        func.blocks[copy].insts = insts;
        func.blocks[copy].term = term;
    }
    // The preheader now enters the peeled copy.
    func.blocks[preheader]
        .term
        .replace_successor(header, clone_of[&header]);
    true
}

/// Inserts the canonical loop counter `h = (L, 0, 1)` for the labeled
/// loop: `h = 0` in the preheader and `h = h + 1` at the top of the
/// latch. Returns the new variable, or `None` when the label does not
/// name a simplified single-latch loop.
pub fn insert_canonical_counter(func: &mut Function, header_label: &str) -> Option<Var> {
    let dom = DomTree::compute(func);
    let forest = LoopForest::compute(func, &dom);
    let header = func.block_by_label(header_label)?;
    let (l, _) = forest.iter().find(|(_, d)| d.header == header)?;
    let preheader = forest.preheader(func, l)?;
    let latch = forest.single_latch(l)?;
    let h = func.new_var(format!("%h_{header_label}"));
    func.blocks[preheader].insts.push(Inst::Copy {
        dst: h,
        src: Operand::Const(0),
    });
    func.blocks[latch].insts.push(Inst::Binary {
        dst: h,
        op: BinOp::Add,
        lhs: Operand::Var(h),
        rhs: Operand::Const(1),
    });
    Some(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use biv_ir::interp::Interpreter;
    use biv_ir::parser::parse_program;
    use biv_ir::verify::verify_function;

    /// Differential check: identical final state on several inputs.
    fn assert_equivalent(original: &Function, transformed: &Function, max_arg: i64) {
        let interp = Interpreter::new();
        for arg in [0, 1, 2, 3, 7, max_arg] {
            let a = interp.run(original, &[arg]).expect("original runs");
            let b = interp.run(transformed, &[arg]).expect("transformed runs");
            assert_eq!(a.arrays, b.arrays, "arrays differ for n={arg}");
            // Compare variables common to both (new temps excluded).
            for (v, _) in original.vars.iter() {
                assert_eq!(
                    a.final_vars[biv_ir::EntityId::index(v)],
                    b.final_vars[biv_ir::EntityId::index(v)],
                    "variable {} differs for n={arg}",
                    original.var_name(v)
                );
            }
        }
    }

    #[test]
    fn strength_reduction_eliminates_muls() {
        let src = r#"
            func f(n) {
                L1: for i = 1 to n {
                    j = 4 * i
                    A[j] = i
                    k = i * 8
                    B[k] = j
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let original = program.functions[0].clone();
        let mut transformed = original.clone();
        let reduced = strength_reduce(&mut transformed);
        assert_eq!(reduced, 2);
        verify_function(&transformed).unwrap();
        assert_equivalent(&original, &transformed, 25);
        // No multiplication by i remains in the loop.
        let header = transformed.block_by_label("L1").unwrap();
        let dom = DomTree::compute(&transformed);
        let forest = LoopForest::compute(&transformed, &dom);
        let (l, _) = forest.iter().find(|(_, d)| d.header == header).unwrap();
        let i_var = transformed.var_by_name("i").unwrap();
        for &b in &forest.data(l).blocks {
            for inst in &transformed.blocks[b].insts {
                if let Inst::Binary {
                    op: BinOp::Mul,
                    lhs,
                    rhs,
                    ..
                } = inst
                {
                    assert!(
                        lhs.as_var() != Some(i_var) && rhs.as_var() != Some(i_var),
                        "mul by i remains: {inst:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn strength_reduction_with_negative_step() {
        let src = r#"
            func f(n) {
                L1: for i = n to 1 by -1 {
                    j = 3 * i
                    A[j] = i
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let original = program.functions[0].clone();
        let mut transformed = original.clone();
        assert_eq!(strength_reduce(&mut transformed), 1);
        assert_equivalent(&original, &transformed, 13);
    }

    #[test]
    fn peel_preserves_semantics() {
        let src = r#"
            func f(n) {
                iml = n
                s = 0
                L9: for i = 1 to n {
                    A[i] = A[iml] + i
                    iml = i
                    s = s + A[i]
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let original = program.functions[0].clone();
        let mut transformed = original.clone();
        assert!(peel_first_iteration(&mut transformed, "L9"));
        verify_function(&transformed).unwrap();
        assert_equivalent(&original, &transformed, 11);
    }

    #[test]
    fn peel_refines_wraparound_to_iv() {
        // Before peeling: j2 is a wrap-around; after peeling the paper's
        // trick applies and the in-loop phi refines to a plain IV.
        let src = r#"
            func f(n) {
                j = 100
                i = 1
                L10: loop {
                    A[j] = i
                    j = i
                    i = i + 1
                    if i > n { break }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let mut func = program.functions[0].clone();
        let before = biv_core::analyze(&func);
        let j2 = before.ssa().value_by_name("j2").unwrap();
        assert!(matches!(
            before.class_of(j2).unwrap().1,
            biv_core::Class::WrapAround { .. }
        ));
        assert!(peel_first_iteration(&mut func, "L10"));
        let after = biv_core::analyze(&func);
        // The loop's header phi for j is now a linear IV.
        let l10 = after.loop_by_label("L10").unwrap();
        let info = after.info(l10);
        let j_var = after.ssa().func().var_by_name("j").unwrap();
        let refined = info.classes.iter().any(|(v, c)| {
            after.ssa().values[v].var == Some(j_var)
                && matches!(c, biv_core::Class::Induction(cf) if cf.is_linear())
        });
        assert!(refined, "j should refine to a linear IV after peeling");
    }

    #[test]
    fn canonical_counter_matches_iteration_index() {
        let src = r#"
            func f(n) {
                L1: for i = 5 to n by 3 {
                    A[i] = i
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let mut func = program.functions[0].clone();
        let h = insert_canonical_counter(&mut func, "L1").unwrap();
        verify_function(&func).unwrap();
        let trace = Interpreter::new().run(&func, &[20]).unwrap();
        // i takes 5, 8, 11, 14, 17, 20 → 6 iterations; h ends at 6.
        assert_eq!(trace.final_vars[biv_ir::EntityId::index(h)], 6);
        // And the classifier sees h = (L1, 0, 1).
        let analysis = biv_core::analyze(&func);
        let l1 = analysis.loop_by_label("L1").unwrap();
        let info = analysis.info(l1);
        let found = info.classes.iter().any(|(v, c)| {
            analysis.ssa().values[v].var == analysis.ssa().func().var_by_name("%h_L1")
                && matches!(c, biv_core::Class::Induction(cf)
                    if cf.is_linear()
                    && cf.coeffs[0].is_zero()
                    && cf.coeffs[1].constant_value()
                        == Some(biv_algebra_one()))
        });
        assert!(found, "h classifies as (L1, 0, 1)");
    }

    fn biv_algebra_one() -> biv_algebra::Rational {
        biv_algebra::Rational::ONE
    }

    #[test]
    fn peel_unknown_label_is_noop() {
        let src = "func f(n) { L1: for i = 1 to n { x = i } }";
        let program = parse_program(src).unwrap();
        let mut func = program.functions[0].clone();
        assert!(!peel_first_iteration(&mut func, "NOPE"));
    }
}
