//! The `--optimize` pipeline: classification-driven transformations,
//! self-checked by differential execution.
//!
//! Order matters. Interchange runs first, while the nest still has the
//! pristine shape `lower_for` emitted (strength reduction would add
//! maintenance code to the outer latch and break the canonical-shape
//! match). Peeling and unrolling come next — they duplicate blocks, so
//! they run before strength reduction doubles the code under them.
//! Strength reduction then iterates to its polynomial fixed point, and
//! dead-IV elimination last consumes the strength-reduced temporaries
//! for linear-function test replacement. The function is re-analyzed
//! after every stage that changed it.
//!
//! Every transformed function can be validated against its original in
//! the IR interpreter ([`biv_core::validate`]); the batch driver does
//! this for every function it rewrites.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use biv_core::validate::{differential_check, ValidationOptions, Verdict};
use biv_core::{analyze_with, Analysis, AnalysisConfig};
use biv_ir::Function;

use crate::deadiv::eliminate_dead_ivs;
use crate::interchange::interchange_nests;
use crate::peel::peel_wraparounds;
use crate::sr::{strength_reduce_with, MAX_PASSES};
use crate::unroll::unroll_flip_flops;

/// Per-transform application counts for one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// Multiplications eliminated by strength reduction.
    pub strength_reduced: usize,
    /// Loops peeled for wrap-around variables.
    pub peeled: usize,
    /// Flip-flop loops unrolled by two.
    pub unrolled: usize,
    /// Induction variables deleted after test replacement.
    pub dead_ivs: usize,
    /// Loop nests interchanged.
    pub interchanged: usize,
    /// All transforms were skipped because the analysis breached its
    /// resource budget (degraded `Unknown` classes are not a license to
    /// transform).
    pub budget_skipped: bool,
}

impl TransformReport {
    /// Total number of transform applications.
    pub fn total(&self) -> usize {
        self.strength_reduced + self.peeled + self.unrolled + self.dead_ivs + self.interchanged
    }

    /// The number of distinct transform kinds applied at least once.
    pub fn kinds_applied(&self) -> usize {
        [
            self.strength_reduced,
            self.peeled,
            self.unrolled,
            self.dead_ivs,
            self.interchanged,
        ]
        .iter()
        .filter(|&&n| n > 0)
        .count()
    }

    /// Accumulates another report into this one.
    pub fn merge(&mut self, other: &TransformReport) {
        self.strength_reduced += other.strength_reduced;
        self.peeled += other.peeled;
        self.unrolled += other.unrolled;
        self.dead_ivs += other.dead_ivs;
        self.interchanged += other.interchanged;
        self.budget_skipped |= other.budget_skipped;
    }

    /// One-line rendering, `sr=2 peel=1 unroll=0 deadiv=1 interchange=0`.
    pub fn render(&self) -> String {
        let mut s = format!(
            "sr={} peel={} unroll={} deadiv={} interchange={}",
            self.strength_reduced, self.peeled, self.unrolled, self.dead_ivs, self.interchanged
        );
        if self.budget_skipped {
            s.push_str(" (budget-skipped)");
        }
        s
    }
}

/// A transformed function together with what was done to it.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The rewritten function (the original is untouched).
    pub func: Function,
    /// What the pipeline applied.
    pub report: TransformReport,
}

/// Runs the full transformation pipeline on a copy of `func` under the
/// default analysis configuration.
pub fn optimize(func: &Function) -> Optimized {
    optimize_with(func, AnalysisConfig::default())
}

/// Runs the full transformation pipeline on a copy of `func`, analyzing
/// under `config` between stages.
pub fn optimize_with(func: &Function, config: AnalysisConfig) -> Optimized {
    let mut out = func.clone();
    let mut report = TransformReport::default();
    let mut analysis = analyze_with(&out, config);
    if !analysis.budget_breaches().is_empty() {
        // Budget-degraded classes are `Unknown`, which would silently
        // shrink the candidate sets; refuse to transform at all rather
        // than transform inconsistently.
        report.budget_skipped = true;
        return Optimized { func: out, report };
    }
    let refresh = |out: &Function, changed: usize, analysis: &mut Analysis| {
        if changed > 0 {
            *analysis = analyze_with(out, config);
        }
    };
    report.interchanged = interchange_nests(&mut out, &analysis);
    refresh(&out, report.interchanged, &mut analysis);
    report.peeled = peel_wraparounds(&mut out, &analysis);
    refresh(&out, report.peeled, &mut analysis);
    report.unrolled = unroll_flip_flops(&mut out, &analysis);
    refresh(&out, report.unrolled, &mut analysis);
    for _ in 0..MAX_PASSES {
        let n = strength_reduce_with(&mut out, &analysis);
        if n == 0 {
            break;
        }
        report.strength_reduced += n;
        analysis = analyze_with(&out, config);
    }
    report.dead_ivs = eliminate_dead_ivs(&mut out, &analysis);
    Optimized { func: out, report }
}

/// One function's outcome from [`optimize_batch`].
#[derive(Debug, Clone)]
pub struct FunctionOptimization {
    /// The function's name.
    pub name: String,
    /// What the pipeline applied.
    pub report: TransformReport,
    /// The differential-execution verdict against the original.
    pub verdict: Verdict,
    /// The rewritten function.
    pub func: Function,
}

/// Optimizes and validates a batch of functions across `jobs` worker
/// threads. The output is in input order and byte-for-byte independent
/// of `jobs`: workers claim indices from a shared cursor and results are
/// reordered by slot.
pub fn optimize_batch(
    funcs: &[Function],
    jobs: usize,
    vopts: &ValidationOptions,
    config: AnalysisConfig,
) -> Vec<FunctionOptimization> {
    let one = |func: &Function| {
        let optimized = optimize_with(func, config);
        let verdict = if optimized.report.total() > 0 {
            differential_check(func, &optimized.func, vopts)
        } else {
            // Untouched functions are vacuously valid; skip the runs.
            Verdict::Validated {
                runs: 0,
                skipped: 0,
            }
        };
        FunctionOptimization {
            name: func.name().to_string(),
            report: optimized.report,
            verdict,
            func: optimized.func,
        }
    };
    let jobs = jobs.min(funcs.len()).max(1);
    if funcs.len() <= 1 || jobs == 1 {
        return funcs.iter().map(one).collect();
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let cursor = &cursor;
        let one = &one;
        let (tx, rx) = mpsc::channel::<(usize, FunctionOptimization)>();
        for _ in 0..jobs {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= funcs.len() {
                    break;
                }
                if tx.send((k, one(&funcs[k]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<FunctionOptimization>> = vec![None; funcs.len()];
        for (k, result) in rx {
            slots[k] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    })
}
