//! A minimal JSON value, parser, and writer.
//!
//! The workspace builds in fully offline environments, so the wire
//! protocol cannot pull in `serde`. This module provides the small
//! subset the protocol needs: a [`Json`] tree, a recursive-descent
//! parser with a nesting-depth bound, and a deterministic writer
//! (objects keep insertion order, so encoded frames are stable).

use std::fmt;

/// A parsed JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that fits an `i64` exactly.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses beyond this nesting depth fail instead of risking the stack.
const MAX_DEPTH: usize = 128;

impl Json {
    /// Builds an object from pairs; a convenience for protocol encoders.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (one value, then end of input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after value"));
        }
        Ok(value)
    }

    /// Serializes to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multibyte UTF-8: the input is a `&str`, so continuation
                // bytes are structurally valid; copy the whole scalar.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                b => out.push(b as char),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let v = Json::obj(vec![
            ("op", Json::Str("analyze".into())),
            (
                "files",
                Json::Arr(vec![Json::obj(vec![
                    ("path", Json::Str("a/b.biv".into())),
                    ("source", Json::Str("func f(n) { }\n\tütf✓".into())),
                ])]),
            ),
            ("cache_cap", Json::Int(4096)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        let text = v.to_text();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v = Json::parse(r#""a\nb\t\"q\" é 😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\nb\t\"q\" é 😀");
    }

    #[test]
    fn numbers_split_int_and_float() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\":}", "01x", "{} {}", "\u{1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse(r#"{"a": 1, "b": [true], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }
}
