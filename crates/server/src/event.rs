//! The readiness-driven front-end (Linux): one thread, an epoll set,
//! every connection nonblocking.
//!
//! The threaded front-end burns a stack per connection, which caps how
//! many idle clients a daemon can hold open. Here the event loop owns
//! *all* connection I/O — accept, framed reads, framed writes — and
//! only analysis leaves the thread, through the same bounded queue and
//! worker pool the threaded mode uses. Workers hand results back via a
//! completion queue plus an eventfd waker; the loop writes them out
//! when the socket is ready. Ten thousand idle connections cost ten
//! thousand fds and `ConnState`s, not ten thousand threads.
//!
//! Per-connection state machine:
//!
//! ```text
//!   readable ──→ read_buf ──(full frame? no job in flight?)──→ decode
//!      decode ──→ inline (ping/stats/shutdown/redirect): bytes queued
//!             └─→ queued job: `pending = seq`, decode pauses
//!   completion (worker, via eventfd) ──(seq matches?)──→ bytes queued
//!                                        └─ stale ──→ late_results
//!   deadline ──→ timeout response queued, job marked stale
//!   bytes queued ──→ optimistic write, EPOLLOUT while unflushed
//! ```
//!
//! Decode pauses while a job is in flight so each connection sees
//! responses in request order — the same order the threaded mode's
//! one-thread-per-connection loop produces. All response bytes come
//! from [`crate::server::route_request`] and the shared worker pool, so
//! the two front-ends answer byte-identical responses.
//!
//! Drain mirrors the threaded mode: stop accepting, answer every
//! accepted job, reject frames that arrive after drain with an explicit
//! `draining` error, and give mid-frame or unread-response peers a
//! bounded grace before closing on them.
//!
//! The syscall layer declares `epoll_create1`/`epoll_ctl`/`epoll_wait`/
//! `eventfd` directly, in the spirit of [`crate::signal`] — the
//! workspace builds offline with zero external dependencies, and the C
//! library is linked into every Rust binary anyway.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::net::{Conn, Endpoint, Listener};
use crate::proto::{Request, Response};
use crate::server::{
    draining_response, route_request, submit_job, timeout_response, worker_loop, ReplySink, Routed,
    ServeSummary, ServerConfig, Shared,
};

/// Raw epoll/eventfd declarations. No `libc` crate — see the module
/// docs. Constants match the Linux UAPI headers.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// `struct epoll_event`. The x86-64 kernel ABI packs it (a 12-byte
    /// struct); other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// Creates the epoll instance (close-on-exec).
    pub fn create() -> io::Result<OwnedFd> {
        // SAFETY: plain syscall; a valid return is a fresh fd we own.
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    /// Creates the wake eventfd (close-on-exec, nonblocking so a
    /// defensive drain of an empty counter cannot hang the loop).
    pub fn new_eventfd() -> io::Result<OwnedFd> {
        // SAFETY: plain syscall; a valid return is a fresh fd we own.
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    /// One `epoll_ctl` operation; `events`/`data` are ignored for DEL.
    pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut event = EpollEvent { events, data };
        let eventp = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut event as *mut EpollEvent
        };
        // SAFETY: `eventp` is null (DEL) or points at a live stack value
        // for the duration of the call.
        check(unsafe { epoll_ctl(epfd, op, fd, eventp) }).map(|_| ())
    }

    /// Waits for readiness, filling `events`; returns how many fired.
    pub fn wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the pointer/length pair describes the caller's live
        // buffer; the kernel writes at most `maxevents` entries.
        let n = check(unsafe {
            epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
        })?;
        Ok(n as usize)
    }
}

/// Token of the listening socket in the epoll set.
const TOKEN_LISTENER: u64 = 0;
/// Token of the eventfd waker.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;
/// Read chunk size; one scratch buffer is shared by every connection.
const READ_CHUNK: usize = 64 * 1024;
/// Readiness events drained per `epoll_wait` (level-triggered, so a
/// busier set simply fills the next wait).
const MAX_EVENTS: usize = 256;

/// The epoll set.
struct Epoll(std::os::fd::OwnedFd);

impl Epoll {
    fn new() -> io::Result<Epoll> {
        sys::create().map(Epoll)
    }

    fn add(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
        sys::ctl(self.0.as_raw_fd(), sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
        sys::ctl(self.0.as_raw_fd(), sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn del(&self, fd: i32) -> io::Result<()> {
        sys::ctl(self.0.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        sys::wait(self.0.as_raw_fd(), events, timeout_ms)
    }
}

/// Finished worker results on their way back to the loop: the shared
/// queue plus the eventfd that wakes `epoll_wait` when one lands.
struct Completions {
    queue: Mutex<Vec<(u64, u64, Response)>>,
    waker: File,
}

impl Completions {
    fn new() -> io::Result<Completions> {
        Ok(Completions {
            queue: Mutex::new(Vec::new()),
            waker: File::from(sys::new_eventfd()?),
        })
    }

    /// Called from worker threads: park the response, wake the loop.
    fn push(&self, token: u64, seq: u64, response: Response) {
        self.queue
            .lock()
            .expect("completion queue poisoned")
            .push((token, seq, response));
        // An eventfd write is an 8-byte counter add; failure (only a
        // full counter) still leaves the queued completion visible to
        // the next poll-interval wakeup.
        let _ = (&self.waker).write_all(&1u64.to_ne_bytes());
    }

    /// Called from the loop: clear the waker, take everything queued.
    fn take(&self) -> Vec<(u64, u64, Response)> {
        let mut counter = [0u8; 8];
        let _ = (&self.waker).read(&mut counter); // nonblocking; may be empty
        std::mem::take(&mut *self.queue.lock().expect("completion queue poisoned"))
    }
}

/// The worker-side reply handle for one queued job.
struct EventSink {
    completions: Arc<Completions>,
    token: u64,
    seq: u64,
}

impl ReplySink for EventSink {
    fn send(&self, response: Response) -> bool {
        self.completions.push(self.token, self.seq, response);
        // Staleness is the loop's call: it compares `seq` against the
        // connection's pending job and counts `late_results` itself.
        true
    }
}

/// One connection owned by the loop.
struct ConnState {
    conn: Conn,
    /// Bytes read but not yet decoded (at most one frame boundary
    /// behind, since decode runs whenever no job is in flight).
    read_buf: Vec<u8>,
    /// Encoded response frames not yet written.
    write_buf: Vec<u8>,
    /// How much of `write_buf` has been written.
    wpos: usize,
    /// The in-flight job's sequence number, if any. While set, decode
    /// pauses — responses stay in request order.
    pending: Option<u64>,
    /// Sequence numbers distinguish a late result from the answer to a
    /// retransmitted request on the same connection.
    next_seq: u64,
    /// Interest bits currently registered with epoll.
    registered: u32,
    /// Close once `write_buf` flushes (post-drain rejection sent).
    close_after_flush: bool,
    /// Drain grace: how long this connection may stay open to finish a
    /// frame or read its last response once drain has begun.
    grace_deadline: Option<Instant>,
    /// Peer closed its write side; close once our answer is out.
    peer_eof: bool,
}

impl ConnState {
    fn new(conn: Conn) -> ConnState {
        ConnState {
            conn,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            wpos: 0,
            pending: None,
            next_seq: 0,
            registered: sys::EPOLLIN | sys::EPOLLRDHUP,
            close_after_flush: false,
            grace_deadline: None,
            peer_eof: false,
        }
    }

    fn has_unsent(&self) -> bool {
        self.wpos < self.write_buf.len()
    }
}

/// Appends one framed response to the connection's write buffer.
fn queue_response(c: &mut ConnState, response: &Response) {
    let payload = response.encode();
    c.write_buf
        .extend_from_slice(&(payload.len() as u32).to_be_bytes());
    c.write_buf.extend_from_slice(&payload);
}

/// Writes as much of the buffer as the socket accepts right now.
/// `Ok(true)` means fully flushed; `Err` means the connection died.
fn flush_conn(c: &mut ConnState) -> Result<bool, ()> {
    while c.wpos < c.write_buf.len() {
        match c.conn.write(&c.write_buf[c.wpos..]) {
            Ok(0) => return Err(()),
            Ok(n) => c.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
    c.write_buf.clear();
    c.wpos = 0;
    Ok(true)
}

/// Reads everything currently available. `Err` means the connection
/// died (including a frame beyond the size limit, matching the threaded
/// front-end, which also drops the connection).
fn fill_read(c: &mut ConnState, scratch: &mut [u8], max_frame_bytes: usize) -> Result<(), ()> {
    loop {
        match c.conn.read(scratch) {
            Ok(0) => {
                c.peer_eof = true;
                return Ok(());
            }
            Ok(n) => {
                c.read_buf.extend_from_slice(&scratch[..n]);
                if c.read_buf.len() > 4 + max_frame_bytes {
                    return Err(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
}

/// Everything the per-connection handlers need besides the connection
/// itself.
struct LoopCtx<'s, 'e> {
    shared: &'s Shared<'s>,
    config: &'s ServerConfig,
    epoll: &'e Epoll,
    completions: &'e Arc<Completions>,
    deadlines: &'e mut BinaryHeap<Reverse<(Instant, u64, u64)>>,
    draining: bool,
}

/// Decodes and serves buffered frames until the buffer runs dry or a
/// job goes in flight. `Err` means the connection must close.
fn pump_frames(ctx: &mut LoopCtx<'_, '_>, c: &mut ConnState, token: u64) -> Result<(), ()> {
    while c.pending.is_none() && !c.close_after_flush {
        if c.read_buf.len() < 4 {
            return Ok(());
        }
        let len = u32::from_be_bytes([c.read_buf[0], c.read_buf[1], c.read_buf[2], c.read_buf[3]])
            as usize;
        if len > ctx.config.max_frame_bytes {
            return Err(());
        }
        if c.read_buf.len() < 4 + len {
            return Ok(());
        }
        let payload: Vec<u8> = c.read_buf.drain(..4 + len).skip(4).collect();
        // A frame completed after drain began is answered, not served —
        // same contract as the threaded front-end.
        if ctx.draining {
            queue_response(c, &draining_response());
            c.close_after_flush = true;
            return Ok(());
        }
        let request = match Request::decode(&payload) {
            Ok(request) => {
                ctx.shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                request
            }
            Err(e) => {
                ctx.shared
                    .metrics
                    .bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                queue_response(
                    c,
                    &Response::Error {
                        kind: "bad-request".into(),
                        message: e.to_string(),
                    },
                );
                continue;
            }
        };
        match route_request(ctx.shared, request) {
            Routed::Inline { response, shutdown } => {
                // The response bytes go out first (the ack is queued
                // ahead of the flag flip), then the loop observes drain
                // on its next iteration.
                queue_response(c, &response);
                if shutdown {
                    ctx.shared.shutdown.store(true, Ordering::Relaxed);
                }
            }
            Routed::Queue(kind) => {
                let seq = c.next_seq;
                c.next_seq += 1;
                let sink = Arc::new(EventSink {
                    completions: Arc::clone(ctx.completions),
                    token,
                    seq,
                });
                match submit_job(ctx.shared, kind, sink) {
                    Ok(()) => {
                        let deadline = Instant::now() + ctx.config.request_timeout;
                        c.pending = Some(seq);
                        ctx.deadlines.push(Reverse((deadline, token, seq)));
                    }
                    Err(rejection) => queue_response(c, &rejection),
                }
            }
        }
    }
    Ok(())
}

/// Runs a connection's post-event machinery: decode what's buffered,
/// flush what's queued, decide whether it stays open, and keep its
/// epoll interest in sync. Returns `false` when the connection must be
/// dropped.
fn service_conn(ctx: &mut LoopCtx<'_, '_>, c: &mut ConnState, token: u64) -> bool {
    if pump_frames(ctx, c, token).is_err() {
        return false;
    }
    let flushed = match flush_conn(c) {
        Ok(flushed) => flushed,
        Err(()) => return false,
    };
    if flushed && c.close_after_flush {
        return false;
    }
    if c.peer_eof && c.pending.is_none() && !c.has_unsent() {
        return false;
    }
    if ctx.draining {
        // Fully idle during drain: close. Otherwise the connection is
        // finishing something bounded — a pending job (request
        // deadline), a mid-frame read, or an unread response (both
        // grace) — so give it its grace deadline if it has none yet.
        if c.pending.is_none() && !c.has_unsent() && c.read_buf.is_empty() {
            return false;
        }
        if c.pending.is_none() && c.grace_deadline.is_none() {
            c.grace_deadline = Some(Instant::now() + ctx.config.drain_grace);
        }
    }
    let want = sys::EPOLLIN | sys::EPOLLRDHUP | if c.has_unsent() { sys::EPOLLOUT } else { 0 };
    if want != c.registered {
        if ctx.epoll.modify(c.conn.as_raw_fd(), token, want).is_err() {
            return false;
        }
        c.registered = want;
    }
    true
}

/// Serves until drain completes. See the module docs for the design;
/// the externally observable behavior (response bytes, drain contract,
/// metrics) matches [`crate::server`]'s threaded front-end.
pub(crate) fn run_event(
    listener: Listener,
    config: ServerConfig,
    shutdown: &AtomicBool,
) -> io::Result<ServeSummary> {
    let shared = Shared::open(&config, shutdown)?;
    let workers = shared.workers;
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let completions = Arc::new(Completions::new()?);
    epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, sys::EPOLLIN)?;
    epoll.add(completions.waker.as_raw_fd(), TOKEN_WAKER, sys::EPOLLIN)?;

    std::thread::scope(|scope| {
        let shared = &shared;
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            worker_handles.push(scope.spawn(move || worker_loop(shared)));
        }

        let mut listener = Some(listener);
        let mut conns: HashMap<u64, ConnState> = HashMap::new();
        let mut next_token = FIRST_CONN_TOKEN;
        let mut deadlines: BinaryHeap<Reverse<(Instant, u64, u64)>> = BinaryHeap::new();
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let mut scratch = vec![0u8; READ_CHUNK];
        let mut draining = false;

        loop {
            if !draining && shutdown.load(Ordering::Relaxed) {
                // Drain begins: stop accepting (close + unlink so new
                // connects fail fast), reject future frames, and let
                // the workers run the queue dry.
                draining = true;
                if let Some(l) = listener.take() {
                    let _ = epoll.del(l.as_raw_fd());
                }
                if let Endpoint::Unix(path) = &config.endpoint {
                    std::fs::remove_file(path).ok();
                }
                shared.queue.close();
                let grace = Instant::now() + config.drain_grace;
                conns.retain(|_, c| {
                    let busy = c.pending.is_some() || c.has_unsent() || !c.read_buf.is_empty();
                    if busy && c.pending.is_none() {
                        c.grace_deadline = Some(grace);
                    }
                    busy
                });
            }
            if draining && conns.is_empty() {
                break;
            }

            // Replace any worker that died (see the threaded front-end:
            // only an escaped panic ends a worker while the queue is
            // open, and its client was answered by the reply guard).
            for slot in worker_handles.iter_mut() {
                if slot.is_finished() {
                    let fresh = scope.spawn(move || worker_loop(shared));
                    let dead = std::mem::replace(slot, fresh);
                    let _ = dead.join(); // Err(payload) is expected here
                    shared
                        .metrics
                        .workers_respawned
                        .fetch_add(1, Ordering::Relaxed);
                }
            }

            // Sleep until readiness, the next deadline, or one poll
            // interval — the interval bounds how stale our view of the
            // signal-driven shutdown flag can get.
            let now = Instant::now();
            let mut timeout = config.poll_interval;
            if let Some(Reverse((at, _, _))) = deadlines.peek() {
                timeout = timeout.min(at.saturating_duration_since(now));
            }
            if draining {
                for c in conns.values() {
                    if let Some(at) = c.grace_deadline {
                        timeout = timeout.min(at.saturating_duration_since(now));
                    }
                }
            }
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;

            // Injected EINTR: `epoll_wait` is the one place the loop
            // blocks, so signal storms land here. A real EINTR takes
            // the same early-continue.
            if crate::faults::fire("epoll.wait.eintr") {
                continue;
            }
            let fired = if crate::faults::fire("epoll.spurious.wake") {
                // A spurious wakeup reports no events; level-triggered
                // readiness re-fires on the next wait, so correctness
                // must not depend on acting now.
                0
            } else {
                match epoll.wait(&mut events, timeout_ms) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        // epoll_wait failing outright (EBADF-class bugs)
                        // has no sane recovery; surface it.
                        return Err(e);
                    }
                }
            };

            let mut ctx = LoopCtx {
                shared,
                config: &config,
                epoll: &epoll,
                completions: &completions,
                deadlines: &mut deadlines,
                draining,
            };

            for event in &events[..fired] {
                // Copy out of the (packed) kernel struct before use.
                let token = event.data;
                let bits = event.events;
                match token {
                    TOKEN_LISTENER => {
                        let Some(l) = listener.as_ref() else { continue };
                        loop {
                            match l.accept() {
                                Ok(conn) => {
                                    if conn.set_nonblocking(true).is_err() {
                                        continue;
                                    }
                                    let token = next_token;
                                    next_token += 1;
                                    let state = ConnState::new(conn);
                                    if ctx
                                        .epoll
                                        .add(state.conn.as_raw_fd(), token, state.registered)
                                        .is_err()
                                    {
                                        continue; // dropped: peer sees a close
                                    }
                                    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                                    conns.insert(token, state);
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                                Err(e) => {
                                    // Transient accept failures (EMFILE
                                    // under load) must not kill the
                                    // daemon.
                                    eprintln!("bivd: accept error: {e}");
                                    break;
                                }
                            }
                        }
                    }
                    TOKEN_WAKER => {} // completions are drained below
                    token => {
                        let Some(c) = conns.get_mut(&token) else {
                            continue;
                        };
                        let broken = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0
                            || (bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0
                                && fill_read(c, &mut scratch, config.max_frame_bytes).is_err());
                        let keep = !broken && service_conn(&mut ctx, c, token);
                        if !keep {
                            conns.remove(&token); // drop closes the fd
                        }
                    }
                }
            }

            // Deliver worker completions. Drained unconditionally —
            // cheap when empty, and it makes waker-edge ordering moot.
            for (token, seq, response) in completions.take() {
                let stale = match conns.get_mut(&token) {
                    Some(c) if c.pending == Some(seq) => {
                        c.pending = None;
                        queue_response(c, &response);
                        if !service_conn(&mut ctx, c, token) {
                            conns.remove(&token);
                        }
                        false
                    }
                    // Connection gone, or the request already timed
                    // out: the worker's result arrives late.
                    _ => true,
                };
                if stale {
                    shared.metrics.late_results.fetch_add(1, Ordering::Relaxed);
                }
            }

            // Expire request deadlines: answer `timeout` now; the
            // worker's eventual result will be counted late above.
            let now = Instant::now();
            while let Some(Reverse((at, token, seq))) = ctx.deadlines.peek().copied() {
                if at > now {
                    break;
                }
                ctx.deadlines.pop();
                let Some(c) = conns.get_mut(&token) else {
                    continue;
                };
                if c.pending != Some(seq) {
                    continue; // answered in time; entry is stale
                }
                c.pending = None;
                let response = timeout_response(shared);
                queue_response(c, &response);
                if !service_conn(&mut ctx, c, token) {
                    conns.remove(&token);
                }
            }

            // Expire drain grace.
            if draining {
                conns.retain(|_, c| match c.grace_deadline {
                    Some(at) => at > now,
                    None => true,
                });
            }
        }

        // Every connection is answered and closed; the workers exit
        // once the closed queue runs dry. Then make the store durable
        // and run the fleet departure handoff, if any.
        for worker in worker_handles {
            let _ = worker.join();
        }
        shared.finish_drain();

        Ok(shared.summary())
    })
}
