//! Hook points the fleet layer plugs into the server.
//!
//! `bivd` itself knows nothing about membership views or replica
//! placement — that logic lives in `biv-fleet`, which depends on this
//! crate (not the other way round). The server exposes the narrow
//! surface the fleet layer needs: answer gossip/members frames, observe
//! committed summaries (so they can be written through to replicas),
//! contribute stats sections, and run the departure handoff once drain
//! has flushed the store. A server started without a cluster agent
//! (`bivd` without `--peers`, every pre-fleet deployment, unit tests)
//! answers membership ops with a `no-cluster` error and skips the rest.

use std::fmt;
use std::sync::Arc;

use biv_core::StructuralSummary;

use crate::json::Json;

/// What a membership/replication agent provides to the server.
pub trait ClusterHook: Send + Sync {
    /// Merges a peer's view and returns ours (after the merge), so one
    /// gossip exchange converges both sides. `from` is the sending
    /// shard when the peer is a fleet member.
    fn on_gossip(&self, from: Option<u32>, view: &Json) -> Json;

    /// The current membership view — how routers bootstrap the ring
    /// from a single seed endpoint.
    fn view(&self) -> Json;

    /// Observes summaries committed while serving `source` (an analyze
    /// request's file text), so the agent can replicate them to the
    /// key's successors. Called after the batch is in the local cache.
    fn on_commit(&self, source: &str, entries: &[(u64, Arc<StructuralSummary>)]);

    /// Extra top-level stats sections (`membership`, `replication`).
    fn stats_sections(&self) -> Vec<(String, Json)>;

    /// Runs after drain has completed and the store is flushed: the
    /// agent announces departure and hands its snapshot to the shards
    /// that absorb its key ranges.
    fn on_drained(&self);
}

/// A cloneable, debuggable handle to a [`ClusterHook`] so it can ride
/// inside [`ServerConfig`](crate::ServerConfig).
#[derive(Clone)]
pub struct ClusterHandle(pub Arc<dyn ClusterHook>);

impl fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ClusterHandle(..)")
    }
}

impl ClusterHandle {
    /// Wraps a hook implementation.
    pub fn new(hook: Arc<dyn ClusterHook>) -> ClusterHandle {
        ClusterHandle(hook)
    }
}
