//! A bounded MPMC job queue with explicit rejection — the server's
//! backpressure point.
//!
//! Connection handlers [`try_push`](JobQueue::try_push) jobs; when the
//! queue is at capacity the push is *rejected immediately* (the caller
//! answers `busy` with a retry hint) instead of blocking the handler —
//! an overloaded server must keep saying "no" cheaply rather than
//! accumulate hidden latency. Workers block in [`pop`](JobQueue::pop)
//! until a job or shutdown arrives; after [`close`](JobQueue::close)
//! they continue draining whatever was already accepted, so accepted
//! work is never dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded FIFO queue shared between handlers and workers.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the job is handed back.
    Full(T),
    /// The queue is closed (drain in progress); the job is handed back.
    Closed(T),
}

impl<T> JobQueue<T> {
    /// Creates a queue bounded to `capacity` jobs. A capacity of zero is
    /// legal and rejects every push — useful for drills and tests.
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (racy by nature; a gauge, not a guarantee).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").jobs.len()
    }

    /// Enqueues a job unless the queue is full or closed.
    pub fn try_push(&self, job: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(job));
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job is available or the queue is closed *and*
    /// empty. Jobs accepted before `close` are still handed out.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: pushes fail from now on, and workers exit once
    /// the remaining jobs are drained.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn bounded_push_rejects_when_full() {
        let q = JobQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let q = JobQueue::new(0);
        assert_eq!(q.try_push(1), Err(PushError::Full(1)));
    }

    #[test]
    fn close_drains_accepted_jobs_then_releases_workers() {
        let q = JobQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed+empty stays terminal");
    }

    #[test]
    fn workers_wake_on_close_and_on_jobs() {
        let q = JobQueue::new(64);
        let drained = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while q.pop().is_some() {
                        drained.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..32 {
                while q.try_push(i).is_err() {
                    std::thread::yield_now();
                }
            }
            q.close();
        });
        assert_eq!(drained.load(Ordering::Relaxed), 32);
    }
}
