//! Compile-time shim over `biv-faults` so injection sites read the same
//! with or without the `fault-injection` feature. Without it every hook
//! is an inlined constant — the optimizer erases the site entirely, so
//! release builds provably carry no injection behavior.

#![allow(dead_code, missing_docs)]

#[cfg(feature = "fault-injection")]
pub(crate) use biv_faults::{fire, io_error, maybe_panic, short_len};

#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn fire(_site: &str) -> bool {
    false
}

#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn maybe_panic(_site: &str) {}

#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn io_error(_site: &str) -> Option<std::io::Error> {
    None
}

#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn short_len(_site: &str, _full: usize) -> Option<usize> {
    None
}
