//! SIGINT/SIGTERM → atomic drain flag, with no `libc` crate.
//!
//! The workspace builds offline with zero external dependencies, so
//! this module declares the C library's `signal(2)` entry point
//! directly — the C library is linked into every Rust binary anyway.
//! The handler does the only async-signal-safe thing a drain needs:
//! store a relaxed atomic flag that the accept loop and connection
//! handlers already poll. glibc's `signal` installs BSD semantics
//! (`SA_RESTART`), which is fine: every blocking call in the server
//! carries its own timeout, so nothing needs `EINTR` to wake up.

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide drain flag set by the installed handlers.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The drain flag; pass it to [`crate::server::Server::run`].
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// Whether a shutdown signal has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Installs the SIGINT and SIGTERM handlers.
    pub fn install() {
        // SAFETY: `signal` is the C library's own registration call and
        // the handler only performs an atomic store, which is
        // async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op on platforms without unix signals; drain is still
    /// reachable through the protocol's `shutdown` request.
    pub fn install() {}
}

/// Installs SIGINT/SIGTERM handlers that set the drain flag, and
/// returns that flag.
pub fn install() -> &'static AtomicBool {
    imp::install();
    &SHUTDOWN
}
